//! # btgs — delay guarantees in Bluetooth piconets
//!
//! A comprehensive reproduction of **"Providing Delay Guarantees in
//! Bluetooth"** (R. Ait Yaiz and G. Heijenk, ICDCS Workshops 2003) as a
//! Rust workspace: the Guaranteed Service (RFC 2212) mathematics, the
//! paper's poll-planning and admission-control algorithms, the Predictive
//! Fair Poller, and the slot-accurate piconet simulator the evaluation
//! needs.
//!
//! This facade crate re-exports the workspace's public API under stable
//! module names:
//!
//! * [`des`] — deterministic discrete-event simulation engine;
//! * [`baseband`] — Bluetooth packet types, slot timing, channel models;
//! * [`traffic`] — token buckets and traffic sources;
//! * [`metrics`] — delay/throughput/fairness statistics and tables;
//! * [`gs`] — RFC 2212 delay bound and error-term composition;
//! * [`piconet`] — the piconet simulator, its dense
//!   [`piconet::FlowTable`] arena, and the [`piconet::Poller`] trait;
//! * [`pollers`] — baseline schedulers (round robin, FEP, PFP-BE, …);
//! * [`core`] — the paper's contribution: poll efficiency, `x`/`y`
//!   computations, C/D export, admission control, the GS pollers, the
//!   Fig. 4/Fig. 5 evaluation scenario, and the parallel
//!   [`core::ExperimentRunner`] that sweeps scenario grids across
//!   threads deterministically;
//! * [`grid`] — sharded, streaming, resumable grid execution: the
//!   [`grid::GridPartitioner`], the multi-process
//!   [`grid::ShardedGridRunner`] with per-shard checkpoints, the
//!   bounded-memory [`grid::OnlineAggregator`] and the
//!   [`grid::JsonlSpillSink`] archive.
//!
//! # Quickstart
//!
//! Admit a Guaranteed Service flow, run the paper's scenario, check that
//! the delay bound held:
//!
//! ```
//! use btgs::core::{PaperScenario, PaperScenarioParams, PollerKind};
//! use btgs::des::{SimDuration, SimTime};
//!
//! let scenario = PaperScenario::build(PaperScenarioParams {
//!     delay_requirement: SimDuration::from_millis(40),
//!     seed: 42,
//!     warmup: SimDuration::from_millis(500),
//!     include_be: false,
//!     ..Default::default()
//! });
//! let report = scenario.run(PollerKind::PfpGs, SimTime::from_secs(5)).unwrap();
//! for plan in &scenario.gs_plans {
//!     let measured = report.flow(plan.request.id).delay.max().unwrap();
//!     assert!(measured <= plan.achievable_bound);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use btgs_baseband as baseband;
pub use btgs_core as core;
pub use btgs_des as des;
pub use btgs_grid as grid;
pub use btgs_gs as gs;
pub use btgs_metrics as metrics;
pub use btgs_piconet as piconet;
pub use btgs_pollers as pollers;
pub use btgs_traffic as traffic;
