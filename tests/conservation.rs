//! Conservation and accounting invariants of the simulator: slots, bytes
//! and packets must all add up.

use btgs::baseband::SLOT;
use btgs::core::{run_point, PollerKind};
use btgs::des::{SimDuration, SimTime};

#[test]
fn slot_ledger_never_exceeds_the_window() {
    for ms in [30u64, 40] {
        let point = run_point(
            SimDuration::from_millis(ms),
            13,
            SimTime::from_secs(15),
            PollerKind::PfpGs,
        );
        let window_slots = point.report.window().as_nanos() / SLOT.as_nanos();
        let used = point.report.ledger.used();
        assert!(
            used <= window_slots,
            "at {ms} ms: used {used} of {window_slots} slots"
        );
        // idle_in panics internally if the ledger over-accounts; also check
        // the identity used + idle == window.
        let idle = point.report.ledger.idle_in(point.report.window());
        assert_eq!(used + idle, window_slots);
    }
}

#[test]
fn delivered_never_exceeds_offered() {
    let point = run_point(
        SimDuration::from_millis(40),
        29,
        SimTime::from_secs(15),
        PollerKind::PfpGs,
    );
    for f in &point.report.flows {
        let r = point.report.flow(f.id);
        // Packets arriving in the last instants of warm-up may be delivered
        // just inside the measurement window (they count as delivered but
        // not offered), so allow a couple of packets of boundary slack.
        assert!(
            r.delivered_packets <= r.offered_packets + 2,
            "{}: delivered {} > offered {} (+2 boundary slack)",
            f.id,
            r.delivered_packets,
            r.offered_packets
        );
        assert!(r.delivered_bytes <= r.offered_bytes + 2 * 176);
        // Ideal channel: nothing is lost.
        assert_eq!(r.lost_bytes, 0);
    }
}

#[test]
fn poll_counters_are_consistent_with_the_ledger() {
    let point = run_point(
        SimDuration::from_millis(40),
        31,
        SimTime::from_secs(15),
        PollerKind::PfpGs,
    );
    let report = &point.report;
    // Every GS poll occupies at least 2 slots (POLL+NULL) and at most 6
    // (DH3+DH3), so the ledger's GS total must bracket the poll count.
    let polls = report.gs_polls.total();
    let gs_slots = report.ledger.gs_total();
    assert!(gs_slots >= 2 * polls, "{gs_slots} < 2*{polls}");
    assert!(gs_slots <= 6 * polls, "{gs_slots} > 6*{polls}");
    // Unsuccessful GS polls are exactly the 2-slot POLL/NULL exchanges;
    // overhead also contains the POLL slot of successful uplink polls, so
    // overhead >= 2 * unsuccessful.
    assert!(report.ledger.gs_overhead >= 2 * report.gs_polls.unsuccessful);
}

#[test]
fn gs_and_be_data_slots_match_delivered_bytes() {
    // Every delivered GS byte rode a DH3 (3 slots / <=183 B) or DH1
    // (1 slot / <=27 B); slot counts must be plausible against byte counts.
    let point = run_point(
        SimDuration::from_millis(40),
        37,
        SimTime::from_secs(15),
        PollerKind::PfpGs,
    );
    let report = &point.report;
    let gs_bytes: u64 = point
        .scenario
        .gs_plans
        .iter()
        .map(|p| report.flow(p.request.id).delivered_bytes)
        .sum();
    // DH3 carries up to 183 B in 3 slots: at least 3 slots per 183 bytes.
    let min_slots = gs_bytes * 3 / 183;
    assert!(
        report.ledger.gs_data >= min_slots,
        "GS data slots {} below the physical minimum {min_slots}",
        report.ledger.gs_data
    );
    // And no more than 3 slots per 144-byte packet's worth.
    let max_slots = gs_bytes.div_ceil(144) * 3;
    assert!(report.ledger.gs_data <= max_slots);
}
