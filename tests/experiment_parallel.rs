//! The `ExperimentRunner` determinism contract: a grid's result must be
//! byte-identical whatever the worker count, because every cell derives all
//! of its randomness from its own seed.

use btgs::core::{
    comparison_pollers, BeSourceMix, CellSink, CollectSink, ExperimentRunner, GridCell, PollerKind,
    ScenarioGrid, Topology,
};
use btgs::des::{DetRng, SimDuration, SimTime};

fn grid_4x8() -> ScenarioGrid {
    ScenarioGrid {
        pollers: comparison_pollers(),
        piconets: vec![1],
        seeds: (1..=8).collect(),
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    }
}

/// 4 pollers × 8 seeds in parallel: the merged report equals the
/// single-threaded run byte for byte.
#[test]
fn parallel_grid_matches_sequential_byte_for_byte() {
    let grid = grid_4x8();
    assert_eq!(grid.cells().len(), 32, "4 pollers x 8 seeds");

    let sequential = ExperimentRunner::with_threads(1).run_grid(&grid);
    let parallel = ExperimentRunner::with_threads(8).run_grid(&grid);

    assert_eq!(sequential.cells.len(), 32);
    assert_eq!(parallel.cells.len(), 32);
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "parallel execution changed simulation results"
    );
    assert_eq!(
        sequential.summary_table().render(),
        parallel.summary_table().render()
    );

    // Sanity: the grid actually simulated traffic, cell order follows the
    // grid definition, and the four pollers are all present.
    for (cell, result) in grid.cells().iter().zip(&sequential.cells) {
        assert_eq!(*cell, result.cell);
        assert!(result.report.total_throughput_kbps() > 0.0);
    }
    for kind in comparison_pollers() {
        assert_eq!(sequential.of_poller(kind).count(), 8);
    }
}

/// The new piconets axis: scatternet cells (2 and 3 chained piconets, one
/// bridged GS flow) run under the same runner, deterministically at any
/// thread count, and report per-hop and end-to-end delay statistics.
#[test]
fn scatternet_axis_runs_under_the_experiment_runner() {
    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        piconets: vec![1, 2, 3],
        seeds: vec![1, 2],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    assert_eq!(
        grid.cells().len(),
        6,
        "1 poller x 3 piconet counts x 2 seeds"
    );

    let sequential = ExperimentRunner::with_threads(1).run_grid(&grid);
    let parallel = ExperimentRunner::with_threads(6).run_grid(&grid);
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "scatternet cells must stay deterministic under parallel execution"
    );

    for result in &sequential.cells {
        let n = result.cell.piconets;
        if n == 1 {
            assert!(result.scatternet.is_none());
            continue;
        }
        let sn = result
            .scatternet
            .as_ref()
            .expect("multi-piconet cells carry the scatternet outcome");
        assert_eq!(sn.report.piconets.len(), n as usize);
        // The bridged GS chain delivered, with end-to-end and residence
        // statistics spanning every hop.
        let chain = &sn.report.chains[0];
        assert_eq!(chain.hops.len(), 2 * (n as usize - 1));
        assert!(
            chain.delivered_packets > 25,
            "{n} piconets: only {} chain packets delivered",
            chain.delivered_packets
        );
        assert_eq!(chain.e2e.count() as u64, chain.delivered_packets);
        assert!(chain.residence.count() > 0, "bridge residence recorded");
        // Per-hop statistics live in the per-piconet reports.
        let mut hop_samples = 0;
        for r in &sn.report.piconets {
            for &hop in &chain.hops {
                if r.per_flow.contains_key(&hop) {
                    hop_samples += r.flow(hop).delay.count();
                }
            }
        }
        assert!(
            hop_samples >= chain.e2e.count() * chain.hops.len() / 2,
            "per-hop delay stats present ({hop_samples} samples)"
        );
        // Every piconet still carries its paper GS load.
        for r in &sn.report.piconets {
            assert!(r.total_throughput_kbps() > 200.0);
        }
    }
}

/// The GridReport's digest and summary must be invariant to cell
/// *completion* order — shards and threads finish out of order, and the
/// merge layer must restore grid order regardless (the PR 5 ordering
/// fix). Property test: deliver the same results to a `CollectSink` in
/// DetRng-shuffled orders and compare against the sequential seed
/// digest.
#[test]
fn grid_report_is_invariant_to_completion_order() {
    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
        piconets: vec![1],
        seeds: vec![1, 2, 3],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(1),
        warmup: SimDuration::from_millis(250),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    let cells = grid.cells();
    let results: Vec<_> = cells.iter().map(GridCell::run).collect();
    let seed_report = ExperimentRunner::with_threads(1).run_grid(&grid);
    let seed_digest = seed_report.digest();
    let seed_table = seed_report.summary_table().render();

    let mut rng = DetRng::seed_from_u64(0x0DE7);
    for round in 0..8 {
        // Fisher–Yates over the delivery order.
        let mut order: Vec<usize> = (0..results.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let mut sink = CollectSink::new();
        for &i in &order {
            sink.accept(i, &results[i]);
        }
        let merged = sink.into_report();
        assert_eq!(
            merged.digest(),
            seed_digest,
            "round {round}: completion order {order:?} changed the digest"
        );
        assert_eq!(merged.summary_table().render(), seed_table, "round {round}");
        // The merged cells are in grid order, not delivery order.
        for (cell, result) in cells.iter().zip(&merged.cells) {
            assert_eq!(*cell, result.cell);
        }
    }
}

/// The streaming path and the collected path are the same execution: a
/// grid run through `run_grid_streaming` + `CollectSink` equals
/// `run_grid` byte for byte at any thread count.
#[test]
fn streaming_execution_matches_collected_execution() {
    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        piconets: vec![1, 2],
        seeds: vec![1, 2],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(1),
        warmup: SimDuration::from_millis(250),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    let reference = ExperimentRunner::with_threads(1).run_grid(&grid);
    for threads in [1, 4] {
        let mut sink = CollectSink::new();
        let n = ExperimentRunner::with_threads(threads)
            .run_grid_streaming(&grid, &mut sink)
            .unwrap();
        assert_eq!(n, 4);
        assert_eq!(sink.into_report().digest(), reference.digest());
    }
}

/// The new BE load axis actually changes the offered load, and the
/// source mixes run end to end: scaling BE rates up increases delivered
/// BE bytes, and every mix keeps the GS guarantee machinery running.
#[test]
fn be_load_axis_scales_offered_load_across_mixes() {
    let base = |mix, scale: f64| ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        piconets: vec![1],
        seeds: vec![5],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(3),
        warmup: SimDuration::from_millis(500),
        include_be: true,
        be_load_scale: vec![scale],
        be_source_mix: mix,
        telemetry: false,
    };
    let be_offered = |grid: &ScenarioGrid| -> u64 {
        let report = ExperimentRunner::new().run_grid(grid);
        let cell = &report.cells[0];
        cell.report
            .flows
            .iter()
            .filter(|f| !f.channel.is_gs())
            .map(|f| cell.report.flow(f.id).offered_bytes)
            .sum()
    };
    for mix in [BeSourceMix::Cbr, BeSourceMix::Poisson, BeSourceMix::OnOff] {
        let half = be_offered(&base(mix, 0.5));
        let one = be_offered(&base(mix, 1.0));
        let double = be_offered(&base(mix, 2.0));
        assert!(
            half > 0 && one > 0 && double > 0,
            "{mix:?}: sources generated traffic"
        );
        // Offered load tracks the scale (generously bounded: Poisson and
        // on-off randomness wobbles around the mean).
        let ratio_up = double as f64 / one as f64;
        let ratio_down = half as f64 / one as f64;
        assert!(
            (1.5..=2.5).contains(&ratio_up),
            "{mix:?}: 2x scale gave {ratio_up:.2}x offered bytes"
        );
        assert!(
            (0.25..=0.75).contains(&ratio_down),
            "{mix:?}: 0.5x scale gave {ratio_down:.2}x offered bytes"
        );
    }
    // The default scale + mix remain byte-identical to the pre-axis
    // scenario digest-wise (regression anchor: grids with
    // be_load_scale = [1.0], Cbr are what every older test pinned).
    let a = ExperimentRunner::new().run_grid(&base(BeSourceMix::Cbr, 1.0));
    let b = ExperimentRunner::new().run_grid(&base(BeSourceMix::Cbr, 1.0));
    assert_eq!(a.digest(), b.digest());
}

/// Repeated runs at the same thread count are stable too (no hidden
/// global state).
#[test]
fn repeated_parallel_runs_are_stable() {
    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        piconets: vec![1],
        seeds: vec![3, 4],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: false,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    let a = ExperimentRunner::with_threads(4).run_grid(&grid);
    let b = ExperimentRunner::with_threads(4).run_grid(&grid);
    assert_eq!(a.digest(), b.digest());
}
