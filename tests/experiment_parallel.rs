//! The `ExperimentRunner` determinism contract: a grid's result must be
//! byte-identical whatever the worker count, because every cell derives all
//! of its randomness from its own seed.

use btgs::core::{comparison_pollers, ExperimentRunner, PollerKind, ScenarioGrid};
use btgs::des::{SimDuration, SimTime};

fn grid_4x8() -> ScenarioGrid {
    ScenarioGrid {
        pollers: comparison_pollers(),
        piconets: vec![1],
        seeds: (1..=8).collect(),
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: true,
    }
}

/// 4 pollers × 8 seeds in parallel: the merged report equals the
/// single-threaded run byte for byte.
#[test]
fn parallel_grid_matches_sequential_byte_for_byte() {
    let grid = grid_4x8();
    assert_eq!(grid.cells().len(), 32, "4 pollers x 8 seeds");

    let sequential = ExperimentRunner::with_threads(1).run_grid(&grid);
    let parallel = ExperimentRunner::with_threads(8).run_grid(&grid);

    assert_eq!(sequential.cells.len(), 32);
    assert_eq!(parallel.cells.len(), 32);
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "parallel execution changed simulation results"
    );
    assert_eq!(
        sequential.summary_table().render(),
        parallel.summary_table().render()
    );

    // Sanity: the grid actually simulated traffic, cell order follows the
    // grid definition, and the four pollers are all present.
    for (cell, result) in grid.cells().iter().zip(&sequential.cells) {
        assert_eq!(*cell, result.cell);
        assert!(result.report.total_throughput_kbps() > 0.0);
    }
    for kind in comparison_pollers() {
        assert_eq!(sequential.of_poller(kind).count(), 8);
    }
}

/// The new piconets axis: scatternet cells (2 and 3 chained piconets, one
/// bridged GS flow) run under the same runner, deterministically at any
/// thread count, and report per-hop and end-to-end delay statistics.
#[test]
fn scatternet_axis_runs_under_the_experiment_runner() {
    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        piconets: vec![1, 2, 3],
        seeds: vec![1, 2],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: true,
    };
    assert_eq!(
        grid.cells().len(),
        6,
        "1 poller x 3 piconet counts x 2 seeds"
    );

    let sequential = ExperimentRunner::with_threads(1).run_grid(&grid);
    let parallel = ExperimentRunner::with_threads(6).run_grid(&grid);
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "scatternet cells must stay deterministic under parallel execution"
    );

    for result in &sequential.cells {
        let n = result.cell.piconets;
        if n == 1 {
            assert!(result.scatternet.is_none());
            continue;
        }
        let sn = result
            .scatternet
            .as_ref()
            .expect("multi-piconet cells carry the scatternet outcome");
        assert_eq!(sn.report.piconets.len(), n as usize);
        // The bridged GS chain delivered, with end-to-end and residence
        // statistics spanning every hop.
        let chain = &sn.report.chains[0];
        assert_eq!(chain.hops.len(), 2 * (n as usize - 1));
        assert!(
            chain.delivered_packets > 25,
            "{n} piconets: only {} chain packets delivered",
            chain.delivered_packets
        );
        assert_eq!(chain.e2e.count() as u64, chain.delivered_packets);
        assert!(chain.residence.count() > 0, "bridge residence recorded");
        // Per-hop statistics live in the per-piconet reports.
        let mut hop_samples = 0;
        for r in &sn.report.piconets {
            for &hop in &chain.hops {
                if r.per_flow.contains_key(&hop) {
                    hop_samples += r.flow(hop).delay.count();
                }
            }
        }
        assert!(
            hop_samples >= chain.e2e.count() * chain.hops.len() / 2,
            "per-hop delay stats present ({hop_samples} samples)"
        );
        // Every piconet still carries its paper GS load.
        for r in &sn.report.piconets {
            assert!(r.total_throughput_kbps() > 200.0);
        }
    }
}

/// Repeated runs at the same thread count are stable too (no hidden
/// global state).
#[test]
fn repeated_parallel_runs_are_stable() {
    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        piconets: vec![1],
        seeds: vec![3, 4],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: false,
    };
    let a = ExperimentRunner::with_threads(4).run_grid(&grid);
    let b = ExperimentRunner::with_threads(4).run_grid(&grid);
    assert_eq!(a.digest(), b.digest());
}
