//! The `ExperimentRunner` determinism contract: a grid's result must be
//! byte-identical whatever the worker count, because every cell derives all
//! of its randomness from its own seed.

use btgs::core::{comparison_pollers, ExperimentRunner, PollerKind, ScenarioGrid};
use btgs::des::{SimDuration, SimTime};

fn grid_4x8() -> ScenarioGrid {
    ScenarioGrid {
        pollers: comparison_pollers(),
        seeds: (1..=8).collect(),
        delay_requirements: vec![SimDuration::from_millis(40)],
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: true,
    }
}

/// 4 pollers × 8 seeds in parallel: the merged report equals the
/// single-threaded run byte for byte.
#[test]
fn parallel_grid_matches_sequential_byte_for_byte() {
    let grid = grid_4x8();
    assert_eq!(grid.cells().len(), 32, "4 pollers x 8 seeds");

    let sequential = ExperimentRunner::with_threads(1).run_grid(&grid);
    let parallel = ExperimentRunner::with_threads(8).run_grid(&grid);

    assert_eq!(sequential.cells.len(), 32);
    assert_eq!(parallel.cells.len(), 32);
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "parallel execution changed simulation results"
    );
    assert_eq!(
        sequential.summary_table().render(),
        parallel.summary_table().render()
    );

    // Sanity: the grid actually simulated traffic, cell order follows the
    // grid definition, and the four pollers are all present.
    for (cell, result) in grid.cells().iter().zip(&sequential.cells) {
        assert_eq!(*cell, result.cell);
        assert!(result.report.total_throughput_kbps() > 0.0);
    }
    for kind in comparison_pollers() {
        assert_eq!(sequential.of_poller(kind).count(), 8);
    }
}

/// Repeated runs at the same thread count are stable too (no hidden
/// global state).
#[test]
fn repeated_parallel_runs_are_stable() {
    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        seeds: vec![3, 4],
        delay_requirements: vec![SimDuration::from_millis(40)],
        horizon: SimTime::from_secs(2),
        warmup: SimDuration::from_millis(500),
        include_be: false,
    };
    let a = ExperimentRunner::with_threads(4).run_grid(&grid);
    let b = ExperimentRunner::with_threads(4).run_grid(&grid);
    assert_eq!(a.digest(), b.digest());
}
