//! Differential end-to-end test for the parallel island engine.
//!
//! The scatternet simulator advances each piconet island independently to
//! conservative phase boundaries derived from the bridge rendezvous
//! schedule; `with_threads(n)` only changes *which OS thread* runs an
//! island between two barriers, never the order in which staged relay
//! handoffs are injected, and the adaptive-widening / phase-batching
//! toggles only change *how many* rounds the engine steps through, never
//! what each island observes. The contract: the full
//! [`ScatternetReport`] — every delay sample, ledger cell, counter and
//! the event count — is byte-identical across thread counts, topologies
//! (mesh included), pollers, seeds, a deterministically shuffled island
//! claim order, and all four widening × batching combinations. Only the
//! engine-observability counters (`phases_run`, `barrier_rounds`,
//! `islands_claimed`, `relays_staged`, `relays_injected`,
//! `widening_stretches`, `islands_skipped_idle`) are excluded: they
//! describe the execution, not the simulation.
//!
//! [`ScatternetReport`]: btgs::piconet::ScatternetReport

use btgs::core::{PollerKind, ScatternetScenario, ScatternetScenarioParams};
use btgs::des::{SimDuration, SimTime};

/// The engine-observability counter fields excluded from byte-identity
/// (`events_processed` stays in: the same events fire in every
/// configuration).
const ENGINE_COUNTERS: [&str; 7] = [
    "phases_run",
    "barrier_rounds",
    "islands_claimed",
    "relays_staged",
    "widening_stretches",
    "islands_skipped_idle",
    "relays_injected",
];

#[derive(Clone, Copy)]
struct EngineKnobs {
    threads: usize,
    shuffle: Option<u64>,
    widening: bool,
    batching: bool,
}

impl EngineKnobs {
    fn default_engine(threads: usize) -> EngineKnobs {
        EngineKnobs {
            threads,
            shuffle: None,
            widening: true,
            batching: true,
        }
    }
}

fn digest(
    params: ScatternetScenarioParams,
    kind: PollerKind,
    knobs: EngineKnobs,
    horizon: SimTime,
) -> String {
    let scenario = ScatternetScenario::build(params);
    let mut sim = scenario
        .simulator(kind)
        .expect("scenario builds")
        .with_threads(knobs.threads)
        .with_phase_widening(knobs.widening)
        .with_phase_batching(knobs.batching);
    if let Some(seed) = knobs.shuffle {
        sim = sim.with_island_shuffle(seed);
    }
    let report = sim.run(horizon).expect("scenario runs");
    format!("{report:#?}")
        .lines()
        .filter(|l| !ENGINE_COUNTERS.iter().any(|c| l.contains(c)))
        .collect::<Vec<_>>()
        .join("\n")
}

fn params_for(topology: &str, seed: u64) -> ScatternetScenarioParams {
    let mut params = match topology {
        "chain" => ScatternetScenarioParams::chained(4),
        "ring" => ScatternetScenarioParams::ring(4),
        "tree" => ScatternetScenarioParams::tree(5),
        "mesh" => ScatternetScenarioParams::mesh(12, 3, 5),
        other => panic!("unknown topology {other}"),
    };
    params.seed = seed;
    params.warmup = SimDuration::from_millis(500);
    params
}

#[test]
fn parallel_reports_are_byte_identical_across_thread_counts() {
    let horizon = SimTime::from_secs(2);
    // Both pollers across every topology at seed 1, plus a second seed on
    // the densest chain — enough coverage without tripling tier-1 time.
    let mut cases: Vec<(PollerKind, &str, u64)> = Vec::new();
    for kind in [PollerKind::PfpGs, PollerKind::FixedGs] {
        for topology in ["chain", "ring", "tree", "mesh"] {
            cases.push((kind, topology, 1));
        }
    }
    cases.push((PollerKind::PfpGs, "chain", 23));
    for (kind, topology, seed) in cases {
        let base = digest(
            params_for(topology, seed),
            kind,
            EngineKnobs::default_engine(1),
            horizon,
        );
        for threads in [2usize, 4] {
            let par = digest(
                params_for(topology, seed),
                kind,
                EngineKnobs::default_engine(threads),
                horizon,
            );
            assert_eq!(
                base, par,
                "report diverged ({kind:?}, {topology}, seed {seed}, \
                 {threads} threads)"
            );
        }
    }
}

#[test]
fn widening_and_batching_toggles_are_free_of_observable_effects() {
    // The adaptive engine's whole correctness claim: widened phases and
    // skipped islands change the round structure only. Every widening ×
    // batching combination at 1, 2 and 4 threads must reproduce the
    // default report byte for byte — on the mesh too, where skipping and
    // widening actually trigger.
    let horizon = SimTime::from_secs(2);
    for topology in ["chain", "mesh"] {
        let base = digest(
            params_for(topology, 1),
            PollerKind::PfpGs,
            EngineKnobs::default_engine(1),
            horizon,
        );
        for widening in [true, false] {
            for batching in [true, false] {
                for threads in [1usize, 2, 4] {
                    let knobs = EngineKnobs {
                        threads,
                        shuffle: None,
                        widening,
                        batching,
                    };
                    let other = digest(params_for(topology, 1), PollerKind::PfpGs, knobs, horizon);
                    assert_eq!(
                        base, other,
                        "report diverged ({topology}, widening {widening}, \
                         batching {batching}, {threads} threads)"
                    );
                }
            }
        }
    }
}

#[test]
fn island_claim_order_is_free_of_observable_effects() {
    // A shuffled claim order maximises cross-thread interleavings; the
    // staged-relay injection order is sorted, so the report must not
    // move by a single byte.
    let horizon = SimTime::from_secs(2);
    let base = digest(
        params_for("chain", 7),
        PollerKind::PfpGs,
        EngineKnobs::default_engine(1),
        horizon,
    );
    for shuffle in [3u64, 99] {
        for threads in [1usize, 2, 4] {
            let knobs = EngineKnobs {
                threads,
                shuffle: Some(shuffle),
                widening: true,
                batching: true,
            };
            let shuffled = digest(params_for("chain", 7), PollerKind::PfpGs, knobs, horizon);
            assert_eq!(
                base, shuffled,
                "island shuffle {shuffle} with {threads} threads changed the report"
            );
        }
    }
}

#[test]
fn tracing_on_reports_and_traces_are_byte_identical() {
    // The observability twin of the byte-identity contract. With the
    // trace ring and telemetry registry switched ON: (a) the simulated
    // report must not move by a byte relative to the plain engine, and
    // (b) the exported Perfetto trace itself must be byte-identical
    // across thread counts and shuffled claim orders — the merged
    // record order `(start_ns, track, seq)` is a total order derived
    // from simulated time, never from which OS thread ran an island.
    use btgs::piconet::ObsConfig;
    use btgs_obs::perfetto_trace_json;

    let horizon = SimTime::from_secs(2);
    let observed = |knobs: EngineKnobs| -> (String, String) {
        let params = params_for("chain", 7);
        let piconets = params.piconets as usize;
        let mut sim = ScatternetScenario::build(params)
            .simulator(PollerKind::PfpGs)
            .expect("scenario builds")
            .with_threads(knobs.threads)
            .with_phase_widening(knobs.widening)
            .with_phase_batching(knobs.batching);
        if let Some(seed) = knobs.shuffle {
            sim = sim.with_island_shuffle(seed);
        }
        let run = sim
            .run_observed(horizon, ObsConfig::default())
            .expect("scenario runs");
        let filtered = format!("{:#?}", run.report)
            .lines()
            .filter(|l| !ENGINE_COUNTERS.iter().any(|c| l.contains(c)))
            .collect::<Vec<_>>()
            .join("\n");
        (filtered, perfetto_trace_json(&run.trace, piconets))
    };

    let plain = digest(
        params_for("chain", 7),
        PollerKind::PfpGs,
        EngineKnobs::default_engine(1),
        horizon,
    );
    let (base_report, base_trace) = observed(EngineKnobs::default_engine(1));
    assert_eq!(
        plain, base_report,
        "switching instrumentation on moved the simulated report"
    );
    assert!(
        base_trace.contains("\"traceEvents\""),
        "exporter produced a trace envelope"
    );
    for threads in [2usize, 4] {
        let (report, trace) = observed(EngineKnobs::default_engine(threads));
        assert_eq!(
            plain, report,
            "observed report diverged at {threads} threads"
        );
        assert_eq!(
            base_trace, trace,
            "exported trace diverged at {threads} threads"
        );
    }
    for shuffle in [3u64, 99] {
        for threads in [2usize, 4] {
            let knobs = EngineKnobs {
                threads,
                shuffle: Some(shuffle),
                widening: true,
                batching: true,
            };
            let (report, trace) = observed(knobs);
            assert_eq!(
                plain, report,
                "observed report diverged (shuffle {shuffle}, {threads} threads)"
            );
            assert_eq!(
                base_trace, trace,
                "exported trace diverged (shuffle {shuffle}, {threads} threads)"
            );
        }
    }
}

#[test]
fn parallel_longest_chain_still_composes_admitted_bounds() {
    // The admission path (guaranteed hop entities, composed bounds) rides
    // through the same engine: an admitted chain's measured worst case
    // must stay inside its composed bound under 4 threads too.
    let mut params = ScatternetScenarioParams::chained(3);
    params.delay_requirement = SimDuration::from_millis(46);
    params.bridge_cycle = SimDuration::from_millis(10);
    params.warmup = SimDuration::from_millis(500);
    params.chain_deadline = Some(SimDuration::from_millis(260));
    let scenario = ScatternetScenario::build(params);
    let report = scenario
        .simulator(PollerKind::PfpGs)
        .expect("scenario builds")
        .with_threads(4)
        .run(SimTime::from_secs(3))
        .expect("scenario runs");
    let grant = &scenario.chain_grants[0];
    let chain = &report.chains[0];
    assert!(chain.delivered_packets > 50);
    assert!(chain.e2e.max().expect("chain delivered") <= grant.composed_bound);
}

#[test]
fn mesh_admitted_chains_compose_bounds_at_scale() {
    // The 64-piconet mesh admission check: every spanning-path chain is
    // admitted atomically against a generous end-to-end deadline, and
    // each one's measured worst case honours its composed bound under the
    // adaptive parallel engine.
    // Degree 2: under the paper's conservative segment accounting
    // (`s = U = 3.75 ms`) a third guaranteed bridge entity would need
    // `x >= 3U = 11.25 ms`, above the presence-compensated poll-interval
    // ceiling at any workable rendezvous cycle — so guarantee-mode meshes
    // cap at two bridge entities per piconet. Denser meshes are exercised
    // in measured-only mode by the byte-identity tests above.
    let mut params = ScatternetScenarioParams::mesh(64, 2, 11);
    params.delay_requirement = SimDuration::from_millis(46);
    params.bridge_cycle = SimDuration::from_millis(10);
    params.warmup = SimDuration::from_millis(500);
    params.chain_deadline = Some(SimDuration::from_millis(600));
    let scenario = ScatternetScenario::build(params);
    assert_eq!(scenario.chain_grants.len(), scenario.config.chains.len());
    let report = scenario
        .simulator(PollerKind::PfpGs)
        .expect("scenario builds")
        .with_threads(4)
        .run(SimTime::from_secs(2))
        .expect("scenario runs");
    let mut delivered_total = 0;
    for (ci, chain) in report.chains.iter().enumerate() {
        let grant = &scenario.chain_grants[ci];
        delivered_total += chain.delivered_packets;
        if let Some(measured) = chain.e2e.max() {
            assert!(
                measured <= grant.composed_bound,
                "mesh chain {ci}: measured e2e max {measured} exceeds the \
                 composed bound {}",
                grant.composed_bound
            );
        }
    }
    assert!(
        delivered_total > 200,
        "mesh chains delivered only {delivered_total} packets"
    );
}
