//! Differential end-to-end test for the parallel island engine.
//!
//! The scatternet simulator advances each piconet island independently to
//! conservative phase boundaries derived from the bridge rendezvous
//! schedule; `with_threads(n)` only changes *which OS thread* runs an
//! island between two barriers, never the order in which staged relay
//! handoffs are injected. The contract: the full [`ScatternetReport`] —
//! every delay sample, ledger cell, counter and the event count — is
//! byte-identical across thread counts, topologies, pollers and seeds,
//! and also under a deterministically shuffled island claim order.
//!
//! [`ScatternetReport`]: btgs::piconet::ScatternetReport

use btgs::core::{PollerKind, ScatternetScenario, ScatternetScenarioParams};
use btgs::des::{SimDuration, SimTime};

fn digest(
    params: ScatternetScenarioParams,
    kind: PollerKind,
    threads: usize,
    shuffle: Option<u64>,
    horizon: SimTime,
) -> String {
    let scenario = ScatternetScenario::build(params);
    let mut sim = scenario
        .simulator(kind)
        .expect("scenario builds")
        .with_threads(threads);
    if let Some(seed) = shuffle {
        sim = sim.with_island_shuffle(seed);
    }
    let report = sim.run(horizon).expect("scenario runs");
    format!("{report:#?}")
}

fn params_for(topology: &str, seed: u64) -> ScatternetScenarioParams {
    let mut params = match topology {
        "chain" => ScatternetScenarioParams::chained(4),
        "ring" => ScatternetScenarioParams::ring(4),
        "tree" => ScatternetScenarioParams::tree(5),
        other => panic!("unknown topology {other}"),
    };
    params.seed = seed;
    params.warmup = SimDuration::from_millis(500);
    params
}

#[test]
fn parallel_reports_are_byte_identical_across_thread_counts() {
    let horizon = SimTime::from_secs(2);
    // Both pollers across every topology at seed 1, plus a second seed on
    // the densest chain — enough coverage without tripling tier-1 time.
    let mut cases: Vec<(PollerKind, &str, u64)> = Vec::new();
    for kind in [PollerKind::PfpGs, PollerKind::FixedGs] {
        for topology in ["chain", "ring", "tree"] {
            cases.push((kind, topology, 1));
        }
    }
    cases.push((PollerKind::PfpGs, "chain", 23));
    for (kind, topology, seed) in cases {
        let base = digest(params_for(topology, seed), kind, 1, None, horizon);
        for threads in [2usize, 4] {
            let par = digest(params_for(topology, seed), kind, threads, None, horizon);
            assert_eq!(
                base, par,
                "report diverged ({kind:?}, {topology}, seed {seed}, \
                 {threads} threads)"
            );
        }
    }
}

#[test]
fn island_claim_order_is_free_of_observable_effects() {
    // A shuffled claim order maximises cross-thread interleavings; the
    // staged-relay injection order is sorted, so the report must not
    // move by a single byte.
    let horizon = SimTime::from_secs(2);
    let base = digest(params_for("chain", 7), PollerKind::PfpGs, 1, None, horizon);
    for shuffle in [3u64, 99] {
        for threads in [1usize, 2, 4] {
            let shuffled = digest(
                params_for("chain", 7),
                PollerKind::PfpGs,
                threads,
                Some(shuffle),
                horizon,
            );
            assert_eq!(
                base, shuffled,
                "island shuffle {shuffle} with {threads} threads changed the report"
            );
        }
    }
}

#[test]
fn parallel_longest_chain_still_composes_admitted_bounds() {
    // The admission path (guaranteed hop entities, composed bounds) rides
    // through the same engine: an admitted chain's measured worst case
    // must stay inside its composed bound under 4 threads too.
    let mut params = ScatternetScenarioParams::chained(3);
    params.delay_requirement = SimDuration::from_millis(46);
    params.bridge_cycle = SimDuration::from_millis(10);
    params.warmup = SimDuration::from_millis(500);
    params.chain_deadline = Some(SimDuration::from_millis(260));
    let scenario = ScatternetScenario::build(params);
    let report = scenario
        .simulator(PollerKind::PfpGs)
        .expect("scenario builds")
        .with_threads(4)
        .run(SimTime::from_secs(3))
        .expect("scenario runs");
    let grant = &scenario.chain_grants[0];
    let chain = &report.chains[0];
    assert!(chain.delivered_packets > 50);
    assert!(chain.e2e.max().expect("chain delivered") <= grant.composed_bound);
}
