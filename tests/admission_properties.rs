//! Property-based integration tests: randomly generated request sets, with
//! the admission verdict checked against first principles and (for small
//! cases) against simulation.

use btgs::baseband::{AmAddr, Direction};
use btgs::core::{
    admit, piconet_u, y_max, AdmissionConfig, GsRequest, HigherEntity,
};
use btgs::gs::TokenBucketSpec;
use btgs::traffic::FlowId;
use proptest::prelude::*;

fn arb_request(id: u32) -> impl Strategy<Value = GsRequest> {
    (
        1u8..=7,
        prop_oneof![Just(Direction::SlaveToMaster), Just(Direction::MasterToSlave)],
        10_000u64..40_000, // interval us
        100u32..300,       // min packet
        0u32..150,         // extra to max packet
        0u32..8,           // rate bump (units of 1/8 over token rate)
    )
        .prop_map(move |(slave, dir, interval_us, m, extra, bump)| {
            let tspec =
                TokenBucketSpec::for_cbr(interval_us as f64 / 1e6, m, m + extra).unwrap();
            let rate = tspec.token_rate() * (1.0 + bump as f64 / 8.0);
            GsRequest::new(
                FlowId(id),
                AmAddr::new(slave).unwrap(),
                dir,
                tspec,
                rate,
            )
        })
}

fn arb_request_set() -> impl Strategy<Value = Vec<GsRequest>> {
    proptest::collection::vec(proptest::bool::ANY, 1..6).prop_flat_map(|mask| {
        let n = mask.len();
        (0..n as u32)
            .map(|i| arb_request(i + 1))
            .collect::<Vec<_>>()
    })
}

/// Drops requests that collide on (slave, direction) so the set is valid.
fn dedup(requests: Vec<GsRequest>) -> Vec<GsRequest> {
    let mut out: Vec<GsRequest> = Vec::new();
    for r in requests {
        if !out
            .iter()
            .any(|o| o.slave == r.slave && o.direction == r.direction)
        {
            out.push(r);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever admit() accepts must satisfy Eq. 9 entity by entity, with
    /// `y` recomputed independently from the returned priorities.
    #[test]
    fn accepted_schedules_satisfy_eq9(requests in arb_request_set()) {
        let requests = dedup(requests);
        let cfg = AdmissionConfig::paper();
        if let Ok(outcome) = admit(&requests, &cfg) {
            let u = piconet_u(&cfg.allowed_types);
            for (i, e) in outcome.entities.iter().enumerate() {
                // entities are sorted by priority: everything before i is
                // strictly higher priority.
                let higher: Vec<HigherEntity> = outcome.entities[..i]
                    .iter()
                    .map(|h| HigherEntity { x: h.x, s: h.s })
                    .collect();
                let y = y_max(u, &higher, e.x);
                prop_assert_eq!(y, Some(e.y), "entity {} fails Eq. 9", i);
                prop_assert!(e.y <= e.x);
                prop_assert!(e.priority as usize == i + 1);
            }
            // Every request received a grant with a finite bound.
            prop_assert_eq!(outcome.flows.len(), requests.len());
            for g in &outcome.flows {
                prop_assert!(g.bound > btgs::des::SimDuration::ZERO);
                prop_assert!(g.eta_min > 0.0);
            }
        }
    }

    /// Admission is monotone under removal: any subset of an accepted set
    /// is accepted too (checked on prefixes).
    #[test]
    fn admission_is_monotone_on_prefixes(requests in arb_request_set()) {
        let requests = dedup(requests);
        let cfg = AdmissionConfig::paper();
        if admit(&requests, &cfg).is_ok() {
            for k in 0..requests.len() {
                let prefix = &requests[..k];
                prop_assert!(
                    admit(prefix, &cfg).is_ok(),
                    "prefix of length {k} rejected though the full set passed"
                );
            }
        }
    }

    /// Piggybacking never hurts: anything the naive accounting accepts is
    /// also accepted with piggybacking enabled.
    #[test]
    fn piggybacking_dominates_naive(requests in arb_request_set()) {
        let requests = dedup(requests);
        let mut naive = AdmissionConfig::paper();
        naive.piggyback = false;
        if admit(&requests, &naive).is_ok() {
            prop_assert!(admit(&requests, &AdmissionConfig::paper()).is_ok());
        }
    }

    /// Raising a rate can only shrink the achievable delay bound for that
    /// flow (when both rates are admitted).
    #[test]
    fn higher_rate_tightens_the_bound(bump in 1u32..16) {
        let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap();
        let s1 = AmAddr::new(1).unwrap();
        let base = GsRequest::new(FlowId(1), s1, Direction::SlaveToMaster, tspec, 8_800.0);
        let faster = GsRequest::new(
            FlowId(1),
            s1,
            Direction::SlaveToMaster,
            tspec,
            8_800.0 + 250.0 * bump as f64,
        );
        let cfg = AdmissionConfig::paper();
        let b1 = admit(&[base], &cfg).unwrap().flows[0].bound;
        if let Ok(out) = admit(&[faster], &cfg) {
            prop_assert!(out.flows[0].bound <= b1);
        }
    }
}
