//! Property-based integration tests: randomly generated request sets, with
//! the admission verdict checked against first principles. Randomness is
//! driven by the workspace's own [`DetRng`](btgs::des::DetRng) so every run
//! checks the identical case list on every platform.

use btgs::baseband::{AmAddr, Direction};
use btgs::core::{admit, piconet_u, y_max, AdmissionConfig, GsRequest, HigherEntity};
use btgs::des::DetRng;
use btgs::gs::TokenBucketSpec;
use btgs::traffic::FlowId;

fn arb_request(rng: &mut DetRng, id: u32) -> GsRequest {
    let slave = rng.range_inclusive(1, 7) as u8;
    let dir = if rng.chance(0.5) {
        Direction::SlaveToMaster
    } else {
        Direction::MasterToSlave
    };
    let interval_us = rng.range_inclusive(10_000, 39_999);
    let m = rng.range_inclusive(100, 299) as u32;
    let extra = rng.below(150) as u32;
    let bump = rng.below(8);
    let tspec = TokenBucketSpec::for_cbr(interval_us as f64 / 1e6, m, m + extra).unwrap();
    let rate = tspec.token_rate() * (1.0 + bump as f64 / 8.0);
    GsRequest::new(FlowId(id), AmAddr::new(slave).unwrap(), dir, tspec, rate)
}

fn arb_request_set(rng: &mut DetRng) -> Vec<GsRequest> {
    let n = rng.range_inclusive(1, 5) as u32;
    (0..n).map(|i| arb_request(rng, i + 1)).collect()
}

/// Drops requests that collide on (slave, direction) so the set is valid.
fn dedup(requests: Vec<GsRequest>) -> Vec<GsRequest> {
    let mut out: Vec<GsRequest> = Vec::new();
    for r in requests {
        if !out
            .iter()
            .any(|o| o.slave == r.slave && o.direction == r.direction)
        {
            out.push(r);
        }
    }
    out
}

/// Whatever admit() accepts must satisfy Eq. 9 entity by entity, with
/// `y` recomputed independently from the returned priorities.
#[test]
fn accepted_schedules_satisfy_eq9() {
    let mut rng = DetRng::seed_from_u64(0xAD31);
    for _ in 0..64 {
        let requests = dedup(arb_request_set(&mut rng));
        let cfg = AdmissionConfig::paper();
        if let Ok(outcome) = admit(&requests, &cfg) {
            let u = piconet_u(&cfg.allowed_types);
            for (i, e) in outcome.entities.iter().enumerate() {
                // entities are sorted by priority: everything before i is
                // strictly higher priority.
                let higher: Vec<HigherEntity> = outcome.entities[..i]
                    .iter()
                    .map(|h| HigherEntity { x: h.x, s: h.s })
                    .collect();
                let y = y_max(u, &higher, e.x);
                assert_eq!(y, Some(e.y), "entity {} fails Eq. 9", i);
                assert!(e.y <= e.x);
                assert!(e.priority as usize == i + 1);
            }
            // Every request received a grant with a finite bound.
            assert_eq!(outcome.flows.len(), requests.len());
            for g in &outcome.flows {
                assert!(g.bound > btgs::des::SimDuration::ZERO);
                assert!(g.eta_min > 0.0);
            }
        }
    }
}

/// Admission is monotone under removal: any subset of an accepted set
/// is accepted too (checked on prefixes).
#[test]
fn admission_is_monotone_on_prefixes() {
    let mut rng = DetRng::seed_from_u64(0xAD32);
    for _ in 0..64 {
        let requests = dedup(arb_request_set(&mut rng));
        let cfg = AdmissionConfig::paper();
        if admit(&requests, &cfg).is_ok() {
            for k in 0..requests.len() {
                let prefix = &requests[..k];
                assert!(
                    admit(prefix, &cfg).is_ok(),
                    "prefix of length {k} rejected though the full set passed"
                );
            }
        }
    }
}

/// Piggybacking never hurts: anything the naive accounting accepts is
/// also accepted with piggybacking enabled.
#[test]
fn piggybacking_dominates_naive() {
    let mut rng = DetRng::seed_from_u64(0xAD33);
    for _ in 0..64 {
        let requests = dedup(arb_request_set(&mut rng));
        let mut naive = AdmissionConfig::paper();
        naive.piggyback = false;
        if admit(&requests, &naive).is_ok() {
            assert!(admit(&requests, &AdmissionConfig::paper()).is_ok());
        }
    }
}

/// Raising a rate can only shrink the achievable delay bound for that
/// flow (when both rates are admitted).
#[test]
fn higher_rate_tightens_the_bound() {
    let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap();
    let s1 = AmAddr::new(1).unwrap();
    let cfg = AdmissionConfig::paper();
    let base = GsRequest::new(FlowId(1), s1, Direction::SlaveToMaster, tspec, 8_800.0);
    let b1 = admit(&[base], &cfg).unwrap().flows[0].bound;
    for bump in 1u32..16 {
        let faster = GsRequest::new(
            FlowId(1),
            s1,
            Direction::SlaveToMaster,
            tspec,
            8_800.0 + 250.0 * bump as f64,
        );
        if let Ok(out) = admit(&[faster], &cfg) {
            assert!(out.flows[0].bound <= b1);
        }
    }
}

/// Releasing any accepted flow and re-admitting the identical request
/// restores byte-identical controller state (accepted set and schedule),
/// for randomized feasible sets — the round-trip invariant chain-admission
/// rollback builds on.
#[test]
fn release_readmit_round_trip_is_identity() {
    use btgs::core::AdmissionController;
    let mut rng = DetRng::seed_from_u64(0xAD35);
    let mut exercised = 0usize;
    for _ in 0..64 {
        let requests = dedup(arb_request_set(&mut rng));
        let cfg = AdmissionConfig::paper();
        let mut ctl = AdmissionController::new(cfg);
        let mut admitted: Vec<GsRequest> = Vec::new();
        for r in requests {
            if ctl.try_admit(r.clone()).is_ok() {
                admitted.push(r);
            }
        }
        if admitted.is_empty() {
            continue;
        }
        let victim = admitted[rng.below(admitted.len() as u64) as usize].clone();
        let accepted_before = ctl.accepted().to_vec();
        let outcome_before = ctl.outcome().clone();
        ctl.release(victim.id);
        ctl.try_admit(victim)
            .expect("a released member of a feasible set re-admits");
        assert_eq!(ctl.accepted(), accepted_before.as_slice());
        assert_eq!(*ctl.outcome(), outcome_before);
        exercised += 1;
    }
    assert!(exercised > 32, "too few feasible sets: {exercised}");
}
