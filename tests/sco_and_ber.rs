//! SCO links and the lossy-radio extension, end to end.

use btgs::baseband::{
    AmAddr, BerChannel, Direction, IdealChannel, LogicalChannel, PacketType, ScoLink,
};
use btgs::core::{admit, AdmissionConfig, GsPoller, GsRequest};
use btgs::des::{DetRng, SimDuration, SimTime};
use btgs::gs::TokenBucketSpec;
use btgs::piconet::{FlowSpec, PiconetConfig, PiconetSim, RoundRobinForTest, ScoBinding};
use btgs::traffic::{CbrSource, FlowId};

fn s(n: u8) -> AmAddr {
    AmAddr::new(n).unwrap()
}

#[test]
fn sco_link_delivers_voice_with_bounded_delay() {
    // 150-byte frames every 18.75 ms over HV3: aligned with the reservation
    // grid, worst-case delay <= sync (3.75 ms) + 5 drains (18.75 ms).
    let config = PiconetConfig::new(vec![PacketType::Dh1])
        .with_sco(ScoBinding {
            slave: s(1),
            link: ScoLink::new(PacketType::Hv3, 0).unwrap(),
            voice_flow: Some(FlowId(9)),
        })
        .with_warmup(SimDuration::from_secs(1));
    let mut sim = PiconetSim::new(
        config,
        Box::new(RoundRobinForTest::default()),
        Box::new(IdealChannel),
    )
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(9),
        SimDuration::from_micros(18_750),
        150,
        150,
        DetRng::seed_from_u64(1).stream(9),
    )))
    .unwrap();
    let report = sim.run(SimTime::from_secs(15)).unwrap();
    let voice = report.flow(FlowId(9));
    assert!(voice.delay.count() > 700);
    let max = voice.delay.max().unwrap();
    assert!(
        max <= SimDuration::from_micros(22_500),
        "SCO voice delay {max} beyond the 22.5 ms analytical bound"
    );
    // The reservation burns exactly a third of all slots.
    let window_slots = report.window().as_nanos() / btgs::baseband::SLOT.as_nanos();
    assert_eq!(report.ledger.sco, window_slots / 3);
    // SCO flows appear in the per-slave aggregation.
    assert!((report.slave_throughput_kbps(s(1)) - 64.0).abs() < 1.0);
}

#[test]
fn sco_loses_bytes_on_a_lossy_radio_but_gs_retransmits() {
    // At BER 1e-4 a DH3 is lost with ~12% probability: retransmissions fit
    // in the spare poll budget (at 5e-4 half of all DH3s are lost and the
    // GS queue could not keep up — see the ber_retransmission bench).
    let ber = 1e-4;
    // SCO voice over a lossy channel: bytes vanish (no retransmission).
    let sco_config = PiconetConfig::new(vec![PacketType::Dh1])
        .with_sco(ScoBinding {
            slave: s(1),
            link: ScoLink::new(PacketType::Hv3, 0).unwrap(),
            voice_flow: Some(FlowId(9)),
        })
        .with_warmup(SimDuration::from_secs(1));
    let mut sim = PiconetSim::new(
        sco_config,
        Box::new(RoundRobinForTest::default()),
        Box::new(BerChannel::new(ber, DetRng::seed_from_u64(5).stream(1))),
    )
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(9),
        SimDuration::from_micros(18_750),
        150,
        150,
        DetRng::seed_from_u64(1).stream(9),
    )))
    .unwrap();
    let sco_report = sim.run(SimTime::from_secs(15)).unwrap();
    assert!(
        sco_report.flow(FlowId(9)).lost_bytes > 0,
        "SCO must lose bytes at BER {ber}"
    );

    // The same stream as a GS flow: ARQ recovers everything.
    let tspec = TokenBucketSpec::for_cbr(0.018_75, 150, 150).unwrap();
    let request = GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 12_800.0);
    let outcome = admit(&[request], &AdmissionConfig::paper()).unwrap();
    let gs_config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_flow(FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ))
        .with_warmup(SimDuration::from_secs(1));
    let poller = GsPoller::variable(&outcome, SimTime::ZERO);
    let mut sim = PiconetSim::new(
        gs_config,
        Box::new(poller),
        Box::new(BerChannel::new(ber, DetRng::seed_from_u64(5).stream(2))),
    )
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(1),
        SimDuration::from_micros(18_750),
        150,
        150,
        DetRng::seed_from_u64(1).stream(9),
    )))
    .unwrap();
    let gs_report = sim.run(SimTime::from_secs(15)).unwrap();
    let gs_flow = gs_report.flow(FlowId(1));
    assert_eq!(gs_flow.lost_bytes, 0, "ARQ retransmits everything");
    assert!(
        gs_flow.delivered_packets + 3 >= gs_flow.offered_packets,
        "ARQ keeps up at BER {ber}: {} of {} delivered",
        gs_flow.delivered_packets,
        gs_flow.offered_packets
    );
    assert!(
        gs_report.ledger.gs_retx > 0,
        "losses at BER {ber} must cause retransmissions"
    );
}

#[test]
fn ber_zero_behaves_like_the_ideal_channel() {
    let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap();
    let request = GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 12_800.0);
    let outcome = admit(&[request], &AdmissionConfig::paper()).unwrap();
    let run = |ideal: bool| {
        let config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
            .with_flow(FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ))
            .with_warmup(SimDuration::from_secs(1));
        let poller = GsPoller::variable(&outcome, SimTime::ZERO);
        let channel: Box<dyn btgs::baseband::ChannelModel> = if ideal {
            Box::new(IdealChannel)
        } else {
            Box::new(BerChannel::new(0.0, DetRng::seed_from_u64(1).stream(0)))
        };
        let mut sim = PiconetSim::new(config, Box::new(poller), channel).unwrap();
        sim.add_source(Box::new(CbrSource::new(
            FlowId(1),
            SimDuration::from_millis(20),
            144,
            176,
            DetRng::seed_from_u64(77).stream(1),
        )))
        .unwrap();
        sim.run(SimTime::from_secs(10)).unwrap()
    };
    let ideal = run(true);
    let ber0 = run(false);
    assert_eq!(ideal.ledger, ber0.ledger);
    assert_eq!(
        ideal.flow(FlowId(1)).delivered_bytes,
        ber0.flow(FlowId(1)).delivered_bytes
    );
}
