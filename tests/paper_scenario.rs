//! End-to-end reproduction checks of the paper's evaluation (§4).

use btgs::baseband::AmAddr;
use btgs::core::{run_point, PaperScenario, PaperScenarioParams, PollerKind};
use btgs::des::{SimDuration, SimTime};

fn s(n: u8) -> AmAddr {
    AmAddr::new(n).unwrap()
}

#[test]
fn gs_flows_deliver_64_kbps_regardless_of_requirement() {
    for ms in [30u64, 38, 46] {
        let point = run_point(
            SimDuration::from_millis(ms),
            11,
            SimTime::from_secs(20),
            PollerKind::PfpGs,
        );
        assert!(
            (point.slave_kbps(1) - 64.0).abs() < 2.0,
            "S1 at {ms} ms: {}",
            point.slave_kbps(1)
        );
        assert!(
            (point.slave_kbps(2) - 128.0).abs() < 4.0,
            "S2 at {ms} ms: {}",
            point.slave_kbps(2)
        );
        assert!(
            (point.slave_kbps(3) - 64.0).abs() < 2.0,
            "S3 at {ms} ms: {}",
            point.slave_kbps(3)
        );
    }
}

#[test]
fn requested_delay_bounds_are_never_exceeded() {
    // The paper's §4.2 claim, at three requirement levels and two seeds.
    for ms in [36u64, 40, 46] {
        for seed in [1u64, 2] {
            let point = run_point(
                SimDuration::from_millis(ms),
                seed,
                SimTime::from_secs(20),
                PollerKind::PfpGs,
            );
            for plan in &point.scenario.gs_plans {
                let stats = &point.report.flow(plan.request.id).delay;
                assert!(stats.count() > 500, "enough samples");
                assert_eq!(
                    stats.violations_of(plan.achievable_bound),
                    0,
                    "{} at {ms} ms seed {seed}: max {} > bound {}",
                    plan.request.id,
                    stats.max().unwrap(),
                    plan.achievable_bound
                );
            }
        }
    }
}

#[test]
fn be_throughput_shrinks_with_tighter_requirements() {
    let loose = run_point(
        SimDuration::from_millis(46),
        5,
        SimTime::from_secs(20),
        PollerKind::PfpGs,
    );
    let tight = run_point(
        SimDuration::from_millis(28),
        5,
        SimTime::from_secs(20),
        PollerKind::PfpGs,
    );
    let be_loose: f64 = (4..=7u8).map(|n| loose.slave_kbps(n)).sum();
    let be_tight: f64 = (4..=7u8).map(|n| tight.slave_kbps(n)).sum();
    assert!(
        be_tight + 5.0 < be_loose,
        "BE must lose bandwidth: {be_tight} vs {be_loose}"
    );
}

#[test]
fn remaining_bandwidth_is_divided_max_min_fairly() {
    // Under pressure the unsaturated BE slaves converge to an equal share
    // while the smallest-demand slave keeps its maximum (the Fig. 5 shape).
    let point = run_point(
        SimDuration::from_millis(28),
        9,
        SimTime::from_secs(20),
        PollerKind::PfpGs,
    );
    let s4 = point.slave_kbps(4);
    assert!((s4 - 83.2).abs() < 2.0, "S4 saturated at its demand: {s4}");
    let shares: Vec<f64> = (5..=7u8).map(|n| point.slave_kbps(n)).collect();
    let max = shares.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let min = shares.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    assert!(
        max - min < 3.0,
        "squeezed BE slaves share equally: {shares:?}"
    );
    // And everyone saturated-or-equal means S5..S7 below their demands.
    assert!(max < 94.4, "S5..S7 are squeezed below their maxima");
}

#[test]
fn warmup_and_windows_are_respected() {
    let scenario = PaperScenario::build(PaperScenarioParams {
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_secs(3),
        include_be: false,
        ..Default::default()
    });
    let report = scenario
        .run(PollerKind::PfpGs, SimTime::from_secs(10))
        .unwrap();
    assert_eq!(report.window_start, SimTime::from_secs(3));
    assert_eq!(report.window_end, SimTime::from_secs(10));
    assert_eq!(report.window(), SimDuration::from_secs(7));
    // ~50 packets/s per GS flow over a 7 s window.
    for plan in &scenario.gs_plans {
        let n = report.flow(plan.request.id).delay.count();
        assert!((330..=360).contains(&n), "{}: {n} samples", plan.request.id);
    }
}

#[test]
fn determinism_same_seed_same_report() {
    let run = |seed| {
        run_point(
            SimDuration::from_millis(40),
            seed,
            SimTime::from_secs(10),
            PollerKind::PfpGs,
        )
    };
    let a = run(21);
    let b = run(21);
    let c = run(22);
    for n in 1..=7u8 {
        assert_eq!(
            a.slave_kbps(n),
            b.slave_kbps(n),
            "S{n} differs across replays"
        );
    }
    assert_eq!(a.report.ledger, b.report.ledger);
    // A different seed genuinely changes the trajectory (phases shift).
    assert_ne!(
        a.report.ledger, c.report.ledger,
        "different seeds should differ somewhere"
    );
    let _ = s(1);
}
