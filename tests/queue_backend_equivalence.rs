//! Differential end-to-end test: every paper figure must reproduce
//! unchanged on the timing-wheel event queue.
//!
//! The heap-backed [`btgs::des::HeapEventQueue`] is the reference model;
//! the timing wheel replaced it purely for speed. Here full
//! [`PaperScenario`] simulations run on both backends across pollers and
//! seeds, and the resulting `RunReport`s must be **byte-identical** (the
//! full `Debug` rendering — every delay sample, ledger cell and counter —
//! not just summary statistics).

use btgs::core::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs::des::{SimDuration, SimTime};
use btgs::piconet::EventQueueBackend;

fn report_bytes(
    scenario: &PaperScenario,
    kind: PollerKind,
    horizon: SimTime,
    backend: EventQueueBackend,
) -> String {
    let report = scenario
        .run_with_backend(kind, horizon, backend)
        .expect("scenario runs");
    format!("{report:#?}")
}

#[test]
fn paper_scenario_reports_identical_across_backends() {
    let horizon = SimTime::from_secs(3);
    for kind in [PollerKind::PfpGs, PollerKind::FixedGs] {
        for seed in [1u64, 7, 23, 1234] {
            let scenario = PaperScenario::build(PaperScenarioParams {
                delay_requirement: SimDuration::from_millis(40),
                seed,
                warmup: SimDuration::from_millis(500),
                include_be: true,
                ..Default::default()
            });
            let wheel = report_bytes(&scenario, kind, horizon, EventQueueBackend::TimingWheel);
            let heap = report_bytes(&scenario, kind, horizon, EventQueueBackend::BinaryHeap);
            assert_eq!(
                wheel, heap,
                "RunReport diverged between queue backends ({kind:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn gs_only_and_tight_requirement_reports_identical() {
    // GS-only traffic exercises the idle/Idle-until paths; a tight delay
    // requirement changes the derived schedule entirely.
    let horizon = SimTime::from_secs(3);
    for (dreq_ms, include_be) in [(30u64, false), (46, false), (36, true)] {
        let scenario = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(dreq_ms),
            seed: 5,
            warmup: SimDuration::from_millis(500),
            include_be,
            ..Default::default()
        });
        let wheel = report_bytes(
            &scenario,
            PollerKind::PfpGs,
            horizon,
            EventQueueBackend::TimingWheel,
        );
        let heap = report_bytes(
            &scenario,
            PollerKind::PfpGs,
            horizon,
            EventQueueBackend::BinaryHeap,
        );
        assert_eq!(
            wheel, heap,
            "RunReport diverged (Dreq {dreq_ms} ms, include_be {include_be})"
        );
    }
}

#[test]
fn wheel_is_the_default_backend() {
    let scenario = PaperScenario::build(PaperScenarioParams {
        delay_requirement: SimDuration::from_millis(40),
        seed: 3,
        warmup: SimDuration::from_millis(500),
        include_be: true,
        ..Default::default()
    });
    let horizon = SimTime::from_secs(2);
    let via_default = format!(
        "{:#?}",
        scenario.run(PollerKind::PfpGs, horizon).expect("runs")
    );
    let via_wheel = report_bytes(
        &scenario,
        PollerKind::PfpGs,
        horizon,
        EventQueueBackend::TimingWheel,
    );
    assert_eq!(via_default, via_wheel);
}
