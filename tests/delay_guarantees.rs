//! The central invariant of the paper, exercised across many admitted
//! configurations: **every flow admitted by the Fig. 3 routine observes
//! packet delays within its Eq. 1 bound** when polled by the fixed or
//! variable interval poller.

use btgs::baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
use btgs::core::{admit, AdmissionConfig, AdmissionOutcome, GsPoller, GsRequest, PollerKind};
use btgs::des::{DetRng, SimDuration, SimTime};
use btgs::gs::TokenBucketSpec;
use btgs::piconet::{FlowSpec, PiconetConfig, PiconetSim, RunReport};
use btgs::traffic::{CbrSource, FlowId};

/// Simulates an admitted GS-only configuration and returns the report.
fn simulate(
    requests: &[GsRequest],
    outcome: &AdmissionOutcome,
    kind: PollerKind,
    seed: u64,
    horizon: SimTime,
) -> RunReport {
    let mut config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_warmup(SimDuration::from_secs(1));
    for r in requests {
        config = config.with_flow(FlowSpec::new(
            r.id,
            r.slave,
            r.direction,
            LogicalChannel::GuaranteedService,
        ));
    }
    let poller = match kind {
        PollerKind::FixedGs => GsPoller::fixed(outcome, SimTime::ZERO),
        _ => GsPoller::variable(outcome, SimTime::ZERO),
    };
    let mut sim = PiconetSim::new(config, Box::new(poller), Box::new(IdealChannel)).unwrap();
    let root = DetRng::seed_from_u64(seed);
    for r in requests {
        let mut stream = root.stream(u64::from(r.id.0));
        let interval =
            SimDuration::from_secs_f64(r.tspec.max_packet() as f64 / r.tspec.peak_rate());
        let offset = SimTime::from_nanos(stream.below(interval.as_nanos()));
        sim.add_source(Box::new(
            CbrSource::new(
                r.id,
                interval,
                r.tspec.min_policed_unit(),
                r.tspec.max_packet(),
                stream,
            )
            .starting_at(offset),
        ))
        .unwrap();
    }
    sim.run(horizon).unwrap()
}

fn assert_bounds_hold(requests: &[GsRequest], outcome: &AdmissionOutcome, report: &RunReport) {
    for r in requests {
        let grant = outcome.grant(r.id).expect("admitted");
        let stats = &report.flow(r.id).delay;
        assert!(stats.count() > 100, "{}: too few samples", r.id);
        assert_eq!(
            stats.violations_of(grant.bound),
            0,
            "{}: max {} exceeds bound {}",
            r.id,
            stats.max().unwrap(),
            grant.bound
        );
    }
}

fn tspec(interval_ms: f64, m: u32, big_m: u32) -> TokenBucketSpec {
    TokenBucketSpec::for_cbr(interval_ms / 1000.0, m, big_m).unwrap()
}

/// A handful of structurally different admitted configurations.
fn configurations() -> Vec<Vec<GsRequest>> {
    let s = |n| AmAddr::new(n).unwrap();
    vec![
        // One uplink voice flow at high rate.
        vec![GsRequest::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            tspec(20.0, 144, 176),
            12_800.0,
        )],
        // A downlink-only flow (exercises improvement (c)).
        vec![GsRequest::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            tspec(20.0, 144, 176),
            9_600.0,
        )],
        // Three slaves at the token rate (the paper's shape, no BE).
        vec![
            GsRequest::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                tspec(20.0, 144, 176),
                8_800.0,
            ),
            GsRequest::new(
                FlowId(2),
                s(2),
                Direction::MasterToSlave,
                tspec(20.0, 144, 176),
                8_800.0,
            ),
            GsRequest::new(
                FlowId(3),
                s(2),
                Direction::SlaveToMaster,
                tspec(20.0, 144, 176),
                8_800.0,
            ),
            GsRequest::new(
                FlowId(4),
                s(3),
                Direction::SlaveToMaster,
                tspec(20.0, 144, 176),
                8_800.0,
            ),
        ],
        // Heterogeneous rates and packet sizes, including multi-segment
        // packets (300..400 B needs two DH3 polls at worst).
        vec![
            GsRequest::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                tspec(25.0, 300, 400),
                18_000.0,
            ),
            GsRequest::new(
                FlowId(2),
                s(2),
                Direction::SlaveToMaster,
                tspec(40.0, 144, 176),
                8_800.0,
            ),
        ],
        // Small packets over DH1-capable range.
        vec![
            GsRequest::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                tspec(15.0, 80, 100),
                9_000.0,
            ),
            GsRequest::new(
                FlowId(2),
                s(2),
                Direction::MasterToSlave,
                tspec(30.0, 144, 176),
                8_800.0,
            ),
        ],
    ]
}

#[test]
fn variable_poller_honours_every_admitted_bound() {
    for (i, requests) in configurations().into_iter().enumerate() {
        let outcome = admit(&requests, &AdmissionConfig::paper())
            .unwrap_or_else(|e| panic!("configuration {i} must be admissible: {e}"));
        for seed in [3u64, 17] {
            let report = simulate(
                &requests,
                &outcome,
                PollerKind::PfpGs,
                seed,
                SimTime::from_secs(15),
            );
            assert_bounds_hold(&requests, &outcome, &report);
        }
    }
}

#[test]
fn fixed_poller_honours_every_admitted_bound() {
    for (i, requests) in configurations().into_iter().enumerate() {
        let outcome = admit(&requests, &AdmissionConfig::paper())
            .unwrap_or_else(|e| panic!("configuration {i} must be admissible: {e}"));
        let report = simulate(
            &requests,
            &outcome,
            PollerKind::FixedGs,
            5,
            SimTime::from_secs(15),
        );
        assert_bounds_hold(&requests, &outcome, &report);
    }
}

#[test]
fn gs_throughput_equals_offered_load() {
    for requests in configurations() {
        let outcome = admit(&requests, &AdmissionConfig::paper()).unwrap();
        let report = simulate(
            &requests,
            &outcome,
            PollerKind::PfpGs,
            8,
            SimTime::from_secs(15),
        );
        for r in &requests {
            let flow_report = report.flow(r.id);
            // Packets offered in the last few milliseconds may still be in
            // flight when the horizon cuts the run; allow that slack.
            assert!(
                flow_report.delivered_packets + 2 >= flow_report.offered_packets,
                "{}: delivered {} of {} offered",
                r.id,
                flow_report.delivered_packets,
                flow_report.offered_packets
            );
        }
    }
}

#[test]
fn bursty_conforming_traffic_stays_within_bounds() {
    // A trace with jittered arrivals that still conforms to the token
    // bucket (every packet 20 ms apart or more, sizes in range).
    let s1 = AmAddr::new(1).unwrap();
    let spec = tspec(20.0, 144, 176);
    let request = GsRequest::new(FlowId(1), s1, Direction::SlaveToMaster, spec, 12_800.0);
    let outcome = admit(std::slice::from_ref(&request), &AdmissionConfig::paper()).unwrap();
    let grant = outcome.grant(FlowId(1)).unwrap();

    let mut config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_warmup(SimDuration::from_secs(1));
    config = config.with_flow(FlowSpec::new(
        FlowId(1),
        s1,
        Direction::SlaveToMaster,
        LogicalChannel::GuaranteedService,
    ));
    let poller = GsPoller::variable(&outcome, SimTime::ZERO);
    let mut sim = PiconetSim::new(config, Box::new(poller), Box::new(IdealChannel)).unwrap();
    // Arrivals at >= 20 ms spacing with pseudo-random extra gaps: conforming
    // but phase-shifting, which exercises improvement (b).
    let mut items = Vec::new();
    let mut rng = DetRng::seed_from_u64(33);
    let mut t = SimTime::from_millis(5);
    for seq in 0..600u64 {
        items.push((t, 144 + (rng.below(33) as u32)));
        let gap = 20_000_000 + rng.below(15_000_000); // 20..35 ms
        t += SimDuration::from_nanos(gap);
        let _ = seq;
    }
    sim.add_source(Box::new(btgs::traffic::TraceSource::new(FlowId(1), items)))
        .unwrap();
    let report = sim.run(SimTime::from_secs(16)).unwrap();
    let stats = &report.flow(FlowId(1)).delay;
    assert!(stats.count() > 400);
    assert_eq!(
        stats.violations_of(grant.bound),
        0,
        "jittered conforming traffic must stay within the bound (max {})",
        stats.max().unwrap()
    );
}
