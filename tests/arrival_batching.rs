//! Differential end-to-end test for lazy CBR arrival batching.
//!
//! With `arrival_batch > 1` the engine materializes future uplink-ACL and
//! SCO-voice packets eagerly and elides their per-packet `Arrival` events,
//! clamping the master's idle/sleep wake-ups to the earliest batched
//! instant instead. That must be unobservable: full [`PaperScenario`] runs
//! across pollers and seeds must produce `RunReport`s identical to the
//! unbatched engine **modulo `events_processed`** — every delay sample,
//! ledger cell and counter, not just summary statistics — while the event
//! count itself drops by the batching factor's share of arrival events.

use btgs::core::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs::des::{SimDuration, SimTime};

/// The report's full `Debug` rendering minus the `events_processed` line
/// (the one field batching is allowed to change), plus the raw count.
fn run(params: PaperScenarioParams, kind: PollerKind, horizon: SimTime) -> (String, u64) {
    let scenario = PaperScenario::build(params);
    let report = scenario.run(kind, horizon).expect("scenario runs");
    let events = report.events_processed;
    let digest: String = format!("{report:#?}")
        .lines()
        .filter(|l| !l.contains("events_processed"))
        .collect::<Vec<_>>()
        .join("\n");
    (digest, events)
}

fn params(seed: u64, include_be: bool, batch: u32) -> PaperScenarioParams {
    PaperScenarioParams {
        delay_requirement: SimDuration::from_millis(40),
        seed,
        warmup: SimDuration::from_millis(500),
        include_be,
        arrival_batch: batch,
        ..Default::default()
    }
}

#[test]
fn batched_reports_identical_modulo_event_count() {
    let horizon = SimTime::from_secs(3);
    for kind in [PollerKind::PfpGs, PollerKind::FixedGs] {
        for seed in [1u64, 7, 23] {
            for include_be in [true, false] {
                let (base, base_events) = run(params(seed, include_be, 1), kind, horizon);
                for batch in [2u32, 8, 16] {
                    let (digest, events) = run(params(seed, include_be, batch), kind, horizon);
                    assert_eq!(
                        base, digest,
                        "RunReport diverged under batching \
                         ({kind:?}, seed {seed}, include_be {include_be}, batch {batch})"
                    );
                    assert!(
                        events < base_events,
                        "batch {batch} did not elide events ({events} vs {base_events})"
                    );
                }
            }
        }
    }
}

/// The headline criterion: on the 5-simulated-second paper scenario
/// (the `sim_steady/paper_scenario_5s` bench configuration), batching
/// removes at least 25% of all engine events.
#[test]
fn batching_cuts_paper_scenario_5s_events_by_a_quarter() {
    let horizon = SimTime::from_secs(5);
    let (base, base_events) = run(params(1, true, 1), PollerKind::PfpGs, horizon);
    let (digest, events) = run(params(1, true, 16), PollerKind::PfpGs, horizon);
    assert_eq!(base, digest, "batching must not change the physics");
    assert!(
        4 * events <= 3 * base_events,
        "expected a >= 25% event cut: {events} of {base_events} events remain"
    );
}
