//! Simulation time types.
//!
//! All simulation time is kept as an integer number of **nanoseconds** since
//! the start of the simulation. Integer time makes event ordering exact and
//! runs bit-for-bit reproducibly on every platform; nanosecond resolution
//! leaves no visible rounding error at the microsecond-to-millisecond scales
//! a Bluetooth piconet operates on (one slot is 625 µs = 625 000 ns).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds since simulation start.
///
/// `SimTime` is an absolute instant; the corresponding span type is
/// [`SimDuration`]. Arithmetic between the two is checked in debug builds and
/// saturating semantics are never used silently: subtracting a later time
/// from an earlier one panics, because in a discrete-event simulation that is
/// always a logic error.
///
/// # Examples
///
/// ```
/// use btgs_des::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(20);
/// assert_eq!(t1 - t0, SimDuration::from_millis(20));
/// assert!(t1 > t0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use btgs_des::SimDuration;
///
/// let slot = SimDuration::from_micros(625);
/// assert_eq!(slot * 2, SimDuration::from_micros(1250));
/// assert_eq!(SimDuration::from_millis(20).as_secs_f64(), 0.020);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds since simulation start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds since simulation start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds since simulation start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_f64_to_nanos(s))
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, or `None` if `earlier` is later
    /// than `self`.
    #[inline]
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The duration elapsed since `earlier`, clamped to zero if `earlier` is
    /// actually later than `self`.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, returning `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Rounds this instant **up** to the next multiple of `quantum`
    /// (returns `self` unchanged if already aligned).
    ///
    /// Used to align master transmissions to Bluetooth slot boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[inline]
    pub fn align_up(self, quantum: SimDuration) -> SimTime {
        assert!(quantum.0 > 0, "alignment quantum must be non-zero");
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            SimTime(self.0 + (quantum.0 - rem))
        }
    }

    /// Rounds this instant **down** to the previous multiple of `quantum`.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[inline]
    pub fn align_down(self, quantum: SimDuration) -> SimTime {
        assert!(quantum.0 > 0, "alignment quantum must be non-zero");
        SimTime(self.0 - self.0 % quantum.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_f64_to_nanos(s))
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }

    /// How many whole `rhs` fit in `self` (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0 / rhs.0
    }

    /// How many `rhs` are needed to cover `self` (ceiling division).
    ///
    /// This is the `ceil(y / x_k)` operation of the paper's Fig. 2 algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div_ceil_duration(self, rhs: SimDuration) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0.div_ceil(rhs.0)
    }
}

fn secs_f64_to_nanos(s: f64) -> u64 {
    assert!(s.is_finite(), "seconds value must be finite, got {s}");
    assert!(s >= 0.0, "seconds value must be non-negative, got {s}");
    let ns = (s * 1e9).round();
    assert!(
        ns <= u64::MAX as f64,
        "seconds value {s} overflows the nanosecond representation"
    );
    ns as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl SubAssign<SimDuration> for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: SimDuration) -> SimDuration {
        rhs * self
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".to_owned()
    } else if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns >= 1_000_000_000 {
        format!("{:.6}s", ns as f64 / 1e9)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn float_round_trip() {
        let d = SimDuration::from_secs_f64(0.020);
        assert_eq!(d, SimDuration::from_millis(20));
        assert_eq!(d.as_secs_f64(), 0.020);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t, SimTime::from_millis(1500));
    }

    #[test]
    fn float_rounds_to_nearest_nanosecond() {
        // 144 bytes at 8800 B/s = 16.363636... ms
        let d = SimDuration::from_secs_f64(144.0 / 8800.0);
        assert_eq!(d.as_nanos(), 16_363_636);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!(t - d, SimTime::from_millis(5));
        assert_eq!((t + d) - t, d);
        assert_eq!(t.checked_duration_since(t + d), None);
        assert_eq!(
            (t + d).checked_duration_since(t),
            Some(SimDuration::from_millis(5))
        );
        assert_eq!(t.saturating_duration_since(t + d), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later SimTime")]
    fn negative_interval_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_micros(625);
        assert_eq!(d * 2, SimDuration::from_micros(1250));
        assert_eq!(2 * d, SimDuration::from_micros(1250));
        assert_eq!((d * 3) / 3, d);
        assert_eq!(d.checked_mul(u64::MAX), None);
    }

    #[test]
    fn alignment() {
        let slot2 = SimDuration::from_micros(1250);
        assert_eq!(SimTime::ZERO.align_up(slot2), SimTime::ZERO);
        assert_eq!(
            SimTime::from_nanos(1).align_up(slot2),
            SimTime::from_micros(1250)
        );
        assert_eq!(
            SimTime::from_micros(1250).align_up(slot2),
            SimTime::from_micros(1250)
        );
        assert_eq!(
            SimTime::from_micros(1300).align_down(slot2),
            SimTime::from_micros(1250)
        );
    }

    #[test]
    fn div_ceil_duration_matches_paper_fig2_usage() {
        // ceil(y / x): y = 11.25 ms, x = 16.36 ms -> 1 poll.
        let y = SimDuration::from_micros(11_250);
        let x = SimDuration::from_micros(16_360);
        assert_eq!(y.div_ceil_duration(x), 1);
        // y = 18.75 ms, x = 9.22 ms -> 3 polls.
        let y = SimDuration::from_micros(18_750);
        let x = SimDuration::from_micros(9_220);
        assert_eq!(y.div_ceil_duration(x), 3);
        // Exact multiples need no extra poll.
        let y = SimDuration::from_micros(20);
        let x = SimDuration::from_micros(10);
        assert_eq!(y.div_ceil_duration(x), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(625).to_string(), "625us");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3s");
        assert_eq!(SimDuration::from_nanos(1_234).to_string(), "1234ns");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(format!("{:?}", SimTime::from_millis(5)), "SimTime(5ms)");
    }

    #[test]
    fn ordering_and_default() {
        assert!(SimTime::ZERO < SimTime::MAX);
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
        let mut v = [SimTime::from_secs(2), SimTime::ZERO, SimTime::from_secs(1)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(2));
    }
}
