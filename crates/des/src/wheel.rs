//! The production pending-event set: a hierarchical timing wheel.
//!
//! The simulator's event population is extremely clustered: master wake-ups,
//! exchange completions and SCO reservations all land on the 625 µs slot
//! grid within a few slot-pairs of the clock, and traffic arrivals sit at
//! most tens of milliseconds out. A comparison-based heap pays `O(log n)`
//! and a cache miss per level for that workload; a calendar of time buckets
//! pays `O(1)`.
//!
//! # Structure
//!
//! Time (integer nanoseconds) is divided into *ticks* of 2^19 ns ≈ 0.524 ms
//! — slightly under one slot, so consecutive exchanges land in consecutive
//! buckets. Three tiers hold the index entries (payloads live in the shared
//! slot arena, exactly as in the heap backend):
//!
//! * **L0** — 256 buckets of one tick each, covering the current *aligned*
//!   134 ms window. Push and pop are array indexing.
//! * **L1** — 256 buckets of 256 ticks (≈134 ms) each, covering ≈34 s.
//!   When the clock enters an L1 bucket's range, its entries cascade down
//!   into L0.
//! * **Overflow** — a `BinaryHeap`, for the rare event more than ≈34 s
//!   ahead. Entries migrate into the rings as the L1 window advances.
//!
//! The bucket at the current tick is drained into a *batch*, sorted
//! descending by `(time, seq)` and consumed from the back, so pops are
//! `O(1)` and same-time events fire in FIFO push order — the exact
//! `(time, insertion order)` contract of the
//! [`HeapEventQueue`](crate::HeapEventQueue) reference, which differential
//! tests enforce. Late pushes into the current tick (a handler scheduling
//! for *now*) binary-search into the batch.
//!
//! Cancellation is lazy: [`cancel`](EventQueue::cancel) invalidates the
//! entry's generation in the arena and the dead index entry is skipped when
//! its bucket drains.
//!
//! In steady state nothing allocates: buckets, batch and arena all recycle
//! their capacity, which the allocation-counting tests in `btgs-bench`
//! enforce.

use crate::queue::{Entry, EventKey, PendingEvents, QueueOccupancy, Scheduled, SlotArena};
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// log2 of the bucket count per level.
const LEVEL_BITS: u32 = 8;
/// Buckets per level.
const LEVEL_SIZE: usize = 1 << LEVEL_BITS;
/// Mask selecting a bucket index within a level.
const LEVEL_MASK: u64 = LEVEL_SIZE as u64 - 1;
/// log2 of the L0 tick width in nanoseconds: 2^19 ns ≈ 0.524 ms, slightly
/// under one Bluetooth slot (625 µs).
const L0_SHIFT: u32 = 19;
/// log2 of the L1 bucket width in nanoseconds (≈134 ms).
const L1_SHIFT: u32 = L0_SHIFT + LEVEL_BITS;
/// 64-bit words per occupancy bitmap.
const WORDS: usize = LEVEL_SIZE / 64;

/// Index of the first occupied bucket at or after `start`, per `bits`;
/// `None` if the rest of the level is empty.
#[inline]
fn next_occupied(bits: &[u64; WORDS], start: usize) -> Option<usize> {
    let mut word = start >> 6;
    let mut w = bits[word] & (!0u64 << (start & 63));
    loop {
        if w != 0 {
            return Some((word << 6) + w.trailing_zeros() as usize);
        }
        word += 1;
        if word == WORDS {
            return None;
        }
        w = bits[word];
    }
}

/// A pending-event set ordered by `(time, insertion order)`, implemented as
/// a hierarchical timing wheel.
///
/// Same-time events pop in the order they were pushed, which makes runs
/// reproducible without relying on container internals. Behaviour is
/// byte-for-byte identical to the [`HeapEventQueue`](crate::HeapEventQueue)
/// reference model.
///
/// # Examples
///
/// ```
/// use btgs_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// let key = q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early2");
///
/// assert!(q.cancel(key).is_some());
/// let first = q.pop().unwrap();
/// assert_eq!(first.event, "early2");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Fast-path register holding the earliest pending entry, when known.
    ///
    /// A push into an empty queue lands here instead of a bucket, and an
    /// earlier push displaces it; a model with few in-flight events (like
    /// the self-rescheduling micro-benchmarks) then cycles push→pop through
    /// this one field without ever touching the rings. Invariant: when
    /// `Some`, no *live* entry anywhere in the structure orders before it.
    front: Option<Entry>,
    /// Entries of the tick being drained (and any "past" pushes), sorted
    /// descending by `(time, seq)`; popped from the back.
    batch: Vec<Entry>,
    /// One-tick buckets covering the current aligned L1 window.
    l0: Box<[Vec<Entry>; LEVEL_SIZE]>,
    /// 256-tick buckets covering the next ≈34 s.
    l1: Box<[Vec<Entry>; LEVEL_SIZE]>,
    /// Events further out than the L1 horizon.
    overflow: BinaryHeap<Entry>,
    /// Recycled capacity for L1 buckets. The L1 ring only wraps every
    /// ≈34 s, so without recycling every window advance would grow a
    /// fresh zero-capacity bucket — steady-state allocations. Drained
    /// buckets park their capacity here; first pushes adopt it.
    l1_spare: Vec<Entry>,
    /// Index entries currently stored across `l0` / `l1` (including dead
    /// ones), kept so refills can skip empty levels without scanning.
    l0_len: usize,
    l1_len: usize,
    /// Occupancy bitmaps (bit *i* ⇔ bucket *i* non-empty): the refill scan
    /// finds the next occupied bucket with mask-and-count-zeros instead of
    /// touching empty buckets' memory.
    l0_bits: [u64; WORDS],
    l1_bits: [u64; WORDS],
    /// The refill scan position; nothing earlier remains in the rings.
    cur_tick: u64,
    /// `true` once the bucket at `cur_tick` has been drained into the
    /// batch — further pushes for that tick must merge into the batch,
    /// not the (already consumed) bucket.
    cur_drained: bool,
    arena: SlotArena<E>,
    next_seq: u64,
    live: usize,
}

/// Initial capacity of every L0 bucket. Eight entries absorb the typical
/// worst-case tick occupancy (clustered arrivals plus cancelled-wake
/// zombies) up front, so steady state does not trickle capacity upgrades
/// across the 256 slots as each sees its first busy tick. 256 × 8 × 24 B
/// ≈ 49 KiB per queue.
const L0_PREALLOC: usize = 8;

/// A per-level bucket array; each bucket pre-sized to `prealloc` entries.
fn buckets(prealloc: usize) -> Box<[Vec<Entry>; LEVEL_SIZE]> {
    let v: Vec<Vec<Entry>> = (0..LEVEL_SIZE)
        .map(|_| Vec::with_capacity(prealloc))
        .collect();
    match v.into_boxed_slice().try_into() {
        Ok(b) => b,
        Err(_) => unreachable!("collected exactly LEVEL_SIZE buckets"),
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            front: None,
            // Pre-sized like the L0 buckets: bucket swaps rotate the batch
            // vector into the ring, so a zero-capacity batch would seed a
            // zero-capacity bucket and re-start the warm-up trickle.
            batch: Vec::with_capacity(L0_PREALLOC),
            l0: buckets(L0_PREALLOC),
            l1: buckets(0),
            overflow: BinaryHeap::new(),
            l1_spare: Vec::new(),
            l0_bits: [0; WORDS],
            l1_bits: [0; WORDS],
            l0_len: 0,
            l1_len: 0,
            cur_tick: 0,
            cur_drained: false,
            arena: SlotArena::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live (not yet popped or cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` at `time` and returns a key that can cancel it.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) -> EventKey {
        let (slot, generation) = self.arena.alloc(event);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            time,
            seq,
            slot,
            generation,
        };
        if self.live == 0 {
            // Empty queue: the new entry IS the front. Zombies possibly
            // still parked (in buckets or the register itself) are dead and
            // never returned, so overwriting the register is sound.
            self.front = Some(entry);
            self.live = 1;
            return EventKey { slot, generation };
        }
        self.live += 1;
        if let Some(f) = self.front {
            // New entries get fresh (larger) seqs, so a time tie keeps the
            // register holder first — FIFO within a timestamp.
            if time < f.time {
                self.front = Some(entry);
                self.place(f);
                return EventKey { slot, generation };
            }
        }
        self.place(entry);
        EventKey { slot, generation }
    }

    /// Cancels a scheduled event, returning its payload if it was still
    /// pending. Stale keys (already fired or cancelled) return `None`.
    ///
    /// The index entry stays in its bucket and is discarded lazily when the
    /// bucket drains.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let payload = self.arena.take(key)?;
        self.live -= 1;
        Some(payload)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_front().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.ensure_front()?;
        Some(self.take_front(entry))
    }

    /// Removes and returns the earliest pending event if it fires no later
    /// than `horizon`. One traversal serves both the peek and the pop,
    /// which is what the run loop hammers.
    #[inline]
    pub fn pop_if_due(&mut self, horizon: SimTime) -> Option<Scheduled<E>> {
        // Fast path: a due register entry resolves with a single arena
        // access (the take doubles as the liveness check).
        if let Some(f) = self.front {
            if f.time <= horizon {
                self.front = None;
                if let Some(event) = self.arena.take(EventKey {
                    slot: f.slot,
                    generation: f.generation,
                }) {
                    self.live -= 1;
                    return Some(Scheduled {
                        time: f.time,
                        event,
                    });
                }
                // Dead register (cancelled while parked): fall through.
            } else if self.arena.is_live(&f) {
                return None; // earliest event is live but not yet due
            } else {
                self.front = None;
            }
        }
        let entry = self.ensure_front()?;
        if entry.time > horizon {
            return None;
        }
        Some(self.take_front(entry))
    }

    /// Removes `entry` — which [`Self::ensure_front`] just returned — from
    /// the register or the batch and resolves its payload.
    fn take_front(&mut self, entry: Entry) -> Scheduled<E> {
        match self.front {
            Some(f) if f.seq == entry.seq => self.front = None,
            _ => {
                let popped = self.batch.pop();
                debug_assert!(popped.is_some_and(|p| p.seq == entry.seq));
            }
        }
        let event = self
            .arena
            .take(EventKey {
                slot: entry.slot,
                generation: entry.generation,
            })
            .expect("front entry is live");
        self.live -= 1;
        Scheduled {
            time: entry.time,
            event,
        }
    }

    /// Routes an index entry to the batch, a ring bucket, or the overflow
    /// heap according to its distance from `cur_tick`.
    fn place(&mut self, e: Entry) {
        let tick = e.time.as_nanos() >> L0_SHIFT;
        if tick < self.cur_tick || (tick == self.cur_tick && self.cur_drained) {
            // Behind the drain point: merge into the sorted batch so the
            // back stays the earliest. Rare (a handler scheduling for the
            // instant being processed), so the O(n) insert is immaterial.
            let key = (e.time, e.seq);
            let pos = self.batch.partition_point(|x| (x.time, x.seq) > key);
            self.batch.insert(pos, e);
            return;
        }
        let l1_tick = tick >> LEVEL_BITS;
        let cur_l1 = self.cur_tick >> LEVEL_BITS;
        if l1_tick == cur_l1 {
            let idx = (tick & LEVEL_MASK) as usize;
            self.l0[idx].push(e);
            self.l0_bits[idx >> 6] |= 1 << (idx & 63);
            self.l0_len += 1;
        } else if l1_tick - cur_l1 < LEVEL_SIZE as u64 {
            let idx = (l1_tick & LEVEL_MASK) as usize;
            let bucket = &mut self.l1[idx];
            if bucket.capacity() == 0 && self.l1_spare.capacity() > 0 {
                std::mem::swap(bucket, &mut self.l1_spare);
            }
            bucket.push(e);
            self.l1_bits[idx >> 6] |= 1 << (idx & 63);
            self.l1_len += 1;
        } else {
            self.overflow.push(e);
        }
    }

    /// The earliest live entry — the register if occupied, else the back of
    /// the batch after advancing past dead entries and empty buckets.
    /// Returns `None` if no live event remains anywhere.
    fn ensure_front(&mut self) -> Option<Entry> {
        loop {
            if let Some(f) = self.front {
                if self.arena.is_live(&f) {
                    return Some(f);
                }
                self.front = None; // cancelled while parked
            }
            while let Some(e) = self.batch.last() {
                if self.arena.is_live(e) {
                    return Some(*e);
                }
                self.batch.pop();
            }
            // A refill may land a singleton in the register, so loop.
            if !self.refill() {
                return None;
            }
        }
    }

    /// Moves the next non-empty bucket into the (empty) batch, cascading
    /// L1 buckets and migrating overflow entries as the window advances.
    /// Returns `false` if every tier is empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        loop {
            if self.l0_len > 0 {
                // Jump to the next occupied bucket in the current aligned
                // L1 window via the occupancy bitmap.
                let base = self.cur_tick & !LEVEL_MASK;
                let start = (self.cur_tick & LEVEL_MASK) as usize;
                let idx = next_occupied(&self.l0_bits, start)
                    .expect("l0_len > 0 but no occupied bucket in the window");
                self.cur_tick = base + idx as u64;
                self.cur_drained = true;
                self.l0_bits[idx >> 6] &= !(1 << (idx & 63));
                let bucket = &mut self.l0[idx];
                self.l0_len -= bucket.len();
                if bucket.len() == 1 {
                    // The dominant slot-grid case: one event per tick. It
                    // is the earliest entry anywhere (batch empty, rings
                    // later), so it goes straight into the front register —
                    // no batch round-trip — and the bucket keeps its
                    // capacity. Pushes that would order before it displace
                    // it via the register compare in `push`.
                    debug_assert!(self.front.is_none());
                    self.front = Some(bucket.pop().expect("len checked"));
                } else {
                    std::mem::swap(&mut self.batch, bucket);
                    self.batch
                        // analyze: allow(unstable-sort): the key (time, seq)
                        // is unique — seq is a per-wheel monotone counter —
                        // so no two entries compare equal.
                        .sort_unstable_by_key(|e| core::cmp::Reverse((e.time, e.seq)));
                }
                return true;
            }
            if self.l1_len == 0 && self.overflow.is_empty() {
                return false;
            }
            // Advance to the next L1 window holding entries. Overflow
            // entries always lie beyond every ring entry (the migration
            // below maintains that), so the ring candidate wins if present.
            let cur_l1 = self.cur_tick >> LEVEL_BITS;
            let target = if self.l1_len > 0 {
                // The ring holds l1 ticks in (cur_l1, cur_l1 + 256): scan
                // the bitmap from the cursor up, then from the wrap.
                let start = ((cur_l1 + 1) & LEVEL_MASK) as usize;
                let idx = next_occupied(&self.l1_bits, start)
                    .or_else(|| next_occupied(&self.l1_bits, 0))
                    .expect("l1_len > 0 but no occupied L1 bucket");
                let k = (idx as u64).wrapping_sub(cur_l1 + 1) & LEVEL_MASK;
                cur_l1 + 1 + k
            } else {
                self.overflow
                    .peek()
                    .expect("overflow non-empty")
                    .time
                    .as_nanos()
                    >> L1_SHIFT
            };
            self.cur_tick = target << LEVEL_BITS;
            self.cur_drained = false;
            // Cascade the target L1 bucket into L0.
            let idx = (target & LEVEL_MASK) as usize;
            if !self.l1[idx].is_empty() {
                self.l1_bits[idx >> 6] &= !(1 << (idx & 63));
                let mut bucket = std::mem::take(&mut self.l1[idx]);
                self.l1_len -= bucket.len();
                for e in bucket.drain(..) {
                    let tick = e.time.as_nanos() >> L0_SHIFT;
                    debug_assert_eq!(tick >> LEVEL_BITS, target);
                    let i0 = (tick & LEVEL_MASK) as usize;
                    self.l0[i0].push(e);
                    self.l0_bits[i0 >> 6] |= 1 << (i0 & 63);
                    self.l0_len += 1;
                }
                // Park the emptied capacity for whichever slot fills next
                // (this slot will not come around again for ~34 s).
                if bucket.capacity() > self.l1_spare.capacity() {
                    self.l1_spare = bucket;
                }
            }
            // Migrate overflow entries the advanced window now covers.
            while let Some(e) = self.overflow.peek() {
                let o_l1 = e.time.as_nanos() >> L1_SHIFT;
                debug_assert!(o_l1 >= target);
                if o_l1 - target >= LEVEL_SIZE as u64 {
                    break;
                }
                let e = self.overflow.pop().expect("just peeked");
                if o_l1 == target {
                    let tick = e.time.as_nanos() >> L0_SHIFT;
                    let i0 = (tick & LEVEL_MASK) as usize;
                    self.l0[i0].push(e);
                    self.l0_bits[i0 >> 6] |= 1 << (i0 & 63);
                    self.l0_len += 1;
                } else {
                    let i1 = (o_l1 & LEVEL_MASK) as usize;
                    self.l1[i1].push(e);
                    self.l1_bits[i1 >> 6] |= 1 << (i1 & 63);
                    self.l1_len += 1;
                }
            }
            // L0 may still be empty (everything landed in the L1 ring):
            // loop and advance again.
        }
    }
}

impl<E> PendingEvents<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, event: E) -> EventKey {
        EventQueue::push(self, time, event)
    }

    fn cancel(&mut self, key: EventKey) -> Option<E> {
        EventQueue::cancel(self, key)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        EventQueue::pop(self)
    }

    fn pop_if_due(&mut self, horizon: SimTime) -> Option<Scheduled<E>> {
        EventQueue::pop_if_due(self, horizon)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn occupancy(&self) -> QueueOccupancy {
        QueueOccupancy {
            live: self.live,
            // Tier counts track stored index entries, which may include
            // cancelled ones not yet swept — a structural snapshot, not
            // an exact live split.
            near: usize::from(self.front.is_some()) + self.batch.len() + self.l0_len,
            far: self.l1_len,
            overflow: self.overflow.len(),
        }
    }
}

impl<E: core::fmt::Debug> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn events_across_all_tiers_pop_in_order() {
        let mut q = EventQueue::new();
        // Overflow (beyond ~34 s), L1 (beyond ~134 ms), L0, current tick.
        q.push(SimTime::from_secs(120), "overflow");
        q.push(SimTime::from_secs(1), "l1");
        q.push(SimTime::from_millis(5), "l0");
        q.push(SimTime::from_nanos(1), "batch-range");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["batch-range", "l0", "l1", "overflow"]);
    }

    #[test]
    fn push_into_current_tick_while_draining() {
        let mut q = EventQueue::new();
        q.push(us(100), 1);
        q.push(us(100), 2);
        q.push(us(900), 9);
        assert_eq!(q.pop().unwrap().event, 1);
        // Same time as the entry still in the batch: FIFO puts it after.
        q.push(us(100), 3);
        // Earlier than everything left: pops first.
        q.push(us(50), 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![0, 2, 3, 9]);
    }

    #[test]
    fn l1_cascade_preserves_sub_bucket_order() {
        let mut q = EventQueue::new();
        // Two entries in the same L1 bucket but different L0 ticks, pushed
        // out of order; plus one in a later L1 bucket.
        let base = 500_000_000; // 500 ms: well beyond the first L0 window
        q.push(SimTime::from_nanos(base + 700_000), "second");
        q.push(SimTime::from_nanos(base), "first");
        q.push(SimTime::from_nanos(base + 200_000_000), "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn overflow_migrates_through_window_jumps() {
        let mut q = EventQueue::new();
        // All far beyond the initial L1 horizon: forces overflow, then a
        // window jump, then migration into rings.
        for s in [100u64, 40, 70, 100, 35] {
            q.push(SimTime::from_secs(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![35, 40, 70, 100, 100]);
    }

    #[test]
    fn far_future_times_do_not_overflow_arithmetic() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(u64::MAX - 1), "max");
        q.push(SimTime::from_secs(1), "near");
        assert_eq!(q.pop().unwrap().event, "near");
        assert_eq!(q.pop().unwrap().event, "max");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelled_entries_are_skipped_in_every_tier() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_millis(1), "l0");
        let b = q.push(SimTime::from_secs(1), "l1");
        let c = q.push(SimTime::from_secs(100), "overflow");
        let keep = q.push(SimTime::from_secs(200), "keep");
        assert_eq!(q.cancel(a), Some("l0"));
        assert_eq!(q.cancel(b), Some("l1"));
        assert_eq!(q.cancel(c), Some("overflow"));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(200)));
        assert_eq!(q.pop().unwrap().event, "keep");
        assert_eq!(q.cancel(keep), None, "popped key is stale");
    }

    #[test]
    fn slot_grid_workload_round_trips() {
        // The simulator's actual pattern: wake/done events marching down
        // the 625 µs slot grid, plus periodic arrivals ~20 ms out.
        let mut q = EventQueue::new();
        let slot = 625_000u64;
        let mut popped = Vec::new();
        let mut t = 0u64;
        q.push(SimTime::from_nanos(0), 0u64);
        for i in 1..=2_000u64 {
            let s = q.pop().unwrap();
            assert!(s.time.as_nanos() >= t);
            t = s.time.as_nanos();
            popped.push(s.event);
            // Re-arm two slots ahead, and every 32nd event plant an arrival
            // 20 ms out (which cancels the previous arrival).
            q.push(SimTime::from_nanos(t + 2 * slot), i);
            if i % 32 == 0 {
                let k = q.push(SimTime::from_nanos(t + 20_000_000), 1_000_000 + i);
                q.cancel(k);
            }
            if q.len() > 1 {
                q.pop(); // keep the population small and marching
            }
        }
        assert_eq!(popped.len(), 2_000);
    }
}
