//! The discrete-event simulation driver.

use crate::queue::{EventKey, PendingEvents, QueueOccupancy};
use crate::time::{SimDuration, SimTime};
use crate::wheel::EventQueue;
use core::marker::PhantomData;

/// Scheduling facade handed to event handlers.
///
/// A handler receives `&mut Scheduler<E, Q>` and may plant new events or
/// cancel pending ones; it cannot rewind the clock. The queue backend `Q`
/// defaults to the timing-wheel [`EventQueue`]; differential tests swap in
/// the [`HeapEventQueue`](crate::HeapEventQueue) reference.
#[derive(Debug)]
pub struct Scheduler<E, Q: PendingEvents<E> = EventQueue<E>> {
    now: SimTime,
    queue: Q,
    stopped: bool,
    _event: PhantomData<fn() -> E>,
}

impl<E, Q: PendingEvents<E>> Scheduler<E, Q> {
    fn with_queue(queue: Q) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue,
            stopped: false,
            _event: PhantomData,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past (`at < now`); scheduling events behind
    /// the clock is always a logic error.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} < now={}",
            self.now
        );
        self.queue.push(at, event)
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        let at = self.now + delay;
        self.queue.push(at, event)
    }

    /// Cancels a pending event, returning its payload if it had not fired.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        self.queue.cancel(key)
    }

    /// The firing time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// A structural snapshot of the pending-event set (see
    /// [`QueueOccupancy`]): how many live events sit in each of the
    /// backend's tiers. Observability only — reading it never perturbs
    /// the queue.
    pub fn queue_occupancy(&self) -> QueueOccupancy {
        self.queue.occupancy()
    }

    /// Requests that the run loop stop after the current handler returns.
    pub fn stop(&mut self) {
        self.stopped = true;
    }
}

/// A discrete-event simulator over a user state `S` and event type `E`.
///
/// The simulator owns the clock and the pending-event set; the caller owns
/// the domain state and the handler logic. This split keeps the engine
/// reusable for any model (here: a Bluetooth piconet) while the borrow
/// checker still allows handlers to mutate the state and schedule more
/// events at the same time.
///
/// The third parameter selects the pending-event backend. It defaults to
/// the timing-wheel [`EventQueue`]; [`Simulator::with_queue`] accepts any
/// [`PendingEvents`] implementation, which the differential tests use to
/// run the same model against the heap reference.
///
/// # Examples
///
/// A counter that re-arms itself until the horizon:
///
/// ```
/// use btgs_des::{Simulator, SimTime, SimDuration};
///
/// #[derive(Debug)]
/// struct Tick;
///
/// let mut sim = Simulator::new(0u32);
/// sim.scheduler_mut().schedule_at(SimTime::ZERO, Tick);
/// sim.run_until(SimTime::from_millis(10), |sched, count, Tick| {
///     *count += 1;
///     sched.schedule_in(SimDuration::from_millis(1), Tick);
/// });
/// assert_eq!(*sim.state(), 11); // fires at 0..=10 ms inclusive
/// ```
#[derive(Debug)]
pub struct Simulator<S, E, Q: PendingEvents<E> = EventQueue<E>> {
    scheduler: Scheduler<E, Q>,
    state: S,
    events_processed: u64,
}

impl<S, E> Simulator<S, E> {
    /// Creates a simulator owning `state`, with the clock at zero, backed
    /// by the timing-wheel [`EventQueue`].
    pub fn new(state: S) -> Self {
        Simulator::with_queue(state, EventQueue::new())
    }
}

impl<S, E, Q: PendingEvents<E>> Simulator<S, E, Q> {
    /// Creates a simulator owning `state`, with the clock at zero, backed
    /// by the given pending-event structure.
    pub fn with_queue(state: S, queue: Q) -> Self {
        Simulator {
            scheduler: Scheduler::with_queue(queue),
            state,
            events_processed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now
    }

    /// Shared access to the domain state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the domain state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the simulator and hands back the domain state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Access to the scheduler, e.g. to seed initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<E, Q> {
        &mut self.scheduler
    }

    /// Simultaneous exclusive access to the scheduler and the domain state,
    /// for seeding routines that plant events while mutating state (the
    /// borrow checker cannot split the two through separate method calls).
    pub fn split_mut(&mut self) -> (&mut Scheduler<E, Q>, &mut S) {
        (&mut self.scheduler, &mut self.state)
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Processes a single event (the earliest pending one), advancing the
    /// clock to its timestamp. Returns `false` if no event was pending.
    pub fn step<F>(&mut self, mut handler: F) -> bool
    where
        F: FnMut(&mut Scheduler<E, Q>, &mut S, E),
    {
        match self.scheduler.queue.pop() {
            Some(scheduled) => {
                debug_assert!(scheduled.time >= self.scheduler.now);
                self.scheduler.now = scheduled.time;
                self.events_processed += 1;
                handler(&mut self.scheduler, &mut self.state, scheduled.event);
                true
            }
            None => false,
        }
    }

    /// Runs until the pending-event set drains, `horizon` passes, or a
    /// handler calls [`Scheduler::stop`].
    ///
    /// Events stamped exactly at `horizon` still fire; the clock never
    /// advances past `horizon`. Returns the number of events processed by
    /// this call.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Scheduler<E, Q>, &mut S, E),
    {
        let start = self.events_processed;
        self.scheduler.stopped = false;
        while !self.scheduler.stopped {
            // One queue traversal serves both the horizon check and the pop.
            let Some(scheduled) = self.scheduler.queue.pop_if_due(horizon) else {
                break;
            };
            debug_assert!(scheduled.time >= self.scheduler.now);
            self.scheduler.now = scheduled.time;
            self.events_processed += 1;
            handler(&mut self.scheduler, &mut self.state, scheduled.event);
        }
        // Park the clock at the horizon so a subsequent run resumes cleanly.
        if self.scheduler.now < horizon && self.scheduler.queue.peek_time().is_none() {
            self.scheduler.now = horizon;
        }
        self.events_processed - start
    }

    /// Runs until the pending-event set drains or a handler calls
    /// [`Scheduler::stop`]. Returns the number of events processed.
    pub fn run<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(&mut Scheduler<E, Q>, &mut S, E),
    {
        let start = self.events_processed;
        self.scheduler.stopped = false;
        while !self.scheduler.stopped && self.step(&mut handler) {}
        self.events_processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::HeapEventQueue;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping,
        Pong,
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut sim: Simulator<Vec<(SimTime, Ev)>, Ev> = Simulator::new(Vec::new());
        sim.scheduler_mut()
            .schedule_at(SimTime::from_millis(3), Ev::Ping);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_millis(1), Ev::Pong);
        sim.run(|sched, log, ev| log.push((sched.now(), ev)));
        assert_eq!(
            *sim.state(),
            vec![
                (SimTime::from_millis(1), Ev::Pong),
                (SimTime::from_millis(3), Ev::Ping)
            ]
        );
        assert_eq!(sim.now(), SimTime::from_millis(3));
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn run_until_respects_horizon_inclusive() {
        let mut sim = Simulator::new(0u32);
        sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
        let n = sim.run_until(SimTime::from_millis(5), |sched, count, ()| {
            *count += 1;
            sched.schedule_in(SimDuration::from_millis(1), ());
        });
        assert_eq!(n, 6); // t = 0,1,2,3,4,5
        assert_eq!(sim.now(), SimTime::from_millis(5));
        // The event planted at t=6 is still pending.
        assert_eq!(sim.scheduler_mut().pending(), 1);
        // Resuming picks it up.
        let n2 = sim.run_until(SimTime::from_millis(6), |_, count, ()| {
            *count += 1;
        });
        assert_eq!(n2, 1);
        assert_eq!(*sim.state(), 7);
    }

    #[test]
    fn run_until_parks_clock_when_drained() {
        let mut sim: Simulator<(), ()> = Simulator::new(());
        sim.run_until(SimTime::from_secs(2), |_, _, ()| {});
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim = Simulator::new(0u32);
        sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
        sim.run(|sched, count, ()| {
            *count += 1;
            if *count == 3 {
                sched.stop();
            } else {
                sched.schedule_in(SimDuration::from_millis(1), ());
            }
        });
        assert_eq!(*sim.state(), 3);
    }

    #[test]
    fn cancellation_from_handler() {
        let mut sim = Simulator::new(Vec::<&str>::new());
        let sched = sim.scheduler_mut();
        sched.schedule_at(SimTime::from_millis(1), "first");
        let doomed = sched.schedule_at(SimTime::from_millis(2), "doomed");
        sched.schedule_at(SimTime::from_millis(3), "last");
        sim.run(move |sched, log, ev| {
            log.push(ev);
            if ev == "first" {
                assert_eq!(sched.cancel(doomed), Some("doomed"));
            }
        });
        assert_eq!(*sim.state(), vec!["first", "last"]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new(());
        sim.scheduler_mut().schedule_at(SimTime::from_millis(5), ());
        sim.run(|sched, _, ()| {
            sched.schedule_at(SimTime::from_millis(1), ());
        });
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut sim = Simulator::new(Vec::<u32>::new());
        for i in 0..5 {
            sim.scheduler_mut().schedule_at(SimTime::from_millis(1), i);
        }
        sim.run(|_, log, i| log.push(i));
        assert_eq!(*sim.state(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn heap_backend_drives_the_same_model() {
        let mut sim: Simulator<u32, (), HeapEventQueue<()>> =
            Simulator::with_queue(0, HeapEventQueue::new());
        sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
        let n = sim.run_until(SimTime::from_millis(5), |sched, count, ()| {
            *count += 1;
            sched.schedule_in(SimDuration::from_millis(1), ());
        });
        assert_eq!(n, 6);
        assert_eq!(*sim.state(), 6);
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }
}
