//! Event-kind tagging for observability.
//!
//! Profilers and trace exporters bucket per-event costs *by kind*
//! without knowing the domain's event enum: the domain implements
//! [`Tagged`] once, and harness-side meters receive the small-integer
//! tag with [`TAG_NAMES`](Tagged::TAG_NAMES) as the label table.

/// A domain event type whose variants carry a stable small-integer tag.
///
/// Tags must be dense (`0..TAG_NAMES.len()`) and stable across runs —
/// they index fixed-size per-kind accumulators in profilers and are
/// carried in trace records.
pub trait Tagged {
    /// Kind names, indexed by [`tag`](Tagged::tag).
    const TAG_NAMES: &'static [&'static str];

    /// This event's kind tag (an index into
    /// [`TAG_NAMES`](Tagged::TAG_NAMES)).
    fn tag(&self) -> u8;
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Toy {
        A,
        B,
    }

    impl Tagged for Toy {
        const TAG_NAMES: &'static [&'static str] = &["a", "b"];

        fn tag(&self) -> u8 {
            match self {
                Toy::A => 0,
                Toy::B => 1,
            }
        }
    }

    #[test]
    fn tags_index_names() {
        assert_eq!(Toy::TAG_NAMES[Toy::A.tag() as usize], "a");
        assert_eq!(Toy::TAG_NAMES[Toy::B.tag() as usize], "b");
    }
}
