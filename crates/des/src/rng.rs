//! Deterministic pseudo-random number generation.
//!
//! The simulator must replay bit-for-bit across platforms and compiler
//! versions so that every experiment in `EXPERIMENTS.md` can be regenerated
//! exactly. We therefore ship a small self-contained generator —
//! xoshiro256++ seeded through SplitMix64 — instead of depending on an
//! external crate whose stream might change between releases.
//!
//! Every stochastic component (each traffic source, the radio channel, …)
//! should draw from its **own stream** obtained via [`DetRng::stream`], so
//! that adding or removing one component does not perturb the randomness
//! seen by the others.

use core::fmt;

/// A deterministic random number generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use btgs_des::DetRng;
///
/// let mut a = DetRng::seed_from_u64(42);
/// let mut b = DetRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Independent sub-streams:
/// let mut s0 = a.stream(0);
/// let mut s1 = a.stream(1);
/// assert_ne!(s0.next_u64(), s1.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl fmt::Debug for DetRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hide the raw state; it is an implementation detail.
        f.debug_struct("DetRng").finish_non_exhaustive()
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator whose full 256-bit state is expanded from `seed`
    /// with SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent sub-stream identified by `id`.
    ///
    /// Streams with different ids are statistically independent; calling
    /// `stream` does not advance `self`.
    pub fn stream(&self, id: u64) -> DetRng {
        // Mix the id into the state through SplitMix64 so neighbouring ids
        // produce unrelated streams.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ id.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-then-reject method; unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi ({lo} > {hi})");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// An exponentially distributed value with the given `mean`.
    ///
    /// Used for Poisson arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        // Inverse-CDF; guard the log against u == 0.
        let mut u = self.next_f64();
        if u == 0.0 {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_output() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_are_independent_of_parent_advancement() {
        let parent = DetRng::seed_from_u64(99);
        let mut s_before = parent.stream(3);
        let mut parent2 = parent.clone();
        let _ = parent2.next_u64(); // advancing a clone must not matter
        let mut s_after = parent.stream(3);
        for _ in 0..100 {
            assert_eq!(s_before.next_u64(), s_after.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers_values() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(144, 176);
            assert!((144..=176).contains(&v));
            lo_seen |= v == 144;
            hi_seen |= v == 176;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from_u64(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = DetRng::seed_from_u64(19);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = DetRng::seed_from_u64(23);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(0.02)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.02).abs() < 0.001, "observed mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "shuffle should move elements"
        );
    }

    #[test]
    fn known_answer_vector_locks_the_stream() {
        // Locks the generator output so accidental algorithm changes fail CI.
        let mut rng = DetRng::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = DetRng::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(v, again);
        // And different from the seed=1 stream.
        let mut r1 = DetRng::seed_from_u64(1);
        assert_ne!(v[0], r1.next_u64());
    }
}
