//! # btgs-des — deterministic discrete-event simulation engine
//!
//! The simulation substrate for the `btgs` workspace (a reproduction of
//! *"Providing Delay Guarantees in Bluetooth"*, Ait Yaiz & Heijenk,
//! ICDCSW'03). The paper's evaluation runs on ns-2 with Bluetooth
//! extensions; this crate provides the equivalent event-driven kernel:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time, so
//!   slot arithmetic (1 Bluetooth slot = 625 µs) is exact.
//! * [`EventQueue`] — the pending-event set: a hierarchical timing wheel
//!   with stable FIFO ordering for same-time events, cheap cancellation,
//!   and O(1) push/pop for the near-future slot-grid workload.
//! * [`HeapEventQueue`] — the binary-heap reference implementation of the
//!   same [`PendingEvents`] contract, kept for differential testing.
//! * [`Simulator`] / [`Scheduler`] — the run loop: handlers mutate domain
//!   state and plant or cancel future events; generic over the queue
//!   backend (defaults to the wheel).
//! * [`DetRng`] — self-contained xoshiro256++ PRNG with independent
//!   sub-streams, so experiments replay bit-for-bit on any platform.
//!
//! Everything is single-threaded by design: determinism is a feature of the
//! reproduction, and piconet-scale models are far from needing parallelism.
//!
//! # Examples
//!
//! ```
//! use btgs_des::{Simulator, SimTime, SimDuration};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival }
//!
//! let mut sim = Simulator::new(0u64);
//! sim.scheduler_mut().schedule_at(SimTime::ZERO, Ev::Arrival);
//! sim.run_until(SimTime::from_secs(1), |sched, arrivals, ev| match ev {
//!     Ev::Arrival => {
//!         *arrivals += 1;
//!         sched.schedule_in(SimDuration::from_millis(20), Ev::Arrival);
//!     }
//! });
//! assert_eq!(*sim.state(), 51); // t = 0, 20 ms, ..., 1000 ms
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod rng;
mod tag;
mod time;
mod wheel;

pub use engine::{Scheduler, Simulator};
pub use queue::{EventKey, HeapEventQueue, PendingEvents, QueueOccupancy, Scheduled};
pub use rng::DetRng;
pub use tag::Tagged;
pub use time::{SimDuration, SimTime};
pub use wheel::EventQueue;
