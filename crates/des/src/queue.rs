//! The pending-event set: keys, payload storage, the queue interface, and
//! the binary-heap reference implementation.
//!
//! The production queue is the hierarchical timing wheel in [`crate::wheel`]
//! (re-exported as [`EventQueue`](crate::EventQueue)); the
//! [`HeapEventQueue`] here implements the exact same contract on a
//! `BinaryHeap` and exists as the *reference model*: differential tests
//! drive both with identical operation sequences and demand identical
//! behaviour, and full simulation runs must produce byte-identical reports
//! under either backend.

use crate::time::SimTime;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable to [cancel](HeapEventQueue::cancel)
/// it.
///
/// Keys are unique for the lifetime of the queue: a key is never reused for a
/// different event, so a stale key is safely rejected rather than cancelling
/// an unrelated event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventKey {
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

/// An event popped from the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The instant the event fires.
    pub time: SimTime,
    /// The event payload.
    pub event: E,
}

/// A structural snapshot of a pending-event queue, for observability:
/// how the live events are distributed across the backend's tiers.
/// Backends without tiers report everything as `near`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueOccupancy {
    /// Total live (not yet popped or cancelled) events.
    pub live: usize,
    /// Events in the near-horizon tier (wheel level 0 and its
    /// same-tick batch; everything, for the heap reference).
    pub near: usize,
    /// Events in the far tier (wheel level 1).
    pub far: usize,
    /// Events beyond the wheel span (the overflow heap).
    pub overflow: usize,
}

/// The interface between the [`Simulator`](crate::Simulator) run loop and a
/// pending-event structure.
///
/// Both implementations — the timing-wheel [`EventQueue`](crate::EventQueue)
/// and the [`HeapEventQueue`] reference — honour the same contract: events
/// pop in `(time, insertion order)` order, same-time events are FIFO, and a
/// cancelled or popped key is stale forever.
pub trait PendingEvents<E> {
    /// Schedules `event` at `time` and returns a key that can cancel it.
    fn push(&mut self, time: SimTime, event: E) -> EventKey;

    /// Cancels a scheduled event, returning its payload if it was still
    /// pending. Stale keys (already fired or cancelled) return `None`.
    fn cancel(&mut self, key: EventKey) -> Option<E>;

    /// The firing time of the earliest pending event.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Removes and returns the earliest pending event.
    fn pop(&mut self) -> Option<Scheduled<E>>;

    /// Removes and returns the earliest pending event if it fires no later
    /// than `horizon`.
    fn pop_if_due(&mut self, horizon: SimTime) -> Option<Scheduled<E>> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Number of live (not yet popped or cancelled) events.
    fn len(&self) -> usize;

    /// `true` if no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A structural snapshot of where the live events sit (see
    /// [`QueueOccupancy`]). The default reports an untiered backend.
    fn occupancy(&self) -> QueueOccupancy {
        QueueOccupancy {
            live: self.len(),
            near: self.len(),
            far: 0,
            overflow: 0,
        }
    }
}

/// An index entry for one scheduled event; the payload lives in the
/// [`SlotArena`]. Ordered so the *earliest* `(time, seq)` is the maximum
/// (`BinaryHeap` is a max-heap).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so the earliest (time, seq) pops first from a max-heap.
        // `seq` makes same-time events fire in scheduling order (FIFO),
        // which keeps runs deterministic.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// Generation-checked payload storage shared by both queue backends.
///
/// Every scheduled event's payload lives in a slot; the `(slot, generation)`
/// pair is the [`EventKey`]. Cancellation bumps the generation, so index
/// entries still sitting in a heap or wheel bucket are recognised as dead
/// and skipped lazily. Freed slots are recycled through a free list, so the
/// arena stops allocating once it reaches the high-water mark of concurrently
/// pending events.
pub(crate) struct SlotArena<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Most recently retired slot: the single-event churn pattern (pop then
    /// re-push, the dominant cycle of a self-rescheduling model) recycles
    /// it through this register without touching the free vector.
    last_free: Option<u32>,
}

impl<E> SlotArena<E> {
    pub(crate) fn new() -> Self {
        SlotArena {
            slots: Vec::new(),
            free: Vec::new(),
            last_free: None,
        }
    }

    /// Stores `payload`, returning its `(slot, generation)` key.
    #[inline]
    pub(crate) fn alloc(&mut self, payload: E) -> (u32, u32) {
        let recycled = self.last_free.take().or_else(|| self.free.pop());
        let slot = match recycled {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                debug_assert!(s.payload.is_none());
                s.payload = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event queue slot overflow");
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(payload),
                });
                // Keep the free list able to hold every slot: growing it
                // here (the path that is allowed to allocate) means `take`
                // never has to, so cancellations stay allocation-free even
                // when more slots are simultaneously free late in a run
                // than at any point during warm-up.
                self.free.reserve(self.slots.len() - self.free.len());
                idx
            }
        };
        (slot, self.slots[slot as usize].generation)
    }

    /// Removes the payload a key refers to, if the key is still current.
    #[inline]
    pub(crate) fn take(&mut self, key: EventKey) -> Option<E> {
        let slot = self.slots.get_mut(key.slot as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        let payload = slot.payload.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        if let Some(prev) = self.last_free.replace(key.slot) {
            self.free.push(prev);
        }
        Some(payload)
    }

    /// `true` if the entry still refers to a pending payload.
    #[inline]
    pub(crate) fn is_live(&self, entry: &Entry) -> bool {
        let slot = &self.slots[entry.slot as usize];
        slot.generation == entry.generation && slot.payload.is_some()
    }
}

/// The reference pending-event set: a `BinaryHeap` ordered by
/// `(time, insertion order)`.
///
/// Same-time events pop in the order they were pushed, which makes runs
/// reproducible without relying on heap internals. The production
/// [`EventQueue`](crate::EventQueue) (a hierarchical timing wheel) must be
/// operationally indistinguishable from this structure; it exists so
/// differential tests have an obviously-correct model to compare against.
///
/// # Examples
///
/// ```
/// use btgs_des::{HeapEventQueue, SimTime};
///
/// let mut q = HeapEventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// let key = q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early2");
///
/// assert!(q.cancel(key).is_some());
/// let first = q.pop().unwrap();
/// assert_eq!(first.event, "early2");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry>,
    arena: SlotArena<E>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            arena: SlotArena::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live (not yet popped or cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` at `time` and returns a key that can cancel it.
    pub fn push(&mut self, time: SimTime, event: E) -> EventKey {
        let (slot, generation) = self.arena.alloc(event);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            slot,
            generation,
        });
        self.live += 1;
        EventKey { slot, generation }
    }

    /// Cancels a scheduled event, returning its payload if it was still
    /// pending. Stale keys (already fired or cancelled) return `None`.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let payload = self.arena.take(key)?;
        self.live -= 1;
        Some(payload)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_dead();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        loop {
            let entry = self.heap.pop()?;
            let Some(event) = self.arena.take(EventKey {
                slot: entry.slot,
                generation: entry.generation,
            }) else {
                continue; // cancelled
            };
            self.live -= 1;
            return Some(Scheduled {
                time: entry.time,
                event,
            });
        }
    }

    /// Drops dead (cancelled) entries off the top of the heap so `peek_time`
    /// reports a live event.
    fn skim_dead(&mut self) {
        while let Some(entry) = self.heap.peek() {
            if self.arena.is_live(entry) {
                return;
            }
            self.heap.pop();
        }
    }
}

impl<E> PendingEvents<E> for HeapEventQueue<E> {
    fn push(&mut self, time: SimTime, event: E) -> EventKey {
        HeapEventQueue::push(self, time, event)
    }

    fn cancel(&mut self, key: EventKey) -> Option<E> {
        HeapEventQueue::cancel(self, key)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        HeapEventQueue::peek_time(self)
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        HeapEventQueue::pop(self)
    }

    fn len(&self) -> usize {
        HeapEventQueue::len(self)
    }
}

impl<E: core::fmt::Debug> core::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("live", &self.live)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wheel::EventQueue;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Every contract test runs against both backends.
    fn both(check: impl Fn(&mut dyn PendingEvents<i32>)) {
        let mut wheel: EventQueue<i32> = EventQueue::new();
        check(&mut wheel);
        let mut heap: HeapEventQueue<i32> = HeapEventQueue::new();
        check(&mut heap);
    }

    #[test]
    fn pops_in_time_order() {
        both(|q| {
            q.push(t(5), 5);
            q.push(t(1), 1);
            q.push(t(3), 3);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
            assert_eq!(order, vec![1, 3, 5]);
        });
    }

    #[test]
    fn same_time_is_fifo() {
        both(|q| {
            for i in 0..10 {
                q.push(t(7), i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn cancel_removes_event() {
        both(|q| {
            let a = q.push(t(1), 10);
            q.push(t(2), 20);
            assert_eq!(q.len(), 2);
            assert_eq!(q.cancel(a), Some(10));
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().unwrap().event, 20);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn stale_keys_are_rejected() {
        both(|q| {
            let a = q.push(t(1), 1);
            assert!(q.cancel(a).is_some());
            assert!(q.cancel(a).is_none(), "double cancel");
            // Slot gets reused by a fresh event; old key must not touch it.
            let _b = q.push(t(2), 2);
            assert!(q.cancel(a).is_none(), "stale key after reuse");
            assert_eq!(q.pop().unwrap().event, 2);
        });
    }

    #[test]
    fn key_of_popped_event_is_stale() {
        both(|q| {
            let a = q.push(t(1), 1);
            assert_eq!(q.pop().unwrap().event, 1);
            assert!(q.cancel(a).is_none());
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        both(|q| {
            let a = q.push(t(1), 1);
            q.push(t(4), 4);
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(t(4)));
        });
    }

    #[test]
    fn pop_if_due_respects_horizon() {
        both(|q| {
            q.push(t(1), 1);
            q.push(t(5), 5);
            assert_eq!(q.pop_if_due(t(0)), None);
            assert_eq!(q.pop_if_due(t(1)).unwrap().event, 1);
            assert_eq!(q.pop_if_due(t(4)), None);
            assert_eq!(q.pop_if_due(t(5)).unwrap().event, 5);
            assert_eq!(q.pop_if_due(SimTime::MAX), None);
        });
    }

    #[test]
    fn empty_queue_behaviour() {
        both(|q| {
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
            assert_eq!(q.peek_time(), None);
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn heavy_mixed_usage_stays_consistent() {
        both(|q| {
            let mut keys = Vec::new();
            for round in 0u64..50 {
                for i in 0u64..20 {
                    keys.push(q.push(t(round * 10 + i % 7), (round * 100 + i) as i32));
                }
                // Cancel every third key from this round.
                let start = keys.len() - 20;
                for k in keys[start..].iter().step_by(3) {
                    q.cancel(*k);
                }
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0;
            while let Some(s) = q.pop() {
                assert!(s.time >= last, "time order violated");
                last = s.time;
                popped += 1;
            }
            // 20 per round, 7 cancelled per round (indices 0,3,6,...,18).
            assert_eq!(popped, 50 * (20 - 7));
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::DetRng;
    use crate::wheel::EventQueue;

    /// Popping must always yield a non-decreasing time sequence and
    /// same-time events in FIFO order, under any interleaving of pushes
    /// and cancels — for both backends.
    #[test]
    fn ordering_invariant() {
        fn run(q: &mut dyn PendingEvents<usize>, rng: &mut DetRng) {
            let n_ops = rng.range_inclusive(1, 199) as usize;
            let mut keys = Vec::new();
            let mut expect_live = 0usize;
            for i in 0..n_ops {
                let time_ms = rng.below(100);
                let cancel_one = rng.chance(0.5);
                keys.push(q.push(SimTime::from_millis(time_ms), i));
                expect_live += 1;
                if cancel_one && !keys.is_empty() {
                    let k = keys.remove(keys.len() / 2);
                    if q.cancel(k).is_some() {
                        expect_live -= 1;
                    }
                }
            }
            assert_eq!(q.len(), expect_live);
            let mut last: Option<(SimTime, usize)> = None;
            let mut count = 0usize;
            while let Some(s) = q.pop() {
                if let Some((lt, lseq)) = last {
                    assert!(s.time >= lt);
                    if s.time == lt {
                        assert!(s.event > lseq, "FIFO within same timestamp");
                    }
                }
                last = Some((s.time, s.event));
                count += 1;
            }
            assert_eq!(count, expect_live);
        }

        let mut rng = DetRng::seed_from_u64(0xDE5);
        for _ in 0..128 {
            run(&mut EventQueue::new(), &mut rng);
        }
        let mut rng = DetRng::seed_from_u64(0xDE5);
        for _ in 0..128 {
            run(&mut HeapEventQueue::new(), &mut rng);
        }
    }
}
