//! The pending-event set: a time-ordered priority queue with cancellation.

use crate::time::SimTime;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable to [cancel](EventQueue::cancel) it.
///
/// Keys are unique for the lifetime of the queue: a key is never reused for a
/// different event, so a stale key is safely rejected rather than cancelling
/// an unrelated event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    generation: u32,
}

/// An event popped from the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// The instant the event fires.
    pub time: SimTime,
    /// The event payload.
    pub event: E,
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` makes same-time events fire in scheduling order (FIFO),
        // which keeps runs deterministic.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Slot<E> {
    generation: u32,
    payload: Option<E>,
}

/// A pending-event set ordered by `(time, insertion order)`.
///
/// Same-time events pop in the order they were pushed, which makes runs
/// reproducible without relying on heap internals.
///
/// # Examples
///
/// ```
/// use btgs_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// let key = q.push(SimTime::from_millis(1), "early");
/// q.push(SimTime::from_millis(1), "early2");
///
/// assert!(q.cancel(key).is_some());
/// let first = q.pop().unwrap();
/// assert_eq!(first.event, "early2");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of live (not yet popped or cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` at `time` and returns a key that can cancel it.
    pub fn push(&mut self, time: SimTime, event: E) -> EventKey {
        let slot = match self.free.pop() {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                debug_assert!(s.payload.is_none());
                s.payload = Some(event);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event queue slot overflow");
                self.slots.push(Slot {
                    generation: 0,
                    payload: Some(event),
                });
                idx
            }
        };
        let generation = self.slots[slot as usize].generation;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            time,
            seq,
            slot,
            generation,
        });
        self.live += 1;
        EventKey { slot, generation }
    }

    /// Cancels a scheduled event, returning its payload if it was still
    /// pending. Stale keys (already fired or cancelled) return `None`.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let slot = self.slots.get_mut(key.slot as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        let payload = slot.payload.take()?;
        self.retire_slot(key.slot);
        self.live -= 1;
        Some(payload)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_dead();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        loop {
            let entry = self.heap.pop()?;
            let slot = &mut self.slots[entry.slot as usize];
            if slot.generation != entry.generation {
                continue; // cancelled, slot already reused
            }
            let Some(event) = slot.payload.take() else {
                continue; // cancelled, slot not yet reused
            };
            self.retire_slot(entry.slot);
            self.live -= 1;
            return Some(Scheduled {
                time: entry.time,
                event,
            });
        }
    }

    /// Drops dead (cancelled) entries off the top of the heap so `peek_time`
    /// reports a live event.
    fn skim_dead(&mut self) {
        while let Some(entry) = self.heap.peek() {
            let slot = &self.slots[entry.slot as usize];
            if slot.generation == entry.generation && slot.payload.is_some() {
                return;
            }
            self.heap.pop();
        }
    }

    fn retire_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx);
    }
}

impl<E: core::fmt::Debug> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), 5);
        q.push(t(1), 1);
        q.push(t(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn stale_keys_are_rejected() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        assert!(q.cancel(a).is_some());
        assert!(q.cancel(a).is_none(), "double cancel");
        // Slot gets reused by a fresh event; old key must not touch it.
        let _b = q.push(t(2), 2);
        assert!(q.cancel(a).is_none(), "stale key after reuse");
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn key_of_popped_event_is_stale() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        assert_eq!(q.pop().unwrap().event, 1);
        assert!(q.cancel(a).is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(4), 4);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn heavy_mixed_usage_stays_consistent() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for round in 0u64..50 {
            for i in 0..20 {
                keys.push(q.push(t(round * 10 + i % 7), (round, i)));
            }
            // Cancel every third key from this round.
            let start = keys.len() - 20;
            for k in keys[start..].iter().step_by(3) {
                q.cancel(*k);
            }
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some(s) = q.pop() {
            assert!(s.time >= last, "time order violated");
            last = s.time;
            popped += 1;
        }
        // 20 per round, 7 cancelled per round (indices 0,3,6,...,18).
        assert_eq!(popped, 50 * (20 - 7));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::DetRng;

    /// Popping must always yield a non-decreasing time sequence and
    /// same-time events in FIFO order, under any interleaving of pushes
    /// and cancels.
    #[test]
    fn ordering_invariant() {
        let mut rng = DetRng::seed_from_u64(0xDE5);
        for _ in 0..128 {
            let n_ops = rng.range_inclusive(1, 199) as usize;
            let mut q = EventQueue::new();
            let mut keys = Vec::new();
            let mut expect_live = 0usize;
            for i in 0..n_ops {
                let time_ms = rng.below(100);
                let cancel_one = rng.chance(0.5);
                keys.push(q.push(SimTime::from_millis(time_ms), i));
                expect_live += 1;
                if cancel_one && !keys.is_empty() {
                    let k = keys.remove(keys.len() / 2);
                    if q.cancel(k).is_some() {
                        expect_live -= 1;
                    }
                }
            }
            assert_eq!(q.len(), expect_live);
            let mut last: Option<(SimTime, usize)> = None;
            let mut count = 0usize;
            while let Some(s) = q.pop() {
                if let Some((lt, lseq)) = last {
                    assert!(s.time >= lt);
                    if s.time == lt {
                        assert!(s.event > lseq, "FIFO within same timestamp");
                    }
                }
                last = Some((s.time, s.event));
                count += 1;
            }
            assert_eq!(count, expect_live);
        }
    }
}
