//! Differential property test: the timing-wheel [`EventQueue`] against the
//! [`HeapEventQueue`] reference model under DetRng-driven random
//! push/cancel/pop interleavings.
//!
//! Both structures receive the identical operation sequence; after every
//! operation their observable behaviour (lengths, peeked times, popped
//! `(time, payload)` pairs, cancel results) must match exactly. Time spans
//! are drawn across all wheel tiers — current tick, L0 ring, L1 ring and
//! the overflow heap — and pops interleave with pushes so the wheel's
//! window advances mid-sequence, which is where a calendar structure can
//! subtly diverge from a heap.

use btgs_des::{DetRng, EventKey, EventQueue, HeapEventQueue, PendingEvents, SimTime};

/// One randomly generated operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Push(SimTime),
    CancelRecent(usize),
    Pop,
    PopIfDue(SimTime),
    Peek,
}

/// Draws a time offset that exercises a specific wheel tier.
fn arb_offset(rng: &mut DetRng) -> u64 {
    match rng.below(10) {
        // Same tick / immediate neighbourhood (batch + first L0 buckets).
        0..=3 => rng.below(2_000_000),
        // Within the L0 window (~134 ms).
        4..=6 => rng.below(130_000_000),
        // Within the L1 horizon (~34 s).
        7..=8 => rng.below(30_000_000_000),
        // Beyond the L1 horizon: overflow heap.
        _ => 34_000_000_000 + rng.below(300_000_000_000),
    }
}

fn run_sequence(rng: &mut DetRng, n_ops: usize) {
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    // Keys come back in identical order from both, so parallel vectors of
    // live keys stay aligned.
    let mut wheel_keys: Vec<EventKey> = Vec::new();
    let mut heap_keys: Vec<EventKey> = Vec::new();
    let mut last_popped = SimTime::ZERO;
    let mut payload = 0u64;

    for step in 0..n_ops {
        let op = match rng.below(10) {
            0..=4 => {
                // Mirror engine usage: never schedule behind the clock.
                Op::Push(last_popped + btgs_des::SimDuration::from_nanos(arb_offset(rng)))
            }
            5 => Op::CancelRecent(rng.below(8) as usize),
            6..=7 => Op::Pop,
            8 => Op::PopIfDue(
                last_popped + btgs_des::SimDuration::from_nanos(rng.below(200_000_000)),
            ),
            _ => Op::Peek,
        };
        match op {
            Op::Push(t) => {
                payload += 1;
                wheel_keys.push(wheel.push(t, payload));
                heap_keys.push(heap.push(t, payload));
            }
            Op::CancelRecent(back) => {
                if wheel_keys.is_empty() {
                    continue;
                }
                let idx = wheel_keys.len().saturating_sub(1 + back);
                let wk = wheel_keys.remove(idx);
                let hk = heap_keys.remove(idx);
                assert_eq!(wheel.cancel(wk), heap.cancel(hk), "cancel at step {step}");
                // A second cancel of the same key must be stale in both.
                assert_eq!(wheel.cancel(wk), None);
                assert_eq!(heap.cancel(hk), None);
            }
            Op::Pop => {
                let w = wheel.pop();
                let h = heap.pop();
                match (&w, &h) {
                    (Some(a), Some(b)) => {
                        assert_eq!((a.time, a.event), (b.time, b.event), "pop at step {step}");
                        assert!(a.time >= last_popped, "time went backwards");
                        last_popped = a.time;
                    }
                    (None, None) => {}
                    _ => panic!("pop divergence at step {step}: {w:?} vs {h:?}"),
                }
            }
            Op::PopIfDue(h) => {
                let a = wheel.pop_if_due(h);
                let b = heap.pop_if_due(h);
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.event), (y.time, y.event));
                        assert!(x.time <= h, "pop_if_due returned a late event");
                        last_popped = x.time;
                    }
                    (None, None) => {}
                    _ => panic!("pop_if_due divergence at step {step}: {a:?} vs {b:?}"),
                }
            }
            Op::Peek => {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "peek at step {step}");
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len after step {step}");
        assert_eq!(wheel.is_empty(), heap.is_empty());
    }

    // Drain both completely: the full remaining order must be identical,
    // non-decreasing in time, and FIFO within equal timestamps (payloads
    // are issued in push order, so equal times must pop ascending).
    let mut last: Option<(SimTime, u64)> = None;
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        match (w, h) {
            (Some(a), Some(b)) => {
                assert_eq!((a.time, a.event), (b.time, b.event), "drain divergence");
                if let Some((lt, lp)) = last {
                    assert!(a.time >= lt);
                    if a.time == lt {
                        assert!(a.event > lp, "FIFO within same timestamp");
                    }
                }
                last = Some((a.time, a.event));
            }
            (None, None) => break,
            (w, h) => panic!("drain length divergence: {w:?} vs {h:?}"),
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
}

#[test]
fn wheel_matches_heap_reference_under_random_interleavings() {
    let mut rng = DetRng::seed_from_u64(0x77EE1);
    for _ in 0..64 {
        let n_ops = rng.range_inclusive(50, 800) as usize;
        run_sequence(&mut rng, n_ops);
    }
}

#[test]
fn wheel_matches_heap_on_dense_slot_grid() {
    // A focused sequence shaped like the simulator: slot-grid times with
    // many exact collisions, frequent cancel/re-arm of the same logical
    // timer (the master wake-up), and interleaved pops.
    let mut rng = DetRng::seed_from_u64(0x5107);
    for _ in 0..32 {
        let mut wheel: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let mut wake: Option<(EventKey, EventKey, u32)> = None;
        let mut now = SimTime::ZERO;
        for i in 0..600u32 {
            let pairs_ahead = rng.range_inclusive(0, 40);
            let t = now + btgs_des::SimDuration::from_micros(1250 * pairs_ahead);
            if rng.chance(0.3) {
                // Re-arm the wake timer: cancel then push, like ensure_wake.
                if let Some((wk, hk, _)) = wake.take() {
                    assert_eq!(wheel.cancel(wk), heap.cancel(hk));
                }
                wake = Some((wheel.push(t, i), heap.push(t, i), i));
            } else {
                wheel.push(t, i);
                heap.push(t, i);
            }
            if rng.chance(0.6) {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(
                    a.as_ref().map(|s| (s.time, s.event)),
                    b.as_ref().map(|s| (s.time, s.event))
                );
                if let Some(s) = a {
                    if wake.is_some_and(|(_, _, p)| p == s.event) {
                        // The tracked wake just fired; its keys are stale.
                        wake = None;
                    }
                    now = s.time;
                }
            }
        }
        while let (Some(a), Some(b)) = (wheel.pop(), heap.pop()) {
            assert_eq!((a.time, a.event), (b.time, b.event));
        }
        assert_eq!(wheel.len(), heap.len());
    }
}
