//! Fair-share tracking across slaves.
//!
//! PFP "keeps track of the fairness" by comparing what each slave received
//! against its fair share. The tracker below measures service in slots (the
//! true currency of a TDD piconet) and reports each slave's deficit against
//! a weighted equal split of everything served so far.

use btgs_baseband::AmAddr;
use std::collections::BTreeMap;

/// Tracks per-slave service and computes fairness deficits.
///
/// # Examples
///
/// ```
/// use btgs_pollers::FairShareTracker;
/// use btgs_baseband::AmAddr;
///
/// let s1 = AmAddr::new(1).unwrap();
/// let s2 = AmAddr::new(2).unwrap();
/// let mut t = FairShareTracker::new();
/// t.register(s1, 1.0);
/// t.register(s2, 1.0);
/// t.record(s1, 6);
/// // s1 got 6 slots, s2 none: s2 is 3 slots under its fair share.
/// assert_eq!(t.deficit(s2), 3.0);
/// assert_eq!(t.deficit(s1), -3.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FairShareTracker {
    served: BTreeMap<AmAddr, u64>,
    weights: BTreeMap<AmAddr, f64>,
    total_served: u64,
    total_weight: f64,
}

impl FairShareTracker {
    /// Creates an empty tracker.
    pub fn new() -> FairShareTracker {
        FairShareTracker::default()
    }

    /// Registers a slave with the given positive weight. Re-registering
    /// replaces the weight but keeps the service history.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn register(&mut self, slave: AmAddr, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive and finite, got {weight}"
        );
        if let Some(old) = self.weights.insert(slave, weight) {
            self.total_weight -= old;
        }
        self.total_weight += weight;
        self.served.entry(slave).or_insert(0);
    }

    /// Records `slots` of service delivered to `slave`.
    ///
    /// # Panics
    ///
    /// Panics if the slave was not registered.
    pub fn record(&mut self, slave: AmAddr, slots: u64) {
        let entry = self
            .served
            .get_mut(&slave)
            .expect("slave must be registered before recording service");
        *entry += slots;
        self.total_served += slots;
    }

    /// Slots served to `slave` so far.
    pub fn served(&self, slave: AmAddr) -> u64 {
        self.served.get(&slave).copied().unwrap_or(0)
    }

    /// The slave's fair share of everything served so far.
    pub fn fair_share(&self, slave: AmAddr) -> f64 {
        match self.weights.get(&slave) {
            Some(w) if self.total_weight > 0.0 => self.total_served as f64 * w / self.total_weight,
            _ => 0.0,
        }
    }

    /// How far `slave` is **under** its fair share (negative when it is
    /// ahead). PFP prefers the slave with the largest deficit.
    pub fn deficit(&self, slave: AmAddr) -> f64 {
        self.fair_share(slave) - self.served(slave) as f64
    }

    /// The fraction of its fair share the slave has received (1.0 when the
    /// tracker is empty — everyone is trivially satisfied). This is PFP's
    /// "fraction of the fair share of resources".
    pub fn fairness_fraction(&self, slave: AmAddr) -> f64 {
        let share = self.fair_share(slave);
        if share <= 0.0 {
            1.0
        } else {
            self.served(slave) as f64 / share
        }
    }

    /// The registered slaves, in address order.
    pub fn slaves(&self) -> impl Iterator<Item = AmAddr> + '_ {
        self.weights.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    #[test]
    fn empty_tracker_is_neutral() {
        let t = FairShareTracker::new();
        assert_eq!(t.served(s(1)), 0);
        assert_eq!(t.fair_share(s(1)), 0.0);
        assert_eq!(t.deficit(s(1)), 0.0);
        assert_eq!(t.fairness_fraction(s(1)), 1.0);
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut t = FairShareTracker::new();
        for n in 1..=4 {
            t.register(s(n), 1.0);
        }
        t.record(s(1), 4);
        t.record(s(2), 4);
        assert_eq!(t.fair_share(s(3)), 2.0);
        assert_eq!(t.deficit(s(3)), 2.0);
        assert_eq!(t.deficit(s(1)), -2.0);
        assert_eq!(t.fairness_fraction(s(1)), 2.0);
        assert_eq!(t.fairness_fraction(s(3)), 0.0);
    }

    #[test]
    fn weights_scale_shares() {
        let mut t = FairShareTracker::new();
        t.register(s(1), 3.0);
        t.register(s(2), 1.0);
        t.record(s(1), 8);
        // s1 entitled to 6 of the 8, s2 to 2.
        assert_eq!(t.fair_share(s(1)), 6.0);
        assert_eq!(t.fair_share(s(2)), 2.0);
        assert_eq!(t.deficit(s(1)), -2.0);
        assert_eq!(t.deficit(s(2)), 2.0);
    }

    #[test]
    fn reregistering_updates_weight_only() {
        let mut t = FairShareTracker::new();
        t.register(s(1), 1.0);
        t.register(s(2), 1.0);
        t.record(s(1), 10);
        t.register(s(1), 4.0);
        assert_eq!(t.served(s(1)), 10);
        assert_eq!(t.fair_share(s(1)), 8.0);
    }

    #[test]
    fn deficits_sum_to_zero() {
        let mut t = FairShareTracker::new();
        for n in 1..=5 {
            t.register(s(n), n as f64);
        }
        t.record(s(1), 7);
        t.record(s(3), 2);
        t.record(s(5), 11);
        let total: f64 = (1..=5).map(|n| t.deficit(s(n))).sum();
        assert!(total.abs() < 1e-9, "deficits must sum to 0, got {total}");
    }

    #[test]
    #[should_panic(expected = "registered")]
    fn recording_unknown_slave_panics() {
        let mut t = FairShareTracker::new();
        t.record(s(1), 1);
    }
}
