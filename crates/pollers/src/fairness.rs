//! Fair-share tracking across slaves.
//!
//! PFP "keeps track of the fairness" by comparing what each slave received
//! against its fair share. The tracker below measures service in slots (the
//! true currency of a TDD piconet) and reports each slave's deficit against
//! a weighted equal split of everything served so far.
//!
//! Storage is dense per-slave arrays indexed by the 3-bit active member
//! address (a piconet holds at most seven slaves), so every query on the
//! poller hot path is a couple of array loads — no map walks, no
//! allocation. Iteration stays in ascending address order, matching the
//! ordered-map behaviour this replaced bit for bit.

use btgs_baseband::AmAddr;

/// One more than the highest active member address (slot 0 is unused).
const SLOTS: usize = AmAddr::MAX_SLAVES + 1;

/// Tracks per-slave service and computes fairness deficits.
///
/// # Examples
///
/// ```
/// use btgs_pollers::FairShareTracker;
/// use btgs_baseband::AmAddr;
///
/// let s1 = AmAddr::new(1).unwrap();
/// let s2 = AmAddr::new(2).unwrap();
/// let mut t = FairShareTracker::new();
/// t.register(s1, 1.0);
/// t.register(s2, 1.0);
/// t.record(s1, 6);
/// // s1 got 6 slots, s2 none: s2 is 3 slots under its fair share.
/// assert_eq!(t.deficit(s2), 3.0);
/// assert_eq!(t.deficit(s1), -3.0);
/// ```
#[derive(Clone, Debug)]
pub struct FairShareTracker {
    served: [u64; SLOTS],
    weights: [f64; SLOTS],
    registered: [bool; SLOTS],
    total_served: u64,
    total_weight: f64,
}

impl Default for FairShareTracker {
    fn default() -> Self {
        FairShareTracker {
            served: [0; SLOTS],
            weights: [0.0; SLOTS],
            registered: [false; SLOTS],
            total_served: 0,
            total_weight: 0.0,
        }
    }
}

impl FairShareTracker {
    /// Creates an empty tracker.
    pub fn new() -> FairShareTracker {
        FairShareTracker::default()
    }

    /// Registers a slave with the given positive weight. Re-registering
    /// replaces the weight but keeps the service history.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn register(&mut self, slave: AmAddr, weight: f64) {
        assert!(
            weight.is_finite() && weight > 0.0,
            "weight must be positive and finite, got {weight}"
        );
        let i = slave.get() as usize;
        if self.registered[i] {
            self.total_weight -= self.weights[i];
        }
        self.registered[i] = true;
        self.weights[i] = weight;
        self.total_weight += weight;
    }

    /// Records `slots` of service delivered to `slave`.
    ///
    /// # Panics
    ///
    /// Panics if the slave was not registered.
    pub fn record(&mut self, slave: AmAddr, slots: u64) {
        let i = slave.get() as usize;
        assert!(
            self.registered[i],
            "slave must be registered before recording service"
        );
        self.served[i] += slots;
        self.total_served += slots;
    }

    /// Slots served to `slave` so far.
    pub fn served(&self, slave: AmAddr) -> u64 {
        self.served[slave.get() as usize]
    }

    /// The slave's fair share of everything served so far.
    pub fn fair_share(&self, slave: AmAddr) -> f64 {
        let i = slave.get() as usize;
        if self.registered[i] && self.total_weight > 0.0 {
            self.total_served as f64 * self.weights[i] / self.total_weight
        } else {
            0.0
        }
    }

    /// How far `slave` is **under** its fair share (negative when it is
    /// ahead). PFP prefers the slave with the largest deficit.
    pub fn deficit(&self, slave: AmAddr) -> f64 {
        self.fair_share(slave) - self.served(slave) as f64
    }

    /// The fraction of its fair share the slave has received (1.0 when the
    /// tracker is empty — everyone is trivially satisfied). This is PFP's
    /// "fraction of the fair share of resources".
    pub fn fairness_fraction(&self, slave: AmAddr) -> f64 {
        let share = self.fair_share(slave);
        if share <= 0.0 {
            1.0
        } else {
            self.served(slave) as f64 / share
        }
    }

    /// The registered slaves, in address order.
    pub fn slaves(&self) -> impl Iterator<Item = AmAddr> + '_ {
        (1..SLOTS as u8)
            .filter(|&n| self.registered[n as usize])
            .map(|n| AmAddr::new(n).expect("1..=7 is a valid slave address"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    #[test]
    fn empty_tracker_is_neutral() {
        let t = FairShareTracker::new();
        assert_eq!(t.served(s(1)), 0);
        assert_eq!(t.fair_share(s(1)), 0.0);
        assert_eq!(t.deficit(s(1)), 0.0);
        assert_eq!(t.fairness_fraction(s(1)), 1.0);
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut t = FairShareTracker::new();
        for n in 1..=4 {
            t.register(s(n), 1.0);
        }
        t.record(s(1), 4);
        t.record(s(2), 4);
        assert_eq!(t.fair_share(s(3)), 2.0);
        assert_eq!(t.deficit(s(3)), 2.0);
        assert_eq!(t.deficit(s(1)), -2.0);
        assert_eq!(t.fairness_fraction(s(1)), 2.0);
        assert_eq!(t.fairness_fraction(s(3)), 0.0);
    }

    #[test]
    fn weights_scale_shares() {
        let mut t = FairShareTracker::new();
        t.register(s(1), 3.0);
        t.register(s(2), 1.0);
        t.record(s(1), 8);
        // s1 entitled to 6 of the 8, s2 to 2.
        assert_eq!(t.fair_share(s(1)), 6.0);
        assert_eq!(t.fair_share(s(2)), 2.0);
        assert_eq!(t.deficit(s(1)), -2.0);
        assert_eq!(t.deficit(s(2)), 2.0);
    }

    #[test]
    fn reregistering_updates_weight_only() {
        let mut t = FairShareTracker::new();
        t.register(s(1), 1.0);
        t.register(s(2), 1.0);
        t.record(s(1), 10);
        t.register(s(1), 4.0);
        assert_eq!(t.served(s(1)), 10);
        assert_eq!(t.fair_share(s(1)), 8.0);
    }

    #[test]
    fn deficits_sum_to_zero() {
        let mut t = FairShareTracker::new();
        for n in 1..=5 {
            t.register(s(n), n as f64);
        }
        t.record(s(1), 7);
        t.record(s(3), 2);
        t.record(s(5), 11);
        let total: f64 = (1..=5).map(|n| t.deficit(s(n))).sum();
        assert!(total.abs() < 1e-9, "deficits must sum to 0, got {total}");
    }

    #[test]
    fn slaves_iterate_in_address_order() {
        let mut t = FairShareTracker::new();
        t.register(s(5), 1.0);
        t.register(s(2), 1.0);
        t.register(s(7), 1.0);
        let order: Vec<u8> = t.slaves().map(|a| a.get()).collect();
        assert_eq!(order, vec![2, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "registered")]
    fn recording_unknown_slave_panics() {
        let mut t = FairShareTracker::new();
        t.record(s(1), 1);
    }
}
