//! Exhaustive round-robin polling.

use btgs_baseband::LogicalChannel;
use btgs_des::SimTime;
use btgs_piconet::{ExchangeReport, MasterView, PollDecision, Poller};

/// Exhaustive round robin: stays on a slave until an exchange moves no data
/// in either direction, then advances to the next slave.
///
/// Compared with limited (1-poll) round robin it amortises the polling
/// overhead over bursts, but a heavily loaded slave can hold the channel for
/// a long time, hurting the delay of the others.
#[derive(Clone, Debug, Default)]
pub struct ExhaustiveRoundRobinPoller {
    cursor: usize,
    /// `true` while the current slave keeps producing data.
    stay: bool,
}

impl ExhaustiveRoundRobinPoller {
    /// Creates an exhaustive round-robin poller.
    pub fn new() -> ExhaustiveRoundRobinPoller {
        ExhaustiveRoundRobinPoller::default()
    }
}

impl Poller for ExhaustiveRoundRobinPoller {
    fn decide(&mut self, _now: SimTime, view: &MasterView<'_>) -> PollDecision {
        // Precomputed sorted slave list — no per-decision allocation.
        let slaves = view.slaves_on(LogicalChannel::BestEffort);
        if slaves.is_empty() {
            return PollDecision::Sleep;
        }
        if !self.stay {
            self.cursor = (self.cursor + 1) % slaves.len();
            // Polling this slave until it runs dry.
            self.stay = true;
        }
        // Skip absent bridge slaves (bounded, allocation-free; a no-op with
        // the always-present mask).
        for _ in 0..slaves.len() {
            let slave = slaves[self.cursor % slaves.len()];
            if view.is_present(slave) {
                return PollDecision::Poll {
                    slave,
                    channel: LogicalChannel::BestEffort,
                };
            }
            self.cursor = (self.cursor + 1) % slaves.len();
        }
        // Every BE slave is off in another piconet: wait for the first one
        // back.
        PollDecision::Idle {
            until: view.earliest_presence(slaves),
        }
    }

    fn on_exchange(&mut self, report: &ExchangeReport) {
        if report.channel == LogicalChannel::BestEffort && !report.successful() {
            self.stay = false;
        }
    }

    fn name(&self) -> &'static str {
        "exhaustive-round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::{AmAddr, Direction, PacketType};
    use btgs_piconet::{FlowSpec, FlowTable, SegmentOutcome};
    use btgs_traffic::FlowId;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn flows2() -> Vec<FlowSpec> {
        (1..=2)
            .map(|n| {
                FlowSpec::new(
                    FlowId(n as u32),
                    s(n),
                    Direction::SlaveToMaster,
                    LogicalChannel::BestEffort,
                )
            })
            .collect()
    }

    fn unsuccessful(slave: AmAddr) -> ExchangeReport {
        ExchangeReport {
            start: SimTime::ZERO,
            end: SimTime::from_micros(1250),
            slave,
            channel: LogicalChannel::BestEffort,
            down: SegmentOutcome::Control {
                ty: PacketType::Poll,
            },
            up: SegmentOutcome::Control {
                ty: PacketType::Null,
            },
        }
    }

    #[test]
    fn stays_until_dry_then_moves() {
        let flows = flows2();
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut err_poller = ExhaustiveRoundRobinPoller::new();
        // First decision picks a slave; repeat decisions stay on it.
        let first = match err_poller.decide(SimTime::ZERO, &view) {
            PollDecision::Poll { slave, .. } => slave,
            other => panic!("{other:?}"),
        };
        for _ in 0..3 {
            match err_poller.decide(SimTime::ZERO, &view) {
                PollDecision::Poll { slave, .. } => assert_eq!(slave, first),
                other => panic!("{other:?}"),
            }
        }
        // An unsuccessful exchange releases the slave.
        err_poller.on_exchange(&unsuccessful(first));
        match err_poller.decide(SimTime::ZERO, &view) {
            PollDecision::Poll { slave, .. } => assert_ne!(slave, first),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gs_exchanges_do_not_release() {
        let flows = flows2();
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut p = ExhaustiveRoundRobinPoller::new();
        let first = match p.decide(SimTime::ZERO, &view) {
            PollDecision::Poll { slave, .. } => slave,
            other => panic!("{other:?}"),
        };
        let mut gs_report = unsuccessful(first);
        gs_report.channel = LogicalChannel::GuaranteedService;
        p.on_exchange(&gs_report);
        match p.decide(SimTime::ZERO, &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, first),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sleeps_without_flows() {
        let flows: Vec<FlowSpec> = Vec::new();
        let queues: Vec<Option<btgs_piconet::FlowQueue>> = Vec::new();
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut p = ExhaustiveRoundRobinPoller::new();
        assert_eq!(p.decide(SimTime::ZERO, &view), PollDecision::Sleep);
    }
}
