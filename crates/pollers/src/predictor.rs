//! Data-availability prediction for uplink queues.
//!
//! The master cannot see a slave's uplink queue, so the Predictive Fair
//! Poller (PFP, ref. [1] of the paper) *predicts* whether polling a slave
//! will return data. This module reconstructs that predictor from the
//! paper's summary: an arrival-rate estimate maintained from past poll
//! outcomes, turned into the probability that at least one packet arrived
//! since the last poll emptied the queue (a Poisson assumption).

use btgs_des::{SimDuration, SimTime};
use std::cell::Cell;

/// Estimates the probability that a slave's uplink queue holds data.
///
/// Maintains an exponentially-weighted moving average of the packet arrival
/// rate, learned from successful polls (a data return at time `t` after a
/// gap `g` is a rate sample `1/g`), and decayed by unsuccessful polls
/// (evidence that the rate is lower than estimated).
///
/// # Examples
///
/// ```
/// use btgs_pollers::AvailabilityPredictor;
/// use btgs_des::{SimDuration, SimTime};
///
/// let mut p = AvailabilityPredictor::new(SimDuration::from_millis(20));
/// // Right after an empty poll, availability is low…
/// p.observe_empty(SimTime::from_millis(100));
/// assert!(p.probability_at(SimTime::from_millis(101)) < 0.2);
/// // …but approaches 1 as time passes.
/// assert!(p.probability_at(SimTime::from_millis(400)) > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct AvailabilityPredictor {
    /// EWMA arrival rate in packets/second.
    rate: f64,
    /// Instant after which the queue is believed (possibly) non-empty:
    /// the end of the last poll that emptied or missed data.
    empty_since: SimTime,
    /// `true` if the last poll returned data without emptying evidence —
    /// the queue may still be backlogged, so availability is certain.
    likely_backlogged: bool,
    last_data_at: Option<SimTime>,
    alpha: f64,
    /// Memoized `(threshold, crossing)` of [`time_of_probability`] for the
    /// current `(rate, empty_since)` state, invalidated by both observers.
    /// The PFP idle path asks for the same threshold on every wake, so the
    /// `ln` runs once per poll outcome instead of once per decide.
    ///
    /// [`time_of_probability`]: AvailabilityPredictor::time_of_probability
    crossing_memo: Cell<Option<(f64, SimTime)>>,
}

impl AvailabilityPredictor {
    /// Smoothing factor for the rate EWMA.
    const ALPHA: f64 = 0.15;

    /// Creates a predictor with an initial guess of one packet per
    /// `expected_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `expected_interval` is zero.
    pub fn new(expected_interval: SimDuration) -> AvailabilityPredictor {
        assert!(
            !expected_interval.is_zero(),
            "expected interval must be positive"
        );
        AvailabilityPredictor {
            rate: 1.0 / expected_interval.as_secs_f64(),
            empty_since: SimTime::ZERO,
            likely_backlogged: false,
            last_data_at: None,
            alpha: Self::ALPHA,
            crossing_memo: Cell::new(None),
        }
    }

    /// The current arrival-rate estimate in packets per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Records a poll at `t` that returned data. `emptied` should be `true`
    /// if the returned segment completed the known backlog (in Bluetooth the
    /// master learns this from the flow bit / follow-up NULL; we approximate
    /// with "the segment was the packet's last").
    pub fn observe_data(&mut self, t: SimTime, emptied: bool) {
        if let Some(prev) = self.last_data_at {
            let gap = t.saturating_duration_since(prev).as_secs_f64();
            if gap > 0.0 {
                let sample = 1.0 / gap;
                self.rate = (1.0 - self.alpha) * self.rate + self.alpha * sample;
            }
        }
        self.last_data_at = Some(t);
        self.likely_backlogged = !emptied;
        self.empty_since = t;
        self.crossing_memo.set(None);
    }

    /// Records a poll at `t` that returned no data.
    pub fn observe_empty(&mut self, t: SimTime) {
        // No data over the gap since the queue was last known empty is
        // evidence for a lower rate; shrink the estimate gently toward the
        // implied upper bound.
        let gap = t.saturating_duration_since(self.empty_since).as_secs_f64();
        if gap > 0.0 {
            let implied = 1.0 / gap;
            if implied < self.rate {
                self.rate = (1.0 - self.alpha) * self.rate + self.alpha * implied;
            }
        }
        self.likely_backlogged = false;
        self.empty_since = t;
        self.crossing_memo.set(None);
    }

    /// The probability that the slave holds uplink data at instant `t`:
    /// `1 - exp(-rate * (t - empty_since))`, or 1 if a backlog is already
    /// known.
    pub fn probability_at(&self, t: SimTime) -> f64 {
        if self.likely_backlogged {
            return 1.0;
        }
        let dt = t.saturating_duration_since(self.empty_since).as_secs_f64();
        1.0 - (-self.rate * dt).exp()
    }

    /// The earliest instant at which [`probability_at`] reaches `threshold`
    /// — when a rate-matched poll should be scheduled.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not within `(0, 1)`.
    ///
    /// [`probability_at`]: AvailabilityPredictor::probability_at
    pub fn time_of_probability(&self, threshold: f64) -> SimTime {
        assert!(
            (0.0..1.0).contains(&threshold) && threshold > 0.0,
            "threshold must be in (0,1), got {threshold}"
        );
        if self.likely_backlogged {
            return self.empty_since;
        }
        if let Some((thr, at)) = self.crossing_memo.get() {
            if thr == threshold {
                return at;
            }
        }
        let dt = -(1.0 - threshold).ln() / self.rate.max(1e-3);
        let at = self.empty_since + SimDuration::from_secs_f64(dt.min(3600.0));
        self.crossing_memo.set(Some((threshold, at)));
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn probability_grows_with_time() {
        let mut p = AvailabilityPredictor::new(SimDuration::from_millis(20));
        p.observe_empty(ms(0));
        let p1 = p.probability_at(ms(5));
        let p2 = p.probability_at(ms(20));
        let p3 = p.probability_at(ms(200));
        assert!(p1 < p2 && p2 < p3);
        assert!(p3 > 0.99);
        assert!(p.probability_at(ms(0)) == 0.0);
    }

    #[test]
    fn backlog_means_certainty() {
        let mut p = AvailabilityPredictor::new(SimDuration::from_millis(20));
        p.observe_data(ms(10), false);
        assert_eq!(p.probability_at(ms(10)), 1.0);
        assert_eq!(p.time_of_probability(0.5), ms(10));
        // Emptied: back to stochastic prediction.
        p.observe_data(ms(20), true);
        assert!(p.probability_at(ms(20)) < 1.0);
    }

    #[test]
    fn rate_learns_from_data_gaps() {
        // Feed arrivals every 10 ms into a predictor initialised at 50 ms.
        let mut p = AvailabilityPredictor::new(SimDuration::from_millis(50));
        let initial = p.rate();
        for k in 1..=100u64 {
            p.observe_data(ms(k * 10), true);
        }
        assert!(p.rate() > initial, "rate should rise toward 100/s");
        assert!((p.rate() - 100.0).abs() < 20.0, "rate {}", p.rate());
    }

    #[test]
    fn rate_decays_on_empty_polls() {
        let mut p = AvailabilityPredictor::new(SimDuration::from_millis(10));
        let initial = p.rate();
        // Empty polls spaced widely: strong evidence of a lower rate.
        for k in 1..=50u64 {
            p.observe_empty(ms(k * 200));
        }
        assert!(p.rate() < initial / 2.0, "rate {} vs {initial}", p.rate());
    }

    #[test]
    fn time_of_probability_inverts_probability() {
        let mut p = AvailabilityPredictor::new(SimDuration::from_millis(20));
        p.observe_empty(ms(100));
        let t = p.time_of_probability(0.5);
        let prob = p.probability_at(t);
        assert!((prob - 0.5).abs() < 0.01, "p({t}) = {prob}");
        assert!(t > ms(100));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_validated() {
        let p = AvailabilityPredictor::new(SimDuration::from_millis(20));
        let _ = p.time_of_probability(1.0);
    }
}
