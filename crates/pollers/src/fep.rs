//! The Fair Exhaustive Poller (FEP).
//!
//! Reconstruction of Johansson, Körner & Johansson's scheduler (reference
//! [7] of the paper): slaves are kept on an *active* or *inactive* list.
//! Active slaves are polled round-robin and exhaustively; a slave whose poll
//! returns no data is demoted to the inactive list; inactive slaves are
//! probed at a fixed low rate so newly busy slaves are discovered, and a
//! slave with known downlink backlog is promoted immediately.

use btgs_baseband::{AmAddr, LogicalChannel};
use btgs_des::{SimDuration, SimTime};
use btgs_piconet::{ExchangeReport, MasterView, PollDecision, Poller};

/// One more than the highest active member address (slot 0 is unused).
const SLOTS: usize = AmAddr::MAX_SLAVES + 1;

/// Fair Exhaustive Poller for best-effort traffic.
///
/// Per-slave state lives in dense arrays indexed by the 3-bit active member
/// address; every scan runs in ascending address order, matching the
/// ordered maps this replaced decision for decision — without their node
/// allocations on the hot path.
#[derive(Clone, Debug)]
pub struct FepPoller {
    probe_interval: SimDuration,
    /// Per slave: registered (`Some`) and on the active list (`true`)?
    active: [Option<bool>; SLOTS],
    /// Last time each slave was probed.
    last_probe: [SimTime; SLOTS],
    cursor: usize,
    /// Flow count of the view when the slave set was last synced (flow
    /// sets are static per run).
    synced_flows: usize,
}

impl FepPoller {
    /// Creates an FEP that probes inactive slaves every `probe_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `probe_interval` is zero.
    pub fn new(probe_interval: SimDuration) -> FepPoller {
        assert!(!probe_interval.is_zero(), "probe interval must be positive");
        FepPoller {
            probe_interval,
            active: [None; SLOTS],
            last_probe: [SimTime::ZERO; SLOTS],
            cursor: 0,
            synced_flows: 0,
        }
    }

    /// Registers the view's best-effort slaves.
    ///
    /// A simulation's flow set is fixed for the whole run, so this runs
    /// once (guarded by the flow count). A poller instance must not be
    /// reused across runs with different flow sets — registrations from
    /// the old set would persist; build a fresh poller per run, as
    /// `PiconetSim` does.
    fn sync_slaves(&mut self, view: &MasterView<'_>) {
        if self.synced_flows == view.flows().len() {
            return;
        }
        for f in view.flows() {
            if f.channel == LogicalChannel::BestEffort {
                let slot = &mut self.active[f.slave.get() as usize];
                if slot.is_none() {
                    *slot = Some(true);
                }
            }
        }
        self.synced_flows = view.flows().len();
    }

    /// The registered slaves in address order.
    fn slaves(&self) -> impl Iterator<Item = (AmAddr, bool)> + '_ {
        (1..SLOTS as u8).filter_map(move |n| {
            self.active[n as usize].map(|a| (AmAddr::new(n).expect("1..=7 is a valid address"), a))
        })
    }

    /// `true` if the slave is currently on the active list (test hook).
    pub fn is_active(&self, slave: AmAddr) -> bool {
        self.active[slave.get() as usize].unwrap_or(false)
    }
}

impl Poller for FepPoller {
    fn decide(&mut self, now: SimTime, view: &MasterView<'_>) -> PollDecision {
        self.sync_slaves(view);
        if self.synced_flows == 0 || self.slaves().next().is_none() {
            return PollDecision::Sleep;
        }
        // Promote slaves with known downlink data (O(1) queue peeks via the
        // dense flow table).
        for (idx, f) in view.table().iter() {
            if f.channel == LogicalChannel::BestEffort && view.downlink_has_data_at(idx, now) {
                self.active[f.slave.get() as usize] = Some(true);
            }
        }
        // Pick the cursor-th active *and present* slave without
        // materialising the list (at most 7 slaves; two cheap passes beat
        // an allocation). Absent bridge slaves stay on the active list but
        // cannot be addressed until they return.
        let n_active = self
            .slaves()
            .filter(|(s, a)| *a && view.is_present(*s))
            .count();
        if n_active > 0 {
            let slave = self
                .slaves()
                .filter_map(|(s, a)| (a && view.is_present(s)).then_some(s))
                .nth(self.cursor % n_active)
                .expect("n_active counted above");
            return PollDecision::Poll {
                slave,
                channel: LogicalChannel::BestEffort,
            };
        }
        // Nobody pollable is active: probe the most overdue *present*
        // slave, or idle until the next probe is due. Strict `<` keeps the
        // first (lowest-address) slave on ties, exactly as the ordered-map
        // min did.
        let overdue = self
            .slaves()
            .filter(|(s, _)| view.is_present(*s))
            .map(|(s, _)| (s, self.last_probe[s.get() as usize]))
            .reduce(|best, cand| if cand.1 < best.1 { cand } else { best });
        let Some((slave, last)) = overdue else {
            // Every registered slave is off in another piconet.
            let until = self
                .slaves()
                .map(|(s, _)| view.next_present(s))
                .min()
                .expect("slave set checked non-empty above");
            return PollDecision::Idle { until };
        };
        let due = last + self.probe_interval;
        if due <= now {
            PollDecision::Poll {
                slave,
                channel: LogicalChannel::BestEffort,
            }
        } else {
            PollDecision::Idle { until: due }
        }
    }

    fn on_exchange(&mut self, report: &ExchangeReport) {
        if report.channel != LogicalChannel::BestEffort {
            return;
        }
        self.last_probe[report.slave.get() as usize] = report.end;
        if report.successful() {
            self.active[report.slave.get() as usize] = Some(true);
        } else {
            self.active[report.slave.get() as usize] = Some(false);
            // Advance past the demoted slave.
            self.cursor = self.cursor.wrapping_add(1);
        }
    }

    fn on_downlink_arrival(&mut self, _flow: btgs_traffic::FlowId, _now: SimTime) {
        // Promotion happens in `decide` via the downlink view.
    }

    fn name(&self) -> &'static str {
        "fep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::{Direction, PacketType};
    use btgs_piconet::{FlowSpec, FlowTable, SegmentOutcome};
    use btgs_traffic::FlowId;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn flows() -> Vec<FlowSpec> {
        (1..=2)
            .map(|n| {
                FlowSpec::new(
                    FlowId(n as u32),
                    s(n),
                    Direction::SlaveToMaster,
                    LogicalChannel::BestEffort,
                )
            })
            .collect()
    }

    fn report(slave: AmAddr, successful: bool, end: SimTime) -> ExchangeReport {
        ExchangeReport {
            start: end - SimDuration::from_micros(1250),
            end,
            slave,
            channel: LogicalChannel::BestEffort,
            down: SegmentOutcome::Control {
                ty: PacketType::Poll,
            },
            up: if successful {
                SegmentOutcome::Data {
                    flow: FlowId(1),
                    segment: btgs_piconet::SegmentPlan {
                        ty: PacketType::Dh1,
                        bytes: 10,
                        is_last: true,
                        is_first: true,
                        packet_seq: 0,
                        packet_size: 10,
                        packet_arrival: SimTime::ZERO,
                    },
                    delivered: true,
                    retransmission: false,
                }
            } else {
                SegmentOutcome::Control {
                    ty: PacketType::Null,
                }
            },
        }
    }

    #[test]
    fn unsuccessful_poll_demotes() {
        let flows = flows();
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        let _ = fep.decide(SimTime::ZERO, &view);
        assert!(fep.is_active(s(1)) && fep.is_active(s(2)));
        fep.on_exchange(&report(s(1), false, SimTime::from_millis(2)));
        assert!(!fep.is_active(s(1)));
        assert!(fep.is_active(s(2)));
    }

    #[test]
    fn successful_poll_keeps_active() {
        let flows = flows();
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        let _ = fep.decide(SimTime::ZERO, &view);
        fep.on_exchange(&report(s(1), true, SimTime::from_millis(2)));
        assert!(fep.is_active(s(1)));
    }

    #[test]
    fn all_inactive_idles_until_probe() {
        let flows = flows();
        let queues = vec![None, None];
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let _ = fep.decide(SimTime::ZERO, &view);
        fep.on_exchange(&report(s(1), false, SimTime::from_millis(2)));
        fep.on_exchange(&report(s(2), false, SimTime::from_millis(3)));
        // Right after demotion: idle until the first probe is due.
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(4), &table, &queues);
        match fep.decide(SimTime::from_millis(4), &view) {
            PollDecision::Idle { until } => assert_eq!(until, SimTime::from_millis(52)),
            other => panic!("expected Idle, got {other:?}"),
        }
        // At the due time the overdue slave is probed.
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(52), &table, &queues);
        match fep.decide(SimTime::from_millis(52), &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
            other => panic!("expected Poll, got {other:?}"),
        }
    }

    #[test]
    fn downlink_backlog_promotes() {
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        )];
        let mut q = btgs_piconet::FlowQueue::new();
        q.push(btgs_traffic::AppPacket::new(
            0,
            FlowId(1),
            50,
            SimTime::ZERO,
        ));
        let queues = vec![Some(q)];
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        // Demote the slave first.
        let empty_queues = vec![None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view0 = MasterView::new(SimTime::ZERO, &table, &empty_queues);
        let _ = fep.decide(SimTime::ZERO, &view0);
        fep.on_exchange(&report(s(1), false, SimTime::from_millis(2)));
        assert!(!fep.is_active(s(1)));
        // With downlink data visible, the next decision polls immediately.
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(5), &table, &queues);
        match fep.decide(SimTime::from_millis(5), &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
            other => panic!("expected Poll, got {other:?}"),
        }
    }
}
