//! The Fair Exhaustive Poller (FEP).
//!
//! Reconstruction of Johansson, Körner & Johansson's scheduler (reference
//! [7] of the paper): slaves are kept on an *active* or *inactive* list.
//! Active slaves are polled round-robin and exhaustively; a slave whose poll
//! returns no data is demoted to the inactive list; inactive slaves are
//! probed at a fixed low rate so newly busy slaves are discovered, and a
//! slave with known downlink backlog is promoted immediately.

use btgs_baseband::{AmAddr, LogicalChannel};
use btgs_des::{SimDuration, SimTime};
use btgs_piconet::{ExchangeReport, MasterView, PollDecision, Poller};
use std::collections::BTreeMap;

/// Fair Exhaustive Poller for best-effort traffic.
#[derive(Clone, Debug)]
pub struct FepPoller {
    probe_interval: SimDuration,
    /// Per slave: `true` if on the active list.
    active: BTreeMap<AmAddr, bool>,
    /// Last time each inactive slave was probed.
    last_probe: BTreeMap<AmAddr, SimTime>,
    cursor: usize,
}

impl FepPoller {
    /// Creates an FEP that probes inactive slaves every `probe_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `probe_interval` is zero.
    pub fn new(probe_interval: SimDuration) -> FepPoller {
        assert!(!probe_interval.is_zero(), "probe interval must be positive");
        FepPoller {
            probe_interval,
            active: BTreeMap::new(),
            last_probe: BTreeMap::new(),
            cursor: 0,
        }
    }

    fn sync_slaves(&mut self, view: &MasterView<'_>) {
        for f in view.flows() {
            if f.channel == LogicalChannel::BestEffort {
                self.active.entry(f.slave).or_insert(true);
                self.last_probe.entry(f.slave).or_insert(SimTime::ZERO);
            }
        }
    }

    /// `true` if the slave is currently on the active list (test hook).
    pub fn is_active(&self, slave: AmAddr) -> bool {
        self.active.get(&slave).copied().unwrap_or(false)
    }
}

impl Poller for FepPoller {
    fn decide(&mut self, now: SimTime, view: &MasterView<'_>) -> PollDecision {
        self.sync_slaves(view);
        if self.active.is_empty() {
            return PollDecision::Sleep;
        }
        // Promote slaves with known downlink data (O(1) queue peeks via the
        // dense flow table).
        for (idx, f) in view.table().iter() {
            if f.channel == LogicalChannel::BestEffort && view.downlink_has_data_at(idx, now) {
                self.active.insert(f.slave, true);
            }
        }
        // Pick the cursor-th active slave without materialising the active
        // list (at most 7 slaves; two cheap passes beat an allocation).
        let n_active = self.active.values().filter(|a| **a).count();
        if n_active > 0 {
            let slave = *self
                .active
                .iter()
                .filter_map(|(s, a)| a.then_some(s))
                .nth(self.cursor % n_active)
                .expect("n_active counted above");
            return PollDecision::Poll {
                slave,
                channel: LogicalChannel::BestEffort,
            };
        }
        // All inactive: probe the most overdue slave, or idle until the next
        // probe is due.
        let (&slave, &last) = self
            .last_probe
            .iter()
            .min_by_key(|(_, &t)| t)
            .expect("non-empty");
        let due = last + self.probe_interval;
        if due <= now {
            PollDecision::Poll {
                slave,
                channel: LogicalChannel::BestEffort,
            }
        } else {
            PollDecision::Idle { until: due }
        }
    }

    fn on_exchange(&mut self, report: &ExchangeReport) {
        if report.channel != LogicalChannel::BestEffort {
            return;
        }
        self.last_probe.insert(report.slave, report.end);
        if report.successful() {
            self.active.insert(report.slave, true);
        } else {
            self.active.insert(report.slave, false);
            // Advance past the demoted slave.
            self.cursor = self.cursor.wrapping_add(1);
        }
    }

    fn on_downlink_arrival(&mut self, _flow: btgs_traffic::FlowId, _now: SimTime) {
        // Promotion happens in `decide` via the downlink view.
    }

    fn name(&self) -> &'static str {
        "fep"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::{Direction, PacketType};
    use btgs_piconet::{FlowSpec, FlowTable, SegmentOutcome};
    use btgs_traffic::FlowId;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn flows() -> Vec<FlowSpec> {
        (1..=2)
            .map(|n| {
                FlowSpec::new(
                    FlowId(n as u32),
                    s(n),
                    Direction::SlaveToMaster,
                    LogicalChannel::BestEffort,
                )
            })
            .collect()
    }

    fn report(slave: AmAddr, successful: bool, end: SimTime) -> ExchangeReport {
        ExchangeReport {
            start: end - SimDuration::from_micros(1250),
            end,
            slave,
            channel: LogicalChannel::BestEffort,
            down: SegmentOutcome::Control {
                ty: PacketType::Poll,
            },
            up: if successful {
                SegmentOutcome::Data {
                    flow: FlowId(1),
                    segment: btgs_piconet::SegmentPlan {
                        ty: PacketType::Dh1,
                        bytes: 10,
                        is_last: true,
                        is_first: true,
                        packet_seq: 0,
                        packet_size: 10,
                        packet_arrival: SimTime::ZERO,
                    },
                    delivered: true,
                    retransmission: false,
                }
            } else {
                SegmentOutcome::Control {
                    ty: PacketType::Null,
                }
            },
        }
    }

    #[test]
    fn unsuccessful_poll_demotes() {
        let flows = flows();
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        let _ = fep.decide(SimTime::ZERO, &view);
        assert!(fep.is_active(s(1)) && fep.is_active(s(2)));
        fep.on_exchange(&report(s(1), false, SimTime::from_millis(2)));
        assert!(!fep.is_active(s(1)));
        assert!(fep.is_active(s(2)));
    }

    #[test]
    fn successful_poll_keeps_active() {
        let flows = flows();
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        let _ = fep.decide(SimTime::ZERO, &view);
        fep.on_exchange(&report(s(1), true, SimTime::from_millis(2)));
        assert!(fep.is_active(s(1)));
    }

    #[test]
    fn all_inactive_idles_until_probe() {
        let flows = flows();
        let queues = vec![None, None];
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let _ = fep.decide(SimTime::ZERO, &view);
        fep.on_exchange(&report(s(1), false, SimTime::from_millis(2)));
        fep.on_exchange(&report(s(2), false, SimTime::from_millis(3)));
        // Right after demotion: idle until the first probe is due.
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(4), &table, &queues);
        match fep.decide(SimTime::from_millis(4), &view) {
            PollDecision::Idle { until } => assert_eq!(until, SimTime::from_millis(52)),
            other => panic!("expected Idle, got {other:?}"),
        }
        // At the due time the overdue slave is probed.
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(52), &table, &queues);
        match fep.decide(SimTime::from_millis(52), &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
            other => panic!("expected Poll, got {other:?}"),
        }
    }

    #[test]
    fn downlink_backlog_promotes() {
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        )];
        let mut q = btgs_piconet::FlowQueue::new();
        q.push(btgs_traffic::AppPacket::new(
            0,
            FlowId(1),
            50,
            SimTime::ZERO,
        ));
        let queues = vec![Some(q)];
        let mut fep = FepPoller::new(SimDuration::from_millis(50));
        // Demote the slave first.
        let empty_queues = vec![None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view0 = MasterView::new(SimTime::ZERO, &table, &empty_queues);
        let _ = fep.decide(SimTime::ZERO, &view0);
        fep.on_exchange(&report(s(1), false, SimTime::from_millis(2)));
        assert!(!fep.is_active(s(1)));
        // With downlink data visible, the next decision polls immediately.
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(5), &table, &queues);
        match fep.decide(SimTime::from_millis(5), &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
            other => panic!("expected Poll, got {other:?}"),
        }
    }
}
