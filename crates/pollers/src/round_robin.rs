//! Plain round-robin polling.

use btgs_baseband::LogicalChannel;
use btgs_des::SimTime;
use btgs_piconet::{ExchangeReport, MasterView, PollDecision, Poller};

/// Pure round robin with limited service: every slave gets exactly one poll
/// per cycle, data or not.
///
/// This is the classical baseline the intra-piconet scheduling literature
/// measures against: trivially fair in polls, but it wastes slots on idle
/// slaves (every poll of an empty slave costs a POLL/NULL pair) and its
/// cycle time grows with the piconet size.
///
/// # Examples
///
/// ```
/// use btgs_pollers::RoundRobinPoller;
/// use btgs_piconet::{FlowSpec, FlowTable, MasterView, PollDecision, Poller};
/// use btgs_baseband::{AmAddr, Direction, LogicalChannel};
/// use btgs_traffic::FlowId;
/// use btgs_des::SimTime;
///
/// let table = FlowTable::new(vec![
///     FlowSpec::new(FlowId(1), AmAddr::new(1).unwrap(), Direction::SlaveToMaster, LogicalChannel::BestEffort),
///     FlowSpec::new(FlowId(2), AmAddr::new(2).unwrap(), Direction::SlaveToMaster, LogicalChannel::BestEffort),
/// ]).unwrap();
/// let queues = vec![None, None];
/// let view = MasterView::new(SimTime::ZERO, &table, &queues);
/// let mut rr = RoundRobinPoller::new();
/// let first = rr.decide(SimTime::ZERO, &view);
/// let second = rr.decide(SimTime::ZERO, &view);
/// assert_ne!(first, second); // alternates between the two slaves
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundRobinPoller {
    cursor: usize,
}

impl RoundRobinPoller {
    /// Creates a round-robin poller starting at the lowest slave address.
    pub fn new() -> RoundRobinPoller {
        RoundRobinPoller::default()
    }
}

impl Poller for RoundRobinPoller {
    fn decide(&mut self, _now: SimTime, view: &MasterView<'_>) -> PollDecision {
        // Precomputed sorted slave list — no per-decision allocation.
        let slaves = view.slaves_on(LogicalChannel::BestEffort);
        if slaves.is_empty() {
            return PollDecision::Sleep;
        }
        // Skip absent bridge slaves (always-present masks take the first
        // candidate, exactly the pre-scatternet path). The scan is bounded
        // by the slave count and allocation-free.
        for _ in 0..slaves.len() {
            let slave = slaves[self.cursor % slaves.len()];
            self.cursor += 1;
            if view.is_present(slave) {
                return PollDecision::Poll {
                    slave,
                    channel: LogicalChannel::BestEffort,
                };
            }
        }
        // Every BE slave is off in another piconet: wait for the first one
        // back.
        PollDecision::Idle {
            until: view.earliest_presence(slaves),
        }
    }

    fn on_exchange(&mut self, _report: &ExchangeReport) {}

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::{AmAddr, Direction};
    use btgs_piconet::{FlowSpec, FlowTable};
    use btgs_traffic::FlowId;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn flows3() -> Vec<FlowSpec> {
        (1..=3)
            .map(|n| {
                FlowSpec::new(
                    FlowId(n as u32),
                    s(n),
                    Direction::SlaveToMaster,
                    LogicalChannel::BestEffort,
                )
            })
            .collect()
    }

    #[test]
    fn cycles_through_all_slaves() {
        let flows = flows3();
        let queues = vec![None, None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut rr = RoundRobinPoller::new();
        let mut seen = Vec::new();
        for _ in 0..6 {
            match rr.decide(SimTime::ZERO, &view) {
                PollDecision::Poll { slave, channel } => {
                    assert_eq!(channel, LogicalChannel::BestEffort);
                    seen.push(slave.get());
                }
                other => panic!("expected Poll, got {other:?}"),
            }
        }
        assert_eq!(seen, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn sleeps_without_be_flows() {
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        )];
        let queues = vec![None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut rr = RoundRobinPoller::new();
        assert_eq!(rr.decide(SimTime::ZERO, &view), PollDecision::Sleep);
    }

    #[test]
    fn ignores_gs_only_slaves() {
        let mut flows = flows3();
        flows.push(FlowSpec::new(
            FlowId(9),
            s(7),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ));
        let queues = vec![None, None, None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut rr = RoundRobinPoller::new();
        for _ in 0..9 {
            if let PollDecision::Poll { slave, .. } = rr.decide(SimTime::ZERO, &view) {
                assert_ne!(slave.get(), 7, "GS-only slave polled by BE round robin");
            }
        }
    }
}
