//! The Predictive Fair Poller (PFP) for best-effort traffic.
//!
//! Reconstruction of reference [1] of the paper (Ait Yaiz & Heijenk,
//! *Polling Best Effort Traffic in Bluetooth*, 2002) from its summary in
//! §4: *"This poller predicts the availability of data for each slave, and
//! it keeps track of fairness. Based on these two aspects, it decides which
//! slave to poll next. In the BE case, a fair share of resources is
//! determined for each slave, and the fairness is based on the fractions of
//! these fair shares."*
//!
//! Concretely, this implementation:
//!
//! 1. predicts per-slave data availability with an
//!    [`AvailabilityPredictor`] (downlink availability is known exactly —
//!    those queues live at the master);
//! 2. tracks per-slave service in slots with a [`FairShareTracker`];
//! 3. polls, among the slaves whose availability probability clears a
//!    threshold, the one furthest below its fair share;
//! 4. when nobody clears the threshold, sleeps until the earliest instant
//!    somebody will — so an idle piconet consumes (almost) no slots, which
//!    is precisely the property the paper exploits to hand spare bandwidth
//!    to best-effort traffic.

use crate::fairness::FairShareTracker;
use crate::predictor::AvailabilityPredictor;
use btgs_baseband::{AmAddr, LogicalChannel};
use btgs_des::{SimDuration, SimTime};
use btgs_piconet::{ExchangeReport, MasterView, PollDecision, Poller, SegmentOutcome};

/// One more than the highest active member address (slot 0 is unused).
const SLOTS: usize = AmAddr::MAX_SLAVES + 1;

/// Predictive Fair Poller for the best-effort logical channel.
///
/// Per-slave state lives in dense arrays indexed by the 3-bit active member
/// address, and the registered-slave list is kept sorted, so a decision is
/// a handful of array loads per slave — the ordered-map version this
/// replaced walked `BTreeMap`s several times per poll. Decision order is
/// unchanged (ascending address, exactly the old map iteration order).
#[derive(Clone, Debug)]
pub struct PfpBePoller {
    threshold: f64,
    expected_interval: SimDuration,
    predictors: [Option<AvailabilityPredictor>; SLOTS],
    /// Registered slaves in ascending address order.
    slaves: Vec<AmAddr>,
    /// Whether a slave carries at least one best-effort uplink flow
    /// (static per run; cached by [`PfpBePoller::sync`]).
    has_uplink: [bool; SLOTS],
    /// Each slave's best-effort *downlink* flow indices into the
    /// [`btgs_piconet::FlowTable`] (static per run; cached by `sync`).
    /// Downlink queues live at the master, so availability checks walk
    /// exactly these, with no channel/direction re-filtering per decision.
    down_flows: [Vec<btgs_piconet::FlowIdx>; SLOTS],
    /// Flow count of the view when `sync` last ran. The flow set of a
    /// simulation is fixed, so an unchanged count means nothing to do.
    synced_flows: usize,
    fairness: FairShareTracker,
}

impl PfpBePoller {
    /// Default availability threshold for eager polling.
    pub const DEFAULT_THRESHOLD: f64 = 0.4;

    /// Creates a PFP with the default threshold and an initial arrival
    /// guess of one packet per `expected_interval` per slave.
    pub fn new(expected_interval: SimDuration) -> PfpBePoller {
        PfpBePoller::with_threshold(expected_interval, Self::DEFAULT_THRESHOLD)
    }

    /// Creates a PFP with an explicit availability threshold in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is out of range or the interval is zero.
    pub fn with_threshold(expected_interval: SimDuration, threshold: f64) -> PfpBePoller {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0,1), got {threshold}"
        );
        assert!(
            !expected_interval.is_zero(),
            "expected interval must be positive"
        );
        PfpBePoller {
            threshold,
            expected_interval,
            predictors: [const { None }; SLOTS],
            slaves: Vec::new(),
            has_uplink: [false; SLOTS],
            down_flows: [const { Vec::new() }; SLOTS],
            synced_flows: 0,
            fairness: FairShareTracker::new(),
        }
    }

    /// Caches per-slave flow structure from the view.
    ///
    /// A simulation's flow set is fixed for the whole run, so this runs
    /// once (guarded by the flow count). A poller instance must not be
    /// reused against a *rebuilt* flow table — cached [`FlowIdx`] values
    /// would dangle; build a fresh poller per run, as `PiconetSim` does.
    ///
    /// [`FlowIdx`]: btgs_piconet::FlowIdx
    fn sync(&mut self, view: &MasterView<'_>) {
        if self.synced_flows == view.flows().len() {
            return; // the flow set of a run is static
        }
        for slot in &mut self.down_flows {
            slot.clear();
        }
        self.has_uplink = [false; SLOTS];
        for &slave in view.slaves() {
            for &idx in view.flows_of(slave) {
                let f = view.table().spec(idx);
                if f.channel != LogicalChannel::BestEffort {
                    continue;
                }
                self.register_slave(f.slave);
                if f.direction.is_uplink() {
                    self.has_uplink[f.slave.get() as usize] = true;
                } else {
                    self.down_flows[f.slave.get() as usize].push(idx);
                }
            }
        }
        self.synced_flows = view.flows().len();
    }

    fn register_slave(&mut self, slave: AmAddr) {
        let i = slave.get() as usize;
        if self.predictors[i].is_none() {
            self.predictors[i] = Some(AvailabilityPredictor::new(self.expected_interval));
            self.fairness.register(slave, 1.0);
            let pos = self.slaves.partition_point(|s| *s < slave);
            self.slaves.insert(pos, slave);
        }
    }

    /// The probability that polling `slave` at `now` returns data in either
    /// direction. Walks only the slave's precomputed BE downlink indices.
    fn availability(&self, slave: AmAddr, now: SimTime, view: &MasterView<'_>) -> f64 {
        let i = slave.get() as usize;
        for &idx in &self.down_flows[i] {
            if view.downlink_has_data_at(idx, now) {
                // Downlink queues are at the master: exact knowledge.
                return 1.0;
            }
        }
        if !self.has_uplink[i] {
            return 0.0;
        }
        self.predictors[i]
            .as_ref()
            .map_or(0.0, |p| p.probability_at(now))
    }

    /// Test hook: the current fairness deficit of a slave in slots.
    pub fn deficit(&self, slave: AmAddr) -> f64 {
        self.fairness.deficit(slave)
    }
}

impl Poller for PfpBePoller {
    fn decide(&mut self, now: SimTime, view: &MasterView<'_>) -> PollDecision {
        self.sync(view);
        if self.slaves.is_empty() {
            return PollDecision::Sleep;
        }
        // Candidates that clear the availability threshold, by deficit.
        // Absent bridge slaves are never candidates, whatever their
        // predicted availability.
        let mut best: Option<(f64, f64, AmAddr)> = None;
        for &slave in &self.slaves {
            if !view.is_present(slave) {
                continue;
            }
            let p = self.availability(slave, now, view);
            if p < self.threshold {
                continue;
            }
            let deficit = self.fairness.deficit(slave);
            let key = (deficit, p);
            if best.is_none_or(|(d, pp, _)| key > (d, pp)) {
                best = Some((deficit, p, slave));
            }
        }
        if let Some((_, _, slave)) = best {
            return PollDecision::Poll {
                slave,
                channel: LogicalChannel::BestEffort,
            };
        }
        // Nobody is likely to have data: sleep until the earliest predicted
        // threshold crossing. Slaves without uplink flows never cross (their
        // downlink arrivals wake the master through the arrival path), and
        // an absent slave cannot be polled before it returns, however
        // likely its data.
        let next = self
            .slaves
            .iter()
            .filter(|slave| self.has_uplink[slave.get() as usize])
            .filter_map(|slave| {
                self.predictors[slave.get() as usize]
                    .as_ref()
                    .map(|p| (slave, p))
            })
            .map(|(slave, p)| {
                p.time_of_probability(self.threshold)
                    .max(view.next_present(*slave))
            })
            .min();
        match next {
            Some(t) if t > now => PollDecision::Idle { until: t },
            Some(_) => {
                // A crossing in the past means the probability is computed
                // as above-threshold next decision round; poll the most
                // underserved *present* slave directly to make progress.
                let slave = self
                    .slaves
                    .iter()
                    .copied()
                    .filter(|s| view.is_present(*s))
                    .max_by(|a, b| {
                        self.fairness
                            .deficit(*a)
                            .total_cmp(&self.fairness.deficit(*b))
                    });
                match slave {
                    Some(slave) => PollDecision::Poll {
                        slave,
                        channel: LogicalChannel::BestEffort,
                    },
                    None => {
                        // Everybody with data prospects is off in another
                        // piconet: wait for the first one back.
                        PollDecision::Idle {
                            until: view.earliest_presence(&self.slaves),
                        }
                    }
                }
            }
            None => PollDecision::Sleep,
        }
    }

    fn on_exchange(&mut self, report: &ExchangeReport) {
        if report.channel != LogicalChannel::BestEffort {
            return;
        }
        self.register_slave(report.slave);
        let slots = report.down.slots() + report.up.slots();
        self.fairness.record(report.slave, slots);
        let predictor = self.predictors[report.slave.get() as usize]
            .as_mut()
            .expect("registered above");
        match report.up {
            SegmentOutcome::Data { segment, .. } => {
                // `is_last` approximates "queue drained" — the master cannot
                // see the uplink queue, so the end of a higher-layer packet
                // is the best available signal (cf. the flow-bit pollers of
                // the paper's reference [6]).
                predictor.observe_data(report.end, segment.is_last);
            }
            SegmentOutcome::Control { .. } => predictor.observe_empty(report.end),
            SegmentOutcome::Silent => {} // lost POLL: no information
        }
    }

    fn name(&self) -> &'static str {
        "pfp-be"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::{Direction, PacketType};
    use btgs_piconet::{FlowQueue, FlowSpec, FlowTable, SegmentPlan};
    use btgs_traffic::{AppPacket, FlowId};

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn uplink_flows(n: u8) -> Vec<FlowSpec> {
        (1..=n)
            .map(|k| {
                FlowSpec::new(
                    FlowId(k as u32),
                    s(k),
                    Direction::SlaveToMaster,
                    LogicalChannel::BestEffort,
                )
            })
            .collect()
    }

    fn data_report(slave: AmAddr, end: SimTime, is_last: bool) -> ExchangeReport {
        ExchangeReport {
            start: end - SimDuration::from_micros(2500),
            end,
            slave,
            channel: LogicalChannel::BestEffort,
            down: SegmentOutcome::Control {
                ty: PacketType::Poll,
            },
            up: SegmentOutcome::Data {
                flow: FlowId(1),
                segment: SegmentPlan {
                    ty: PacketType::Dh3,
                    bytes: 176,
                    is_last,
                    is_first: true,
                    packet_seq: 0,
                    packet_size: 176,
                    packet_arrival: SimTime::ZERO,
                },
                delivered: true,
                retransmission: false,
            },
        }
    }

    fn empty_report(slave: AmAddr, end: SimTime) -> ExchangeReport {
        ExchangeReport {
            up: SegmentOutcome::Control {
                ty: PacketType::Null,
            },
            ..data_report(slave, end, true)
        }
    }

    #[test]
    fn known_downlink_data_polls_immediately() {
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        )];
        let mut q = FlowQueue::new();
        q.push(AppPacket::new(0, FlowId(1), 100, SimTime::ZERO));
        let queues = vec![Some(q)];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut pfp = PfpBePoller::new(SimDuration::from_millis(20));
        match pfp.decide(SimTime::ZERO, &view) {
            PollDecision::Poll { slave, channel } => {
                assert_eq!(slave, s(1));
                assert_eq!(channel, LogicalChannel::BestEffort);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idles_when_all_unlikely() {
        let flows = uplink_flows(2);
        let queues = vec![None, None];
        let mut pfp = PfpBePoller::new(SimDuration::from_millis(20));
        // Teach the predictors that both slaves were just emptied.
        let t0 = SimTime::from_millis(100);
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(t0, &table, &queues);
        let _ = pfp.decide(t0, &view);
        pfp.on_exchange(&empty_report(s(1), t0));
        pfp.on_exchange(&empty_report(s(2), t0));
        match pfp.decide(t0, &view) {
            PollDecision::Idle { until } => {
                assert!(until > t0);
                // Threshold crossing with a 50/s rate estimate happens
                // within ~20 ms.
                assert!(until < t0 + SimDuration::from_millis(40));
            }
            other => panic!("expected Idle, got {other:?}"),
        }
    }

    #[test]
    fn prefers_underserved_slave() {
        let flows = uplink_flows(2);
        let queues = vec![None, None];
        let mut pfp = PfpBePoller::new(SimDuration::from_millis(20));
        let t0 = SimTime::from_millis(50);
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(t0, &table, &queues);
        let _ = pfp.decide(t0, &view);
        // Serve slave 1 a lot; slave 2 nothing.
        for k in 0..10u64 {
            pfp.on_exchange(&data_report(s(1), t0 + SimDuration::from_millis(k), false));
        }
        assert!(pfp.deficit(s(2)) > 0.0);
        // Both slaves fully available (backlogged predictor for s1; long
        // elapsed time for s2): fairness must pick s2.
        let t1 = t0 + SimDuration::from_millis(500);
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(t1, &table, &queues);
        match pfp.decide(t1, &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sleeps_with_no_be_flows() {
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        )];
        let queues = vec![None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut pfp = PfpBePoller::new(SimDuration::from_millis(20));
        assert_eq!(pfp.decide(SimTime::ZERO, &view), PollDecision::Sleep);
    }

    #[test]
    fn downlink_only_slave_never_idles_forever() {
        // A slave with only a downlink flow: when its queue is empty the
        // poller sleeps (arrivals wake the master), it must not busy-poll.
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        )];
        let queues = vec![Some(FlowQueue::new())];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut pfp = PfpBePoller::new(SimDuration::from_millis(20));
        assert_eq!(pfp.decide(SimTime::ZERO, &view), PollDecision::Sleep);
    }
}
