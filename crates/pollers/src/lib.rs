//! # btgs-pollers — baseline intra-piconet schedulers
//!
//! The polling mechanisms the paper surveys in §1/§3, reconstructed as
//! [`Poller`](btgs_piconet::Poller) implementations for the `btgs` piconet
//! simulator:
//!
//! * [`RoundRobinPoller`] — classic limited-service round robin.
//! * [`ExhaustiveRoundRobinPoller`] — stays on a slave until it runs dry.
//! * [`FepPoller`] — the Fair Exhaustive Poller of Johansson et al. (the
//!   paper's reference [7]): active/inactive lists with periodic probing.
//! * [`HolPriorityPoller`] — head-of-line priority in the spirit of Kalia
//!   et al. (reference [8]).
//! * [`PfpBePoller`] — the Predictive Fair Poller of the paper's reference
//!   [1]: per-slave availability prediction plus fair-share tracking. This
//!   is the best-effort engine the paper's Guaranteed Service poller
//!   (in `btgs-core`) delegates its spare slots to.
//!
//! The building blocks — [`AvailabilityPredictor`] and
//! [`FairShareTracker`] — are exported for reuse by other schedulers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exhaustive;
mod fairness;
mod fep;
mod hol;
mod pfp;
mod predictor;
mod round_robin;

pub use exhaustive::ExhaustiveRoundRobinPoller;
pub use fairness::FairShareTracker;
pub use fep::FepPoller;
pub use hol::HolPriorityPoller;
pub use pfp::PfpBePoller;
pub use predictor::AvailabilityPredictor;
pub use round_robin::RoundRobinPoller;
