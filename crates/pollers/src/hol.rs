//! Head-of-line priority polling.
//!
//! Reconstruction of the HOL-priority idea of Kalia, Bansal & Shorey
//! (reference [8] of the paper): schedule by the state of the master-side
//! head-of-line packets. The slave whose downlink HOL packet has waited
//! longest is served first; slaves without downlink backlog are cycled at a
//! background rate to pick up uplink traffic.

use btgs_baseband::{AmAddr, LogicalChannel};
use btgs_des::SimTime;
use btgs_piconet::{ExchangeReport, MasterView, PollDecision, Poller};

/// Head-of-line priority poller for best-effort traffic.
#[derive(Clone, Debug, Default)]
pub struct HolPriorityPoller {
    cursor: usize,
}

impl HolPriorityPoller {
    /// Creates a HOL-priority poller.
    pub fn new() -> HolPriorityPoller {
        HolPriorityPoller::default()
    }
}

impl Poller for HolPriorityPoller {
    fn decide(&mut self, now: SimTime, view: &MasterView<'_>) -> PollDecision {
        // Oldest downlink head-of-line packet wins. Indexed iteration keeps
        // the downlink lookup O(1) per flow.
        let mut best: Option<(SimTime, AmAddr)> = None;
        for (idx, f) in view.table().iter() {
            if f.channel != LogicalChannel::BestEffort {
                continue;
            }
            if !view.is_present(f.slave) {
                // An absent bridge slave cannot be addressed, however old
                // its backlog; it is reconsidered when it returns.
                continue;
            }
            if let Some(dl) = view.downlink_at(idx) {
                if let Some(arrival) = dl.head_arrival {
                    if arrival <= now && best.is_none_or(|(b, _)| arrival < b) {
                        best = Some((arrival, f.slave));
                    }
                }
            }
        }
        if let Some((_, slave)) = best {
            return PollDecision::Poll {
                slave,
                channel: LogicalChannel::BestEffort,
            };
        }
        // No downlink backlog: cycle slaves to collect uplink data. The
        // slave list is precomputed — no per-decision allocation; absent
        // bridge slaves are skipped (bounded scan).
        let slaves = view.slaves_on(LogicalChannel::BestEffort);
        if slaves.is_empty() {
            return PollDecision::Sleep;
        }
        for _ in 0..slaves.len() {
            let slave = slaves[self.cursor % slaves.len()];
            self.cursor += 1;
            if view.is_present(slave) {
                return PollDecision::Poll {
                    slave,
                    channel: LogicalChannel::BestEffort,
                };
            }
        }
        PollDecision::Idle {
            until: view.earliest_presence(slaves),
        }
    }

    fn on_exchange(&mut self, _report: &ExchangeReport) {}

    fn name(&self) -> &'static str {
        "hol-priority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::Direction;
    use btgs_piconet::{FlowQueue, FlowSpec, FlowTable};
    use btgs_traffic::{AppPacket, FlowId};

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    #[test]
    fn oldest_hol_packet_wins() {
        let flows = [
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(2),
                s(2),
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ),
        ];
        let mut q1 = FlowQueue::new();
        q1.push(AppPacket::new(0, FlowId(1), 50, SimTime::from_millis(5)));
        let mut q2 = FlowQueue::new();
        q2.push(AppPacket::new(0, FlowId(2), 50, SimTime::from_millis(2)));
        let queues = vec![Some(q1), Some(q2)];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(10), &table, &queues);
        let mut hol = HolPriorityPoller::new();
        match hol.decide(SimTime::from_millis(10), &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(2), "older HOL first"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn future_arrivals_do_not_count() {
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        )];
        let mut q = FlowQueue::new();
        q.push(AppPacket::new(0, FlowId(1), 50, SimTime::from_millis(100)));
        let queues = vec![Some(q)];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::from_millis(10), &table, &queues);
        let mut hol = HolPriorityPoller::new();
        // Not yet arrived -> falls back to cycling, which still polls S1,
        // but through the uplink-collection path.
        match hol.decide(SimTime::from_millis(10), &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cycles_when_no_downlink_data() {
        let flows = [
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(2),
                s(2),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
        ];
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let mut hol = HolPriorityPoller::new();
        let mut seen = Vec::new();
        for _ in 0..4 {
            if let PollDecision::Poll { slave, .. } = hol.decide(SimTime::ZERO, &view) {
                seen.push(slave.get());
            }
        }
        assert_eq!(seen, vec![1, 2, 1, 2]);
    }

    #[test]
    fn sleeps_with_no_flows() {
        let flows: Vec<FlowSpec> = vec![];
        let queues: Vec<Option<FlowQueue>> = vec![];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        assert_eq!(
            HolPriorityPoller::new().decide(SimTime::ZERO, &view),
            PollDecision::Sleep
        );
    }
}
