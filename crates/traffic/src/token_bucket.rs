//! Token-bucket flow specification and policer.
//!
//! The Guaranteed Service describes a flow with the token bucket TSpec of
//! RFC 2212 / RFC 2215: peak rate `p`, token rate `r`, bucket depth `b`,
//! minimum policed unit `m` and maximum transfer unit `M`. A flow conforms
//! if, over every interval of length `T`, it offers no more than
//! `min(p*T + M, b + r*T)` bytes, where packets smaller than `m` are counted
//! as `m` bytes.

use core::fmt;

/// Token-bucket traffic specification (RFC 2215 TSpec).
///
/// Invariants enforced at construction: all parameters positive,
/// `m <= M <= b` and `r <= p`.
///
/// # Examples
///
/// The paper's evaluation flows (Eq. 11–12): packets of 144–176 bytes every
/// 20 ms, so `p = r = 176 B / 20 ms = 8800 B/s`, `b = M = 176`, `m = 144`:
///
/// ```
/// use btgs_traffic::TokenBucketSpec;
///
/// let tspec = TokenBucketSpec::new(8800.0, 8800.0, 176.0, 144, 176).unwrap();
/// assert_eq!(tspec.token_rate(), 8800.0);
/// assert_eq!(tspec.max_packet(), 176);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TokenBucketSpec {
    peak_rate: f64,
    token_rate: f64,
    bucket_depth: f64,
    min_policed_unit: u32,
    max_packet: u32,
}

/// Error constructing a [`TokenBucketSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidTSpec(String);

impl fmt::Display for InvalidTSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid token bucket specification: {}", self.0)
    }
}

impl std::error::Error for InvalidTSpec {}

impl TokenBucketSpec {
    /// Creates a specification.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < r <= p`, `b >= M`, `0 < m <= M`, and all
    /// float parameters are finite.
    pub fn new(
        peak_rate: f64,
        token_rate: f64,
        bucket_depth: f64,
        min_policed_unit: u32,
        max_packet: u32,
    ) -> Result<TokenBucketSpec, InvalidTSpec> {
        if !peak_rate.is_finite() || !token_rate.is_finite() || !bucket_depth.is_finite() {
            return Err(InvalidTSpec("rates and depth must be finite".into()));
        }
        if token_rate <= 0.0 {
            return Err(InvalidTSpec(format!(
                "token rate must be positive, got {token_rate}"
            )));
        }
        if peak_rate < token_rate {
            return Err(InvalidTSpec(format!(
                "peak rate {peak_rate} must be >= token rate {token_rate}"
            )));
        }
        if min_policed_unit == 0 {
            return Err(InvalidTSpec("minimum policed unit must be positive".into()));
        }
        if min_policed_unit > max_packet {
            return Err(InvalidTSpec(format!(
                "minimum policed unit {min_policed_unit} must be <= maximum packet size {max_packet}"
            )));
        }
        if bucket_depth < max_packet as f64 {
            return Err(InvalidTSpec(format!(
                "bucket depth {bucket_depth} must be >= maximum packet size {max_packet}"
            )));
        }
        Ok(TokenBucketSpec {
            peak_rate,
            token_rate,
            bucket_depth,
            min_policed_unit,
            max_packet,
        })
    }

    /// Convenience constructor for a constant-bit-rate flow that emits one
    /// packet of at most `max_packet` bytes every `interval_secs`:
    /// `p = r = max_packet / interval`, `b = M = max_packet`.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`TokenBucketSpec::new`].
    pub fn for_cbr(
        interval_secs: f64,
        min_packet: u32,
        max_packet: u32,
    ) -> Result<TokenBucketSpec, InvalidTSpec> {
        if !(interval_secs.is_finite() && interval_secs > 0.0) {
            return Err(InvalidTSpec(format!(
                "interval must be positive and finite, got {interval_secs}"
            )));
        }
        let rate = max_packet as f64 / interval_secs;
        TokenBucketSpec::new(rate, rate, max_packet as f64, min_packet, max_packet)
    }

    /// Peak rate `p` in bytes/second.
    pub fn peak_rate(&self) -> f64 {
        self.peak_rate
    }

    /// Token rate `r` in bytes/second (the long-term average bound).
    pub fn token_rate(&self) -> f64 {
        self.token_rate
    }

    /// Bucket depth `b` in bytes (the burst bound).
    pub fn bucket_depth(&self) -> f64 {
        self.bucket_depth
    }

    /// Minimum policed unit `m` in bytes.
    pub fn min_policed_unit(&self) -> u32 {
        self.min_policed_unit
    }

    /// Maximum packet size `M` in bytes.
    pub fn max_packet(&self) -> u32 {
        self.max_packet
    }

    /// The policed size of a packet: actual size, but never less than `m`.
    pub fn policed_size(&self, bytes: u32) -> u32 {
        bytes.max(self.min_policed_unit)
    }

    /// The maximum number of bytes the flow may offer in any interval of
    /// length `t` seconds: `min(p*t + M, b + r*t)`.
    pub fn arrival_envelope(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "interval must be non-negative");
        (self.peak_rate * t + self.max_packet as f64).min(self.bucket_depth + self.token_rate * t)
    }
}

impl fmt::Display for TokenBucketSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TSpec(p={} B/s, r={} B/s, b={} B, m={} B, M={} B)",
            self.peak_rate,
            self.token_rate,
            self.bucket_depth,
            self.min_policed_unit,
            self.max_packet
        )
    }
}

/// A running token bucket: checks or enforces conformance of a packet
/// sequence against a [`TokenBucketSpec`].
///
/// The bucket starts full. [`Policer::conforms`] debits tokens for
/// conforming packets and reports violations without debiting.
///
/// # Examples
///
/// ```
/// use btgs_traffic::{Policer, TokenBucketSpec};
///
/// let spec = TokenBucketSpec::new(8800.0, 8800.0, 176.0, 144, 176).unwrap();
/// let mut policer = Policer::new(spec);
/// assert!(policer.conforms(0.000, 176));
/// assert!(!policer.conforms(0.001, 176), "back-to-back burst exceeds b");
/// assert!(policer.conforms(0.020, 176), "tokens refilled after 20 ms");
/// ```
#[derive(Clone, Debug)]
pub struct Policer {
    spec: TokenBucketSpec,
    tokens: f64,
    last_time: f64,
    violations: u64,
    checked: u64,
}

impl Policer {
    /// Creates a policer with a full bucket at time zero.
    pub fn new(spec: TokenBucketSpec) -> Policer {
        Policer {
            tokens: spec.bucket_depth,
            spec,
            last_time: 0.0,
            violations: 0,
            checked: 0,
        }
    }

    /// The specification being enforced.
    pub fn spec(&self) -> &TokenBucketSpec {
        &self.spec
    }

    /// Checks a packet of `bytes` arriving at absolute time `t` seconds.
    /// Conforming packets debit the bucket; violations are counted and the
    /// bucket is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously checked arrival.
    pub fn conforms(&mut self, t: f64, bytes: u32) -> bool {
        assert!(
            t >= self.last_time,
            "arrivals must be checked in time order ({t} < {})",
            self.last_time
        );
        let dt = t - self.last_time;
        self.tokens = (self.tokens + dt * self.spec.token_rate).min(self.spec.bucket_depth);
        self.last_time = t;
        self.checked += 1;
        let need = self.spec.policed_size(bytes) as f64;
        if bytes > self.spec.max_packet {
            self.violations += 1;
            return false;
        }
        if need <= self.tokens + 1e-9 {
            self.tokens -= need;
            true
        } else {
            self.violations += 1;
            false
        }
    }

    /// Number of packets checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Number of non-conforming packets observed so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_spec() -> TokenBucketSpec {
        TokenBucketSpec::new(8800.0, 8800.0, 176.0, 144, 176).unwrap()
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(
            TokenBucketSpec::new(1.0, 2.0, 10.0, 1, 10).is_err(),
            "p < r"
        );
        assert!(
            TokenBucketSpec::new(2.0, 0.0, 10.0, 1, 10).is_err(),
            "r = 0"
        );
        assert!(TokenBucketSpec::new(2.0, 1.0, 5.0, 1, 10).is_err(), "b < M");
        assert!(
            TokenBucketSpec::new(2.0, 1.0, 10.0, 0, 10).is_err(),
            "m = 0"
        );
        assert!(
            TokenBucketSpec::new(2.0, 1.0, 10.0, 11, 10).is_err(),
            "m > M"
        );
        assert!(TokenBucketSpec::new(f64::NAN, 1.0, 10.0, 1, 10).is_err());
    }

    #[test]
    fn cbr_constructor_matches_paper_eq_11_12() {
        let spec = TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap();
        assert_eq!(spec.peak_rate(), 8800.0);
        assert_eq!(spec.token_rate(), 8800.0);
        assert_eq!(spec.bucket_depth(), 176.0);
        assert_eq!(spec.min_policed_unit(), 144);
        assert_eq!(spec.max_packet(), 176);
    }

    #[test]
    fn policed_size_floors_at_m() {
        let spec = paper_spec();
        assert_eq!(spec.policed_size(100), 144);
        assert_eq!(spec.policed_size(144), 144);
        assert_eq!(spec.policed_size(170), 170);
    }

    #[test]
    fn envelope_is_min_of_peak_and_bucket_lines() {
        let spec = TokenBucketSpec::new(1000.0, 100.0, 500.0, 10, 200).unwrap();
        // At t=0 the peak line starts at M=200, the bucket line at b=500.
        assert_eq!(spec.arrival_envelope(0.0), 200.0);
        // Early on the peak line governs; later the token line takes over.
        assert_eq!(spec.arrival_envelope(0.1), 300.0); // 1000*0.1+200 < 500+10
        assert_eq!(spec.arrival_envelope(10.0), 1500.0); // 500+100*10 < 10200
    }

    #[test]
    fn cbr_stream_conforms_exactly() {
        let mut policer = Policer::new(paper_spec());
        for k in 0..1000u32 {
            assert!(policer.conforms(k as f64 * 0.020, 176));
        }
        assert_eq!(policer.violations(), 0);
        assert_eq!(policer.checked(), 1000);
    }

    #[test]
    fn uniform_sizes_conform() {
        // Sizes in [144,176] every 20 ms conform to the paper's TSpec.
        let mut policer = Policer::new(paper_spec());
        let sizes = [144u32, 176, 160, 150, 176, 176, 144, 172];
        for (k, &s) in sizes.iter().enumerate() {
            assert!(policer.conforms(k as f64 * 0.020, s), "packet {k} of {s} B");
        }
        assert_eq!(policer.violations(), 0);
    }

    #[test]
    fn oversized_packet_is_flagged_but_not_debited() {
        let mut policer = Policer::new(paper_spec());
        assert!(!policer.conforms(0.0, 177), "exceeds M");
        // Bucket untouched; a legal packet still passes.
        assert!(policer.conforms(0.0, 176));
        assert_eq!(policer.violations(), 1);
    }

    #[test]
    fn burst_beyond_bucket_is_flagged() {
        let mut policer = Policer::new(paper_spec());
        assert!(policer.conforms(0.0, 176));
        assert!(!policer.conforms(0.0, 176), "second same-instant packet");
        // After 10 ms only 88 tokens returned: a 144-byte (policed) packet
        // still does not fit.
        assert!(!policer.conforms(0.010, 144));
        // After a full 20 ms from the start there are 176 tokens again...
        assert!(policer.conforms(0.020, 176));
        assert_eq!(policer.violations(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_arrivals_panic() {
        let mut policer = Policer::new(paper_spec());
        policer.conforms(1.0, 144);
        policer.conforms(0.5, 144);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btgs_des::DetRng;

    /// Any packet sequence accepted by the policer must stay within the
    /// arrival envelope measured from time zero.
    #[test]
    fn accepted_traffic_obeys_envelope() {
        let mut rng = DetRng::seed_from_u64(0x70B1);
        for _ in 0..256 {
            let n = rng.range_inclusive(1, 99) as usize;
            let spec = TokenBucketSpec::new(12_000.0, 8_800.0, 600.0, 144, 176).unwrap();
            let mut policer = Policer::new(spec);
            let mut t = 0.0;
            let mut accepted_bytes = 0.0;
            for _ in 0..n {
                let dt_us = rng.below(100_000);
                t += dt_us as f64 * 1e-6;
                let size = rng.range_inclusive(1, 299) as u32;
                if policer.conforms(t, size) {
                    accepted_bytes += spec.policed_size(size) as f64;
                    // Envelope measured from t=0 with the initial bucket full.
                    let envelope = spec.bucket_depth() + spec.token_rate() * t + 1e-6;
                    assert!(
                        accepted_bytes <= envelope,
                        "accepted {accepted_bytes} B by t={t}, envelope {envelope}"
                    );
                }
            }
        }
    }

    /// A CBR stream at exactly the token rate always conforms,
    /// regardless of packet size within [m, M].
    #[test]
    fn cbr_at_token_rate_conforms() {
        let mut rng = DetRng::seed_from_u64(0x70B2);
        for _ in 0..64 {
            let n = rng.range_inclusive(1, 199) as usize;
            let spec = TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap();
            let mut policer = Policer::new(spec);
            for k in 0..n {
                let s = rng.range_inclusive(144, 176) as u32;
                assert!(policer.conforms(k as f64 * 0.020, s));
            }
        }
    }
}
