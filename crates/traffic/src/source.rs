//! Traffic sources.
//!
//! A [`Source`] is a deterministic generator of `(arrival time, size)`
//! pairs. Sources are pull-based: the simulator asks for the next packet and
//! schedules its arrival; this keeps sources independent of the event loop
//! and trivially testable.

use crate::packet::{AppPacket, FlowId};
use btgs_des::{DetRng, SimDuration, SimTime};

/// A generator of higher-layer packets for one flow.
pub trait Source: Send {
    /// Returns the next packet, or `None` if the source is exhausted.
    ///
    /// Arrival times must be non-decreasing across calls.
    fn next_packet(&mut self) -> Option<AppPacket>;

    /// The flow this source feeds.
    fn flow(&self) -> FlowId;
}

/// Packet-count and time-horizon limits shared by every source.
///
/// Infinite sources (`PoissonSource`, `GreedySource`, …) otherwise never
/// return `None`; a misconfigured finite-horizon sweep would keep drawing
/// arrivals past the horizon forever. Each source embeds a `SourceLimits`
/// and consults [`SourceLimits::allows`] before emitting a packet, so the
/// two cut-offs behave identically across all source kinds.
#[derive(Clone, Copy, Debug, Default)]
struct SourceLimits {
    /// Total number of packets the source may emit.
    limit: Option<u64>,
    /// Latest admissible arrival instant (inclusive).
    horizon: Option<SimTime>,
}

impl SourceLimits {
    /// `true` if a packet numbered `seq` arriving at `arrival` may still be
    /// emitted.
    #[inline]
    fn allows(&self, seq: u64, arrival: SimTime) -> bool {
        if let Some(limit) = self.limit {
            if seq >= limit {
                return false;
            }
        }
        if let Some(horizon) = self.horizon {
            if arrival > horizon {
                return false;
            }
        }
        true
    }
}

/// Constant-bit-rate source: one packet every `interval`, sizes drawn
/// uniformly from `[min_size, max_size]`.
///
/// With `min_size == max_size` this is the classic fixed-size CBR source.
/// The paper's GS sources are `CbrSource` with a 20 ms interval and sizes
/// uniform in `[144, 176]`; its BE sources use fixed 176-byte packets.
///
/// # Examples
///
/// ```
/// use btgs_traffic::{CbrSource, FlowId, Source};
/// use btgs_des::{DetRng, SimDuration, SimTime};
///
/// let mut src = CbrSource::new(
///     FlowId(1),
///     SimDuration::from_millis(20),
///     144,
///     176,
///     DetRng::seed_from_u64(1),
/// );
/// let p0 = src.next_packet().unwrap();
/// let p1 = src.next_packet().unwrap();
/// assert_eq!(p0.arrival, SimTime::ZERO);
/// assert_eq!(p1.arrival, SimTime::from_millis(20));
/// assert!((144..=176).contains(&p0.size));
/// ```
#[derive(Clone, Debug)]
pub struct CbrSource {
    flow: FlowId,
    interval: SimDuration,
    min_size: u32,
    max_size: u32,
    rng: DetRng,
    next_arrival: SimTime,
    seq: u64,
    start: SimTime,
    limits: SourceLimits,
}

impl CbrSource {
    /// Creates a CBR source starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero, `min_size` is zero, or
    /// `min_size > max_size`.
    pub fn new(
        flow: FlowId,
        interval: SimDuration,
        min_size: u32,
        max_size: u32,
        rng: DetRng,
    ) -> CbrSource {
        assert!(!interval.is_zero(), "interval must be positive");
        assert!(min_size > 0, "packet sizes must be positive");
        assert!(min_size <= max_size, "min_size must be <= max_size");
        CbrSource {
            flow,
            interval,
            min_size,
            max_size,
            rng,
            next_arrival: SimTime::ZERO,
            seq: 0,
            start: SimTime::ZERO,
            limits: SourceLimits::default(),
        }
    }

    /// Delays the first packet until `start` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if packets were already drawn: rewinding `next_arrival` after
    /// the fact would violate the non-decreasing-arrival contract of
    /// [`Source::next_packet`].
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> CbrSource {
        assert_eq!(
            self.seq, 0,
            "starting_at must be applied before the first packet is drawn"
        );
        self.start = start;
        self.next_arrival = start;
        self
    }

    /// Limits the source to `n` packets in total (builder style).
    #[must_use]
    pub fn with_packet_limit(mut self, n: u64) -> CbrSource {
        self.limits.limit = Some(n);
        self
    }

    /// Stops the source at `horizon`: packets that would arrive after it are
    /// never generated (builder style).
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> CbrSource {
        self.limits.horizon = Some(horizon);
        self
    }

    /// The generation interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The mean data rate in bytes per second.
    pub fn mean_rate(&self) -> f64 {
        let mean_size = (self.min_size as f64 + self.max_size as f64) / 2.0;
        mean_size / self.interval.as_secs_f64()
    }
}

impl Source for CbrSource {
    fn next_packet(&mut self) -> Option<AppPacket> {
        if !self.limits.allows(self.seq, self.next_arrival) {
            return None;
        }
        let size = if self.min_size == self.max_size {
            self.min_size
        } else {
            self.rng
                .range_inclusive(self.min_size as u64, self.max_size as u64) as u32
        };
        let pkt = AppPacket::new(self.seq, self.flow, size, self.next_arrival);
        self.seq += 1;
        self.next_arrival += self.interval;
        pkt.into()
    }

    fn flow(&self) -> FlowId {
        self.flow
    }
}

/// Poisson source: exponentially distributed inter-arrival times with the
/// given mean, fixed or uniform packet sizes.
#[derive(Clone, Debug)]
pub struct PoissonSource {
    flow: FlowId,
    mean_interval: f64,
    min_size: u32,
    max_size: u32,
    rng: DetRng,
    next_arrival: SimTime,
    seq: u64,
    limits: SourceLimits,
}

impl PoissonSource {
    /// Creates a Poisson source whose first arrival is one random interval
    /// after time zero.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interval` is not positive/finite, `min_size` is zero
    /// or `min_size > max_size`.
    pub fn new(
        flow: FlowId,
        mean_interval: SimDuration,
        min_size: u32,
        max_size: u32,
        mut rng: DetRng,
    ) -> PoissonSource {
        assert!(!mean_interval.is_zero(), "mean interval must be positive");
        assert!(min_size > 0 && min_size <= max_size, "invalid size range");
        let mean = mean_interval.as_secs_f64();
        let first = SimTime::from_secs_f64(rng.exponential(mean));
        PoissonSource {
            flow,
            mean_interval: mean,
            min_size,
            max_size,
            rng,
            next_arrival: first,
            seq: 0,
            limits: SourceLimits::default(),
        }
    }

    /// Delays the process start until `start`: the first arrival lands one
    /// random interval after `start` (builder style). Needed for staggered
    /// per-piconet start times in scatternet scenarios.
    ///
    /// # Panics
    ///
    /// Panics if packets were already drawn (the non-decreasing-arrival
    /// contract would be violated).
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> PoissonSource {
        assert_eq!(
            self.seq, 0,
            "starting_at must be applied before the first packet is drawn"
        );
        // The first interval was already drawn relative to time zero; shift
        // it so the whole process translates by `start`.
        self.next_arrival = start + (self.next_arrival - SimTime::ZERO);
        self
    }

    /// Limits the source to `n` packets in total (builder style).
    #[must_use]
    pub fn with_packet_limit(mut self, n: u64) -> PoissonSource {
        self.limits.limit = Some(n);
        self
    }

    /// Stops the source at `horizon`: packets that would arrive after it are
    /// never generated (builder style).
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> PoissonSource {
        self.limits.horizon = Some(horizon);
        self
    }
}

impl Source for PoissonSource {
    fn next_packet(&mut self) -> Option<AppPacket> {
        if !self.limits.allows(self.seq, self.next_arrival) {
            return None;
        }
        let size = if self.min_size == self.max_size {
            self.min_size
        } else {
            self.rng
                .range_inclusive(self.min_size as u64, self.max_size as u64) as u32
        };
        let pkt = AppPacket::new(self.seq, self.flow, size, self.next_arrival);
        self.seq += 1;
        self.next_arrival += SimDuration::from_secs_f64(self.rng.exponential(self.mean_interval));
        Some(pkt)
    }

    fn flow(&self) -> FlowId {
        self.flow
    }
}

/// On-off (bursty) source: alternates exponentially distributed ON periods,
/// during which it behaves like a CBR source, with exponentially distributed
/// silent OFF periods.
#[derive(Clone, Debug)]
pub struct OnOffSource {
    flow: FlowId,
    interval: SimDuration,
    size: u32,
    mean_on: f64,
    mean_off: f64,
    rng: DetRng,
    seq: u64,
    next_arrival: SimTime,
    on_until: SimTime,
    limits: SourceLimits,
}

impl OnOffSource {
    /// Creates an on-off source that starts a fresh ON period at time zero.
    ///
    /// # Panics
    ///
    /// Panics if any duration is non-positive or `size` is zero.
    pub fn new(
        flow: FlowId,
        interval: SimDuration,
        size: u32,
        mean_on: SimDuration,
        mean_off: SimDuration,
        mut rng: DetRng,
    ) -> OnOffSource {
        assert!(!interval.is_zero() && size > 0, "invalid interval or size");
        assert!(
            !mean_on.is_zero() && !mean_off.is_zero(),
            "ON/OFF periods must be positive"
        );
        let mean_on = mean_on.as_secs_f64();
        let on_until = SimTime::from_secs_f64(rng.exponential(mean_on));
        OnOffSource {
            flow,
            interval,
            size,
            mean_on,
            mean_off: mean_off.as_secs_f64(),
            rng,
            seq: 0,
            next_arrival: SimTime::ZERO,
            on_until,
            limits: SourceLimits::default(),
        }
    }

    /// Delays the process start until `start`: the first ON period begins at
    /// `start` (builder style). Needed for staggered per-piconet start times
    /// in scatternet scenarios.
    ///
    /// # Panics
    ///
    /// Panics if packets were already drawn (the non-decreasing-arrival
    /// contract would be violated).
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> OnOffSource {
        assert_eq!(
            self.seq, 0,
            "starting_at must be applied before the first packet is drawn"
        );
        // Translate the whole ON/OFF process by `start`.
        self.next_arrival = start + (self.next_arrival - SimTime::ZERO);
        self.on_until = start + (self.on_until - SimTime::ZERO);
        self
    }

    /// Limits the source to `n` packets in total (builder style).
    #[must_use]
    pub fn with_packet_limit(mut self, n: u64) -> OnOffSource {
        self.limits.limit = Some(n);
        self
    }

    /// Stops the source at `horizon`: packets that would arrive after it are
    /// never generated (builder style).
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> OnOffSource {
        self.limits.horizon = Some(horizon);
        self
    }
}

impl Source for OnOffSource {
    fn next_packet(&mut self) -> Option<AppPacket> {
        // Skip over OFF periods until the pending arrival lands in an ON one.
        while self.next_arrival > self.on_until {
            let off = self.rng.exponential(self.mean_off);
            let on = self.rng.exponential(self.mean_on);
            let resume = self.on_until + SimDuration::from_secs_f64(off);
            self.next_arrival = resume;
            self.on_until = resume + SimDuration::from_secs_f64(on);
        }
        if !self.limits.allows(self.seq, self.next_arrival) {
            return None;
        }
        let pkt = AppPacket::new(self.seq, self.flow, self.size, self.next_arrival);
        self.seq += 1;
        self.next_arrival += self.interval;
        Some(pkt)
    }

    fn flow(&self) -> FlowId {
        self.flow
    }
}

/// Replays a fixed list of `(arrival, size)` pairs. Useful for regression
/// tests and trace-driven experiments.
#[derive(Clone, Debug)]
pub struct TraceSource {
    flow: FlowId,
    items: std::vec::IntoIter<(SimTime, u32)>,
    seq: u64,
    last: SimTime,
}

impl TraceSource {
    /// Creates a trace source.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are not in non-decreasing time order or any size
    /// is zero.
    pub fn new(flow: FlowId, items: Vec<(SimTime, u32)>) -> TraceSource {
        let mut last = SimTime::ZERO;
        for (t, size) in &items {
            assert!(*t >= last, "trace arrivals must be time-ordered");
            assert!(*size > 0, "trace packet sizes must be positive");
            last = *t;
        }
        TraceSource {
            flow,
            items: items.into_iter(),
            seq: 0,
            last: SimTime::ZERO,
        }
    }
}

impl Source for TraceSource {
    fn next_packet(&mut self) -> Option<AppPacket> {
        let (t, size) = self.items.next()?;
        debug_assert!(t >= self.last);
        self.last = t;
        let pkt = AppPacket::new(self.seq, self.flow, size, t);
        self.seq += 1;
        Some(pkt)
    }

    fn flow(&self) -> FlowId {
        self.flow
    }
}

/// A saturating source: a packet of fixed size is always available, arriving
/// back-to-back with the given spacing (default: one per microsecond, i.e.
/// effectively always backlogged). Used to measure capacity.
#[derive(Clone, Debug)]
pub struct GreedySource {
    flow: FlowId,
    size: u32,
    spacing: SimDuration,
    next_arrival: SimTime,
    seq: u64,
    limits: SourceLimits,
}

impl GreedySource {
    /// Creates a greedy source of `size`-byte packets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(flow: FlowId, size: u32) -> GreedySource {
        assert!(size > 0, "packet size must be positive");
        GreedySource {
            flow,
            size,
            spacing: SimDuration::from_micros(1),
            next_arrival: SimTime::ZERO,
            seq: 0,
            limits: SourceLimits::default(),
        }
    }

    /// Limits the source to `n` packets in total (builder style).
    #[must_use]
    pub fn with_packet_limit(mut self, n: u64) -> GreedySource {
        self.limits.limit = Some(n);
        self
    }

    /// Stops the source at `horizon`: packets that would arrive after it are
    /// never generated (builder style).
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> GreedySource {
        self.limits.horizon = Some(horizon);
        self
    }
}

impl Source for GreedySource {
    fn next_packet(&mut self) -> Option<AppPacket> {
        if !self.limits.allows(self.seq, self.next_arrival) {
            return None;
        }
        let pkt = AppPacket::new(self.seq, self.flow, self.size, self.next_arrival);
        self.seq += 1;
        self.next_arrival += self.spacing;
        Some(pkt)
    }

    fn flow(&self) -> FlowId {
        self.flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(src: &mut dyn Source, n: usize) -> Vec<AppPacket> {
        (0..n).map_while(|_| src.next_packet()).collect()
    }

    #[test]
    fn cbr_fixed_interval_and_sizes_in_range() {
        let mut src = CbrSource::new(
            FlowId(1),
            SimDuration::from_millis(20),
            144,
            176,
            DetRng::seed_from_u64(1),
        );
        let pkts = drain(&mut src, 100);
        assert_eq!(pkts.len(), 100);
        for (k, p) in pkts.iter().enumerate() {
            assert_eq!(p.arrival, SimTime::from_millis(20 * k as u64));
            assert!((144..=176).contains(&p.size));
            assert_eq!(p.seq, k as u64);
            assert_eq!(p.flow, FlowId(1));
        }
    }

    #[test]
    fn cbr_mean_rate_matches_paper() {
        let src = CbrSource::new(
            FlowId(1),
            SimDuration::from_millis(20),
            144,
            176,
            DetRng::seed_from_u64(1),
        );
        // (144+176)/2 / 0.020 = 8000 B/s = 64 kbps.
        assert_eq!(src.mean_rate(), 8000.0);
    }

    #[test]
    fn cbr_start_offset_and_limit() {
        let mut src = CbrSource::new(
            FlowId(2),
            SimDuration::from_millis(10),
            176,
            176,
            DetRng::seed_from_u64(2),
        )
        .starting_at(SimTime::from_millis(5))
        .with_packet_limit(3);
        let pkts = drain(&mut src, 10);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].arrival, SimTime::from_millis(5));
        assert_eq!(pkts[2].arrival, SimTime::from_millis(25));
        assert!(src.next_packet().is_none());
    }

    #[test]
    fn cbr_is_deterministic_per_seed() {
        let mk = || {
            CbrSource::new(
                FlowId(1),
                SimDuration::from_millis(20),
                144,
                176,
                DetRng::seed_from_u64(77),
            )
        };
        let a: Vec<u32> = drain(&mut mk(), 50).iter().map(|p| p.size).collect();
        let b: Vec<u32> = drain(&mut mk(), 50).iter().map(|p| p.size).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_interarrivals_have_right_mean() {
        let mut src = PoissonSource::new(
            FlowId(3),
            SimDuration::from_millis(20),
            176,
            176,
            DetRng::seed_from_u64(3),
        );
        let pkts = drain(&mut src, 20_000);
        let total = pkts.last().unwrap().arrival.as_secs_f64();
        let mean = total / (pkts.len() - 1) as f64;
        assert!((mean - 0.020).abs() < 0.001, "observed mean {mean}");
        // Time-ordered.
        for w in pkts.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
    }

    #[test]
    fn onoff_has_silent_gaps() {
        let mut src = OnOffSource::new(
            FlowId(4),
            SimDuration::from_millis(10),
            100,
            SimDuration::from_millis(200),
            SimDuration::from_millis(400),
            DetRng::seed_from_u64(4),
        );
        let pkts = drain(&mut src, 5000);
        let mut gaps = 0;
        for w in pkts.windows(2) {
            assert!(w[1].arrival >= w[0].arrival, "time order");
            if (w[1].arrival - w[0].arrival) > SimDuration::from_millis(50) {
                gaps += 1;
            }
        }
        assert!(gaps > 10, "expected OFF gaps, saw {gaps}");
    }

    #[test]
    fn onoff_rate_is_reduced_by_duty_cycle() {
        let mut src = OnOffSource::new(
            FlowId(4),
            SimDuration::from_millis(10),
            100,
            SimDuration::from_millis(300),
            SimDuration::from_millis(300),
            DetRng::seed_from_u64(5),
        );
        let pkts = drain(&mut src, 10_000);
        let span = pkts.last().unwrap().arrival.as_secs_f64();
        let rate = pkts.len() as f64 / span;
        // Full-on rate would be 100/s; 50% duty cycle should halve it.
        assert!(rate < 70.0 && rate > 30.0, "observed {rate}/s");
    }

    #[test]
    fn trace_replays_exactly() {
        let items = vec![
            (SimTime::from_millis(1), 10),
            (SimTime::from_millis(1), 20),
            (SimTime::from_millis(7), 30),
        ];
        let mut src = TraceSource::new(FlowId(5), items.clone());
        let pkts = drain(&mut src, 10);
        assert_eq!(pkts.len(), 3);
        for (p, (t, s)) in pkts.iter().zip(items) {
            assert_eq!(p.arrival, t);
            assert_eq!(p.size, s);
        }
        assert!(src.next_packet().is_none());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn trace_rejects_unordered() {
        let _ = TraceSource::new(
            FlowId(5),
            vec![(SimTime::from_millis(2), 1), (SimTime::from_millis(1), 1)],
        );
    }

    #[test]
    #[should_panic(expected = "before the first packet")]
    fn cbr_starting_at_after_draw_panics() {
        let mut src = CbrSource::new(
            FlowId(1),
            SimDuration::from_millis(20),
            176,
            176,
            DetRng::seed_from_u64(1),
        );
        let _ = src.next_packet();
        // Rewinding `next_arrival` after packets were drawn would break the
        // non-decreasing-arrival contract.
        let _ = src.starting_at(SimTime::from_millis(5));
    }

    #[test]
    fn poisson_start_offset_limit_and_horizon() {
        let mk = || {
            PoissonSource::new(
                FlowId(3),
                SimDuration::from_millis(20),
                176,
                176,
                DetRng::seed_from_u64(9),
            )
        };
        let base: Vec<SimTime> = drain(&mut mk(), 50).iter().map(|p| p.arrival).collect();
        let start = SimTime::from_millis(500);
        let shifted: Vec<SimTime> = drain(&mut mk().starting_at(start), 50)
            .iter()
            .map(|p| p.arrival)
            .collect();
        // The whole process translates by the start offset.
        for (b, s) in base.iter().zip(&shifted) {
            assert_eq!(*s, start + (*b - SimTime::ZERO));
        }
        assert!(shifted[0] >= start);

        let mut limited = mk().with_packet_limit(7);
        assert_eq!(drain(&mut limited, 100).len(), 7);
        assert!(limited.next_packet().is_none());

        let horizon = SimTime::from_millis(100);
        let mut bounded = mk().with_horizon(horizon);
        let pkts = drain(&mut bounded, 100_000);
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.arrival <= horizon));
        assert!(bounded.next_packet().is_none(), "horizon is permanent");
    }

    #[test]
    fn onoff_start_offset_limit_and_horizon() {
        let mk = || {
            OnOffSource::new(
                FlowId(4),
                SimDuration::from_millis(10),
                100,
                SimDuration::from_millis(200),
                SimDuration::from_millis(400),
                DetRng::seed_from_u64(4),
            )
        };
        let base: Vec<SimTime> = drain(&mut mk(), 50).iter().map(|p| p.arrival).collect();
        let start = SimTime::from_secs(3);
        let shifted: Vec<SimTime> = drain(&mut mk().starting_at(start), 50)
            .iter()
            .map(|p| p.arrival)
            .collect();
        for (b, s) in base.iter().zip(&shifted) {
            assert_eq!(*s, start + (*b - SimTime::ZERO));
        }

        let mut limited = mk().with_packet_limit(5);
        assert_eq!(drain(&mut limited, 100).len(), 5);

        let horizon = SimTime::from_secs(1);
        let mut bounded = mk().with_horizon(horizon);
        let pkts = drain(&mut bounded, 100_000);
        assert!(pkts.iter().all(|p| p.arrival <= horizon));
        assert!(bounded.next_packet().is_none());
    }

    #[test]
    fn greedy_limit_and_horizon_make_it_finite() {
        let mut limited = GreedySource::new(FlowId(6), 176).with_packet_limit(10);
        assert_eq!(drain(&mut limited, 1000).len(), 10);

        let mut bounded = GreedySource::new(FlowId(6), 176).with_horizon(SimTime::from_micros(5));
        // Spacing is 1 µs: arrivals at 0..=5 µs pass, the 7th is beyond.
        assert_eq!(drain(&mut bounded, 1000).len(), 6);
        assert!(bounded.next_packet().is_none());
    }

    #[test]
    fn cbr_horizon_is_inclusive() {
        let mut src = CbrSource::new(
            FlowId(1),
            SimDuration::from_millis(10),
            176,
            176,
            DetRng::seed_from_u64(1),
        )
        .with_horizon(SimTime::from_millis(30));
        // Arrivals at 0, 10, 20, 30 ms.
        assert_eq!(drain(&mut src, 100).len(), 4);
    }

    #[test]
    fn greedy_is_always_backlogged() {
        let mut src = GreedySource::new(FlowId(6), 176);
        let pkts = drain(&mut src, 1000);
        assert_eq!(pkts.len(), 1000);
        assert!(pkts.last().unwrap().arrival < SimTime::from_millis(1));
    }
}
