//! Higher-layer packets offered to the piconet.

use btgs_des::SimTime;
use core::fmt;

/// Identifier of a traffic flow within a scenario.
///
/// Flow ids double as the *initial* Guaranteed Service priority value in the
/// paper's admission control ("consider the flow number being the priority
/// value of a flow"), but the admission routine may reassign priorities.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlowId({})", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// A higher-layer (e.g. L2CAP) packet offered to the MAC layer.
///
/// The MAC segments it into baseband packets; the packet's delay is measured
/// from [`arrival`](AppPacket::arrival) until its **last** segment has been
/// received.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppPacket {
    /// Sequence number within the flow (0-based).
    pub seq: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Payload size in bytes (at least 1).
    pub size: u32,
    /// Instant the packet became available for transmission.
    pub arrival: SimTime,
}

impl AppPacket {
    /// Creates a packet.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero: zero-length higher-layer packets are not
    /// meaningful to a MAC scheduler.
    pub fn new(seq: u64, flow: FlowId, size: u32, arrival: SimTime) -> AppPacket {
        assert!(size > 0, "packet size must be positive");
        AppPacket {
            seq,
            flow,
            size,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let p = AppPacket::new(3, FlowId(1), 160, SimTime::from_millis(60));
        assert_eq!(p.seq, 3);
        assert_eq!(p.flow, FlowId(1));
        assert_eq!(p.size, 160);
        assert_eq!(p.arrival, SimTime::from_millis(60));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = AppPacket::new(0, FlowId(0), 0, SimTime::ZERO);
    }

    #[test]
    fn flow_id_formatting() {
        assert_eq!(FlowId(7).to_string(), "flow7");
        assert_eq!(format!("{:?}", FlowId(7)), "FlowId(7)");
    }
}
