//! # btgs-traffic — traffic specifications and sources
//!
//! Workload substrate for the `btgs` reproduction of *"Providing Delay
//! Guarantees in Bluetooth"* (Ait Yaiz & Heijenk, ICDCSW'03):
//!
//! * [`TokenBucketSpec`] — the RFC 2215 TSpec `(p, r, b, m, M)` used by the
//!   Guaranteed Service, plus a running [`Policer`] that checks conformance.
//! * [`AppPacket`] / [`FlowId`] — higher-layer packets offered to the MAC.
//! * [`Source`] implementations: [`CbrSource`] (the paper's GS and BE
//!   sources), [`PoissonSource`], [`OnOffSource`], [`TraceSource`] and
//!   [`GreedySource`].
//!
//! # Examples
//!
//! The paper's GS flows: one packet every 20 ms, uniform in `[144, 176]`
//! bytes — a 64 kbps mean rate whose TSpec is `p = r = 8800 B/s`,
//! `b = M = 176 B`, `m = 144 B`:
//!
//! ```
//! use btgs_traffic::{CbrSource, FlowId, Policer, Source, TokenBucketSpec};
//! use btgs_des::{DetRng, SimDuration};
//!
//! let spec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
//! let mut source = CbrSource::new(
//!     FlowId(1),
//!     SimDuration::from_millis(20),
//!     144,
//!     176,
//!     DetRng::seed_from_u64(1),
//! );
//! let mut policer = Policer::new(spec);
//! for _ in 0..500 {
//!     let pkt = source.next_packet().unwrap();
//!     assert!(policer.conforms(pkt.arrival.as_secs_f64(), pkt.size));
//! }
//! # Ok::<(), btgs_traffic::InvalidTSpec>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod packet;
mod source;
mod token_bucket;

pub use packet::{AppPacket, FlowId};
pub use source::{CbrSource, GreedySource, OnOffSource, PoissonSource, Source, TraceSource};
pub use token_bucket::{InvalidTSpec, Policer, TokenBucketSpec};
