//! Parallel experiment execution: fan a deterministic scenario grid across
//! worker threads.
//!
//! The paper's evaluation — and every ablation around it — is a sweep:
//! poller × seed × delay requirement, each cell an independent,
//! deterministic simulation. [`ExperimentRunner`] executes such grids on a
//! pool of `std::thread` workers. Because every cell derives all of its
//! randomness from its own seed (see [`PaperScenario::sources`]), the
//! result of a grid is **bit-identical** whatever the thread count — the
//! runner only changes wall-clock time, never output.
//!
//! ```
//! use btgs_core::{BeSourceMix, ExperimentRunner, PollerKind, ScenarioGrid};
//! use btgs_des::{SimDuration, SimTime};
//!
//! let grid = ScenarioGrid {
//!     pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
//!     piconets: vec![1],
//!     seeds: vec![1, 2],
//!     topologies: vec![btgs_core::Topology::Chain],
//!     delay_requirements: vec![SimDuration::from_millis(40)],
//!     chain_deadlines: vec![None],
//!     bidirectional: false,
//!     bridge_cycle: SimDuration::from_millis(20),
//!     horizon: SimTime::from_secs(3),
//!     warmup: SimDuration::from_millis(500),
//!     include_be: false,
//!     be_load_scale: vec![1.0],
//!     be_source_mix: BeSourceMix::Cbr,
//!     telemetry: false,
//! };
//! let report = ExperimentRunner::new().run_grid(&grid);
//! assert_eq!(report.cells.len(), 4);
//! ```

use crate::plan::Improvements;
use crate::scatternet_scenario::{ScatternetScenario, ScatternetScenarioParams, Topology};
use crate::scenario::{BeSourceMix, PaperScenario, PaperScenarioParams, PollerKind};
use crate::sink::{CellSink, CollectSink};
use btgs_des::{SimDuration, SimTime};
use btgs_metrics::{fmt_f64, DelayStats, Table};
use btgs_piconet::{ObsConfig, RunReport, ScatternetReport, TelemetryReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

impl PollerKind {
    /// A short stable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            PollerKind::PfpGs => "pfp-gs".into(),
            PollerKind::FixedGs => "gs-fixed".into(),
            PollerKind::Custom(imp) => {
                let mut s = String::from("gs-custom(");
                if imp.packet_aware {
                    s.push('a');
                }
                if imp.replan_from_actual {
                    s.push('b');
                }
                if imp.skip_empty_downlink {
                    s.push('c');
                }
                s.push(')');
                s
            }
        }
    }

    /// The inverse of [`PollerKind::label`] — the wire format ships
    /// pollers as their labels, so the mapping must stay bijective.
    pub fn from_label(label: &str) -> Option<PollerKind> {
        match label {
            "pfp-gs" => Some(PollerKind::PfpGs),
            "gs-fixed" => Some(PollerKind::FixedGs),
            _ => {
                let subset = label.strip_prefix("gs-custom(")?.strip_suffix(')')?;
                let mut imp = Improvements::NONE;
                for c in subset.chars() {
                    match c {
                        'a' if !imp.packet_aware => imp.packet_aware = true,
                        'b' if !imp.replan_from_actual => imp.replan_from_actual = true,
                        'c' if !imp.skip_empty_downlink => imp.skip_empty_downlink = true,
                        _ => return None,
                    }
                }
                Some(PollerKind::Custom(imp))
            }
        }
    }
}

/// A poller × piconet-count × seed × delay-requirement grid over the
/// paper's Fig. 4 scenario and its scatternet extension.
#[derive(Clone, Debug)]
pub struct ScenarioGrid {
    /// The pollers to compare.
    pub pollers: Vec<PollerKind>,
    /// The piconet counts to sweep: `1` runs the single-piconet Fig. 4
    /// scenario (bit-identical to the pre-scatternet runner), `≥ 2` runs
    /// the chained [`ScatternetScenario`] with one bridged GS flow.
    pub piconets: Vec<u16>,
    /// Seeds for the per-cell deterministic RNG streams.
    pub seeds: Vec<u64>,
    /// The scatternet wirings to sweep for cells with `piconets ≥ 2`
    /// (single-piconet cells ignore it). Ring and tree topologies are
    /// measurement-only: [`ScenarioGrid::validate`] rejects them combined
    /// with `chain_deadlines` other than `None`; `bidirectional` requires
    /// the chain topology; trees and meshes reject `include_be`.
    pub topologies: Vec<Topology>,
    /// The delay requirements to sweep.
    pub delay_requirements: Vec<SimDuration>,
    /// End-to-end chain deadlines to sweep in scatternet cells: `None`
    /// runs the measured-only chain, `Some` runs multi-hop admission and
    /// records the composed bound. Only applicable with `piconets ≥ 2`
    /// ([`ScenarioGrid::validate`] rejects the combination otherwise).
    pub chain_deadlines: Vec<Option<SimDuration>>,
    /// Run a reverse chain over the same bridges in scatternet cells
    /// (shared-bridge contention). Only applicable with `piconets ≥ 2`.
    pub bidirectional: bool,
    /// Bridge rendezvous cycle of scatternet cells (each bridge spends
    /// half in each piconet). Admission-controlled cells need a cycle
    /// short enough that `cycle/2 + U` leaves an admissible
    /// presence-compensated interval — 10 ms with the paper's packet set.
    pub bridge_cycle: SimDuration,
    /// Simulated horizon of every cell.
    pub horizon: SimTime,
    /// Warm-up excluded from measurements.
    pub warmup: SimDuration,
    /// Include the BE flows (all eight of Fig. 4 in a single piconet; the
    /// reduced S4/S5 load per scatternet piconet).
    pub include_be: bool,
    /// Best-effort load multipliers to sweep (1.0 = the Fig. 4 rates) —
    /// the ROADMAP's saturation-study axis. Requires `include_be` unless
    /// it is exactly `[1.0]`.
    pub be_load_scale: Vec<f64>,
    /// How the BE flows generate traffic (a grid-wide variant, not an
    /// axis).
    pub be_source_mix: BeSourceMix,
    /// Run scatternet cells (`piconets ≥ 2`) through the observed engine
    /// and attach each cell's engine [`TelemetryReport`] to its outcome
    /// (merged by the grid aggregator, carried as an optional wire
    /// frame field, and **excluded** from every byte-identity digest).
    /// Single-piconet cells ignore it; the simulated reports are
    /// byte-identical either way.
    pub telemetry: bool,
}

impl ScenarioGrid {
    /// The paper's default evaluation surface for the given pollers and
    /// seeds: `Dreq = 40 ms`, one piconet, BE load included.
    pub fn paper(pollers: Vec<PollerKind>, seeds: Vec<u64>, horizon: SimTime) -> ScenarioGrid {
        ScenarioGrid {
            pollers,
            piconets: vec![1],
            seeds,
            topologies: vec![Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(40)],
            chain_deadlines: vec![None],
            bidirectional: false,
            bridge_cycle: SimDuration::from_millis(20),
            horizon,
            warmup: SimDuration::from_secs(2),
            include_be: true,
            be_load_scale: vec![1.0],
            be_source_mix: BeSourceMix::Cbr,
            telemetry: false,
        }
    }

    /// Checks that the grid is well-formed **before** any cell runs: every
    /// axis non-empty, the warm-up inside the horizon, piconet counts the
    /// scenarios support, scatternet-only axes (`chain_deadlines` other
    /// than `None`, `bidirectional`) not combined with single-piconet
    /// cells, and every admission-controlled scatternet cell's chain
    /// actually admissible — so an infeasible deadline is a
    /// grid-construction error, not a panic mid-run inside
    /// [`ExperimentRunner`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        for (name, empty) in [
            ("pollers", self.pollers.is_empty()),
            ("piconets", self.piconets.is_empty()),
            ("seeds", self.seeds.is_empty()),
            ("topologies", self.topologies.is_empty()),
            ("delay_requirements", self.delay_requirements.is_empty()),
            ("chain_deadlines", self.chain_deadlines.is_empty()),
            ("be_load_scale", self.be_load_scale.is_empty()),
        ] {
            if empty {
                return Err(format!("grid axis `{name}` is empty"));
            }
        }
        for &scale in &self.be_load_scale {
            // The cap keeps the shortest scaled CBR interval far above the
            // slot grid — beyond it a cell's event count explodes and the
            // load is unschedulable anyway.
            if !(scale.is_finite() && scale > 0.0 && scale <= 100.0) {
                return Err(format!(
                    "be_load_scale {scale} is outside the supported (0, 100] range"
                ));
            }
            if scale != 1.0 && !self.include_be {
                return Err(format!(
                    "be_load_scale {scale} sweeps best-effort load, but include_be is false"
                ));
            }
        }
        if self.warmup >= self.horizon - SimTime::ZERO {
            return Err(format!(
                "warm-up {} must end before the horizon {}",
                self.warmup, self.horizon
            ));
        }
        let scatternet_axes = self.bidirectional
            || self.chain_deadlines.iter().any(Option::is_some)
            || self.topologies.iter().any(|&t| t != Topology::Chain);
        for &p in &self.piconets {
            if p == 0 {
                return Err("piconet count 0 names no scenario (use 1 for Fig. 4)".into());
            }
            if p == 1 && scatternet_axes {
                return Err(
                    "chain_deadlines/bidirectional/non-chain topologies are scatternet \
                     axes; they are undefined for single-piconet cells (piconets = 1)"
                        .into(),
                );
            }
        }
        for &topology in &self.topologies {
            if topology == Topology::Chain {
                continue;
            }
            let is_mesh = matches!(topology, Topology::Mesh { .. });
            let label = topology.label();
            if self.chain_deadlines.iter().any(Option::is_some) && !is_mesh {
                return Err(format!(
                    "chain_deadlines are derived for the chain topology only, not `{label}`"
                ));
            }
            if self.bidirectional {
                return Err(format!(
                    "bidirectional requires the chain topology, not `{label}`"
                ));
            }
            if topology == Topology::Tree && self.include_be {
                return Err("tree topology cells cannot include_be (S5 is a bridge)".into());
            }
            if is_mesh && self.include_be {
                return Err(
                    "mesh topology cells cannot include_be (bridge roles use S4–S7)".into(),
                );
            }
        }
        // Scatternet cells split the rendezvous cycle evenly, and both
        // halves must be valid presence windows (positive, slot-pair
        // aligned) — otherwise BridgeSpec::windows fails inside a worker
        // thread mid-run.
        if self.piconets.iter().any(|&p| p >= 2) {
            let dwell = self.bridge_cycle / 2;
            btgs_baseband::PresenceWindow::new(self.bridge_cycle, SimDuration::ZERO, dwell)
                .and_then(|_| {
                    btgs_baseband::PresenceWindow::new(
                        self.bridge_cycle,
                        dwell,
                        self.bridge_cycle - dwell,
                    )
                })
                .map_err(|e| format!("bridge_cycle {}: {e}", self.bridge_cycle))?;
        }
        // Admission feasibility is deterministic per (piconets,
        // requirement, deadline) — seeds only affect traffic. Reject
        // inadmissible cells here, where the caller can still react.
        for &p in &self.piconets {
            if p < 2 {
                continue;
            }
            for &dreq in &self.delay_requirements {
                for deadline in self.chain_deadlines.iter().flatten() {
                    // Ring/tree + deadline combinations were rejected
                    // above; deadlines only reach here with chain or mesh
                    // topologies in play.
                    for &topology in &self.topologies {
                        if !matches!(topology, Topology::Chain | Topology::Mesh { .. }) {
                            continue;
                        }
                        let mut params = ScatternetScenarioParams::chained(p);
                        params.topology = topology;
                        params.delay_requirement = dreq;
                        params.warmup = self.warmup;
                        params.include_be = self.include_be;
                        params.chain_deadline = Some(*deadline);
                        params.bidirectional = self.bidirectional;
                        params.bridge_cycle = self.bridge_cycle;
                        ScatternetScenario::try_build(params).map_err(|e| {
                            format!(
                                "cell (piconets = {p}, topology = {}, Dreq = {dreq}, chain \
                                 deadline = {deadline}) is not admissible: {e}",
                                topology.label()
                            )
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Materialises the cells in deterministic (poller-major, then piconet
    /// count, then topology, then chain deadline, then requirement, then
    /// BE load scale, then seed) order.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(
            self.pollers.len()
                * self.piconets.len()
                * self.topologies.len()
                * self.chain_deadlines.len()
                * self.seeds.len()
                * self.delay_requirements.len()
                * self.be_load_scale.len(),
        );
        for &poller in &self.pollers {
            for &piconets in &self.piconets {
                for &topology in &self.topologies {
                    for &chain_deadline in &self.chain_deadlines {
                        for &delay_requirement in &self.delay_requirements {
                            for &be_load_scale in &self.be_load_scale {
                                for &seed in &self.seeds {
                                    out.push(GridCell {
                                        poller,
                                        piconets,
                                        seed,
                                        topology,
                                        delay_requirement,
                                        chain_deadline,
                                        bidirectional: self.bidirectional,
                                        bridge_cycle: self.bridge_cycle,
                                        horizon: self.horizon,
                                        warmup: self.warmup,
                                        include_be: self.include_be,
                                        be_load_scale,
                                        be_source_mix: self.be_source_mix,
                                        telemetry: self.telemetry,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One point of a [`ScenarioGrid`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridCell {
    /// The poller driving this cell.
    pub poller: PollerKind,
    /// Piconet count: 1 = the Fig. 4 piconet, ≥ 2 = a scatternet.
    pub piconets: u16,
    /// The root seed of the cell's RNG streams.
    pub seed: u64,
    /// Scatternet wiring (scatternet cells only; ignored at piconets = 1).
    pub topology: Topology,
    /// The delay requirement of the cell's GS flows.
    pub delay_requirement: SimDuration,
    /// End-to-end deadline of the bridged chain(s); `Some` runs multi-hop
    /// admission (scatternet cells only).
    pub chain_deadline: Option<SimDuration>,
    /// Run the reverse chain too (scatternet cells only).
    pub bidirectional: bool,
    /// Bridge rendezvous cycle (scatternet cells only).
    pub bridge_cycle: SimDuration,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Warm-up excluded from measurements.
    pub warmup: SimDuration,
    /// Include the BE flows.
    pub include_be: bool,
    /// Multiplier on the BE flows' Fig. 4 rates.
    pub be_load_scale: f64,
    /// How the BE flows generate traffic.
    pub be_source_mix: BeSourceMix,
    /// Attach engine telemetry to the outcome (scatternet cells only;
    /// see [`ScenarioGrid::telemetry`]).
    pub telemetry: bool,
}

impl GridCell {
    /// The single-piconet scenario parameters of this cell (also the
    /// reference schedule of piconet 0 in a scatternet cell).
    pub fn params(&self) -> PaperScenarioParams {
        PaperScenarioParams {
            delay_requirement: self.delay_requirement,
            seed: self.seed,
            warmup: self.warmup,
            include_be: self.include_be,
            be_load_scale: self.be_load_scale,
            be_source_mix: self.be_source_mix,
            arrival_batch: 1,
        }
    }

    /// The scatternet scenario parameters of this cell (piconets ≥ 2).
    pub fn scatternet_params(&self) -> ScatternetScenarioParams {
        ScatternetScenarioParams {
            piconets: self.piconets,
            topology: self.topology,
            delay_requirement: self.delay_requirement,
            seed: self.seed,
            warmup: self.warmup,
            include_be: self.include_be,
            bridge_cycle: self.bridge_cycle,
            chain_deadline: self.chain_deadline,
            bidirectional: self.bidirectional,
            be_load_scale: self.be_load_scale,
            be_source_mix: self.be_source_mix,
        }
    }

    /// Runs the cell's **simulation only**, returning the measured
    /// reports without the derived scenario objects.
    ///
    /// This is the expensive half of [`GridCell::run`] and the payload a
    /// sharded worker ships back over the wire — the parent process
    /// re-derives the (deterministic, cheap) scenario via
    /// [`CellResult::reassemble`], so both paths construct the result
    /// through identical code.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails to simulate — a bug, not an input
    /// condition, for the paper's parameter ranges.
    pub fn simulate(&self) -> CellOutcome {
        if self.piconets <= 1 {
            let scenario = PaperScenario::build(self.params());
            CellOutcome::Piconet(
                scenario
                    .run(self.poller, self.horizon)
                    .expect("paper scenario must simulate"),
            )
        } else {
            let scenario = ScatternetScenario::build(self.scatternet_params());
            if self.telemetry {
                // The observed engine returns a report byte-identical to
                // the plain run (the parallel-equivalence suite proves
                // it), plus the engine telemetry riding alongside.
                let run = scenario
                    .simulator(self.poller)
                    .and_then(|sim| sim.run_observed(self.horizon, ObsConfig::default()))
                    .expect("scatternet scenario must simulate");
                CellOutcome::Scatternet(run.report, Some(Box::new(run.telemetry)))
            } else {
                CellOutcome::Scatternet(
                    scenario
                        .run(self.poller, self.horizon)
                        .expect("scatternet scenario must simulate"),
                    None,
                )
            }
        }
    }

    /// Builds and runs the cell's simulation.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails to simulate — a bug, not an input
    /// condition, for the paper's parameter ranges.
    pub fn run(&self) -> CellResult {
        CellResult::reassemble(*self, self.simulate())
    }
}

/// The measured outcome of one cell's simulation — what a sharded worker
/// transmits; everything else in a [`CellResult`] is deterministically
/// re-derivable from the [`GridCell`].
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// A single-piconet (Fig. 4) cell's report.
    Piconet(RunReport),
    /// A scatternet cell's full report, plus the engine telemetry when
    /// the cell ran observed ([`GridCell::telemetry`]).
    Scatternet(ScatternetReport, Option<Box<TelemetryReport>>),
}

/// The scatternet-specific outcome of a multi-piconet grid cell.
#[derive(Clone, Debug)]
pub struct ScatternetCellResult {
    /// The derived chained-piconets scenario.
    pub scenario: ScatternetScenario,
    /// The full scatternet report (per-piconet runs + chain statistics).
    pub report: ScatternetReport,
    /// The engine telemetry, when the cell ran observed
    /// ([`GridCell::telemetry`]). Excluded from every digest.
    pub telemetry: Option<Box<TelemetryReport>>,
}

/// The outcome of one grid cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: GridCell,
    /// The derived single-piconet scenario (schedule, plans, bounds). For
    /// scatternet cells this is the reference schedule of piconet 0.
    pub scenario: PaperScenario,
    /// The simulation report. For scatternet cells this is a *copy* of
    /// piconet 0's report (also reachable via
    /// `scatternet.report.piconets[0]`): the duplication buys every grid
    /// consumer (summary tables, digests, sweeps) one uniform field at the
    /// cost of one extra per-cell report clone — acceptable because
    /// multi-piconet grids are orders of magnitude smaller than the
    /// single-piconet sweeps.
    pub report: RunReport,
    /// Present for cells with `piconets ≥ 2`: the full scatternet outcome.
    pub scatternet: Option<ScatternetCellResult>,
}

impl CellResult {
    /// Reconstructs the full cell result from the cell coordinates and
    /// the measured outcome.
    ///
    /// The scenario derivation (admission, schedules, bounds) is a pure
    /// function of the cell, so a result reassembled in a *different
    /// process* from a worker's shipped [`CellOutcome`] is byte-identical
    /// to one produced in-process by [`GridCell::run`] — the property the
    /// sharded grid runner's bit-for-bit merge guarantee rests on.
    ///
    /// # Panics
    ///
    /// Panics if the outcome variant does not match the cell's piconet
    /// count.
    pub fn reassemble(cell: GridCell, outcome: CellOutcome) -> CellResult {
        // The single-piconet reference schedule: for scatternet cells its
        // bounds are what piconet 0's paper flows would be guaranteed
        // without the bridge load, so `gs_violations` measures the
        // scatternet's interference.
        let scenario = PaperScenario::build(cell.params());
        match outcome {
            CellOutcome::Piconet(report) => {
                assert!(
                    cell.piconets <= 1,
                    "scatternet cell carries a single-piconet outcome"
                );
                CellResult {
                    cell,
                    scenario,
                    report,
                    scatternet: None,
                }
            }
            CellOutcome::Scatternet(report, telemetry) => {
                assert!(
                    cell.piconets >= 2,
                    "single-piconet cell carries a scatternet outcome"
                );
                CellResult {
                    cell,
                    scenario,
                    report: report.piconets[0].clone(),
                    scatternet: Some(ScatternetCellResult {
                        scenario: ScatternetScenario::build(cell.scatternet_params()),
                        report,
                        telemetry,
                    }),
                }
            }
        }
    }

    /// The measured outcome alone — the inverse of
    /// [`CellResult::reassemble`] (the wire format ships this).
    pub fn outcome(&self) -> CellOutcome {
        match &self.scatternet {
            None => CellOutcome::Piconet(self.report.clone()),
            Some(s) => CellOutcome::Scatternet(s.report.clone(), s.telemetry.clone()),
        }
    }

    /// The worst packet delay over all of this cell's GS flows.
    ///
    /// # Panics
    ///
    /// Panics if a GS flow saw no traffic (a broken run, not an input
    /// condition).
    pub fn gs_max_delay(&self) -> SimDuration {
        self.scenario
            .gs_plans
            .iter()
            .map(|p| {
                self.report
                    .flow(p.request.id)
                    .delay
                    .max()
                    .expect("GS flows see traffic")
            })
            .max()
            .expect("at least one GS flow")
    }

    /// Packets of this cell's GS flows that exceeded their achievable
    /// bound.
    pub fn gs_violations(&self) -> usize {
        self.scenario
            .gs_plans
            .iter()
            .map(|p| {
                self.report
                    .flow(p.request.id)
                    .delay
                    .violations_of(p.achievable_bound)
            })
            .sum()
    }
}

/// The merged outcome of a whole grid, in [`ScenarioGrid::cells`] order.
#[derive(Clone, Debug)]
pub struct GridReport {
    /// Per-cell results, in deterministic grid order.
    pub cells: Vec<CellResult>,
}

impl GridReport {
    /// The results of one poller, in grid order.
    pub fn of_poller(&self, kind: PollerKind) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(move |c| c.cell.poller == kind)
    }

    /// Merged per-poller summary: throughput and delay statistics pooled
    /// over every seed and requirement of that poller.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(vec![
            "poller",
            "cells",
            "GS [kbps]",
            "BE [kbps]",
            "GS delay mean",
            "GS delay max",
            "bound violations",
        ]);
        let mut seen: Vec<PollerKind> = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.cell.poller) {
                seen.push(c.cell.poller);
            }
        }
        for kind in seen {
            let mut n = 0usize;
            let mut gs_kbps = 0.0;
            let mut be_kbps = 0.0;
            let mut delays = DelayStats::new();
            let mut violations = 0usize;
            for c in self.of_poller(kind) {
                n += 1;
                for f in &c.report.flows {
                    let kbps = c.report.throughput_kbps(f.id);
                    if f.channel.is_gs() {
                        gs_kbps += kbps;
                        delays.merge(&c.report.flow(f.id).delay);
                    } else {
                        be_kbps += kbps;
                    }
                }
                violations += c.gs_violations();
            }
            let cells = n.max(1) as f64;
            t.row(vec![
                kind.label(),
                n.to_string(),
                fmt_f64(gs_kbps / cells, 1),
                fmt_f64(be_kbps / cells, 1),
                delays.mean().map_or_else(|| "-".into(), |d| d.to_string()),
                delays.max().map_or_else(|| "-".into(), |d| d.to_string()),
                violations.to_string(),
            ]);
        }
        t
    }

    /// A stable textual digest of every cell (poller, seed, requirement,
    /// per-flow delivery counts and delay extrema). Two runs of the same
    /// grid — sequential or parallel — must render identically; the
    /// determinism tests hinge on this.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        fn flow_digest(out: &mut String, report: &RunReport) {
            for f in &report.flows {
                let r = report.flow(f.id);
                let _ = write!(
                    out,
                    "|{}:{}:{}:{}",
                    f.id,
                    r.delivered_packets,
                    r.delivered_bytes,
                    r.delay.max().map_or_else(|| "-".into(), |d| d.to_string()),
                );
            }
        }
        let mut out = String::new();
        for c in &self.cells {
            let _ = write!(
                out,
                "{}|pics={}|seed={}|dreq={}|cd={}|bi={}|bl={:?}|mix={}",
                c.cell.poller.label(),
                c.cell.piconets,
                c.cell.seed,
                c.cell.delay_requirement,
                c.cell
                    .chain_deadline
                    .map_or_else(|| "-".into(), |d| d.to_string()),
                c.cell.bidirectional,
                c.cell.be_load_scale,
                c.cell.be_source_mix.label(),
            );
            match &c.scatternet {
                None => flow_digest(&mut out, &c.report),
                Some(s) => {
                    // Every piconet's flows, then the chain statistics.
                    for r in &s.report.piconets {
                        flow_digest(&mut out, r);
                    }
                    for chain in &s.report.chains {
                        let _ = write!(
                            out,
                            "|chain:{}:{}:{}:{}",
                            chain.delivered_packets,
                            chain.relayed_packets,
                            chain
                                .e2e
                                .max()
                                .map_or_else(|| "-".into(), |d| d.to_string()),
                            chain
                                .residence
                                .max()
                                .map_or_else(|| "-".into(), |d| d.to_string()),
                        );
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A deterministic parallel map over experiment cells.
///
/// Workers claim cells from an atomic cursor and run them independently;
/// results are reassembled in input order, so the output is invariant
/// under the thread count and the OS schedule.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentRunner {
    threads: usize,
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        ExperimentRunner::new()
    }
}

impl ExperimentRunner {
    /// A runner using all available CPU parallelism.
    pub fn new() -> ExperimentRunner {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExperimentRunner { threads }
    }

    /// A runner with an explicit worker count (1 = sequential, in the
    /// calling thread).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> ExperimentRunner {
        assert!(threads > 0, "at least one worker thread is required");
        ExperimentRunner { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `cells` on the worker pool and returns the results in
    /// input order.
    ///
    /// `f` must be a pure function of its cell (up to interior determinism
    /// — e.g. a simulation seeded from the cell); under that condition the
    /// output is identical for every thread count.
    pub fn run<C, R, F>(&self, cells: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(&C) -> R + Sync,
    {
        if cells.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(cells.len());
        if workers == 1 {
            return cells.iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(cells.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Claim-and-run until the grid is exhausted. Each worker
                    // batches its results locally and merges once, keeping
                    // lock traffic negligible next to simulation time.
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // ord: Relaxed — RMW atomicity alone partitions
                        // cell indices across workers; results are
                        // ordered by the scope join and the result lock.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        local.push((i, f(&cells[i])));
                    }
                    collected
                        .lock()
                        .expect("worker panicked while holding the result lock")
                        .append(&mut local);
                });
            }
        });
        let mut pairs = collected.into_inner().expect("workers joined");
        pairs.sort_by_key(|(i, _)| *i);
        debug_assert_eq!(pairs.len(), cells.len());
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs a whole [`ScenarioGrid`] and merges the results.
    ///
    /// # Panics
    ///
    /// Panics — with the validation message, before any cell has run — if
    /// [`ScenarioGrid::validate`] rejects the grid. Use
    /// [`ExperimentRunner::try_run_grid`] to handle rejection.
    pub fn run_grid(&self, grid: &ScenarioGrid) -> GridReport {
        self.try_run_grid(grid)
            .unwrap_or_else(|e| panic!("invalid scenario grid: {e}"))
    }

    /// Validates the grid, then runs it; an ill-formed grid (including an
    /// inadmissible chain deadline) is reported as an error before any
    /// cell executes.
    ///
    /// The in-memory report is itself built through the streaming path: a
    /// [`CollectSink`] is just one [`CellSink`] among the spill and
    /// aggregation sinks of `btgs-grid`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioGrid::validate`]'s description of the violated
    /// rule.
    pub fn try_run_grid(&self, grid: &ScenarioGrid) -> Result<GridReport, String> {
        let mut collect = CollectSink::new();
        self.run_grid_streaming(grid, &mut collect)?;
        Ok(collect.into_report())
    }

    /// Runs every cell of the grid, streaming each [`CellResult`] into
    /// `sink` **as it completes** — in an arbitrary, thread-schedule-
    /// dependent order. Sinks must therefore be completion-order
    /// invariant (all the provided ones are); nothing is retained here,
    /// so peak memory is the sink's, not O(cells).
    ///
    /// Returns the number of cells executed.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioGrid::validate`]'s description of the violated
    /// rule, before any cell runs.
    pub fn run_grid_streaming(
        &self,
        grid: &ScenarioGrid,
        sink: &mut dyn CellSink,
    ) -> Result<usize, String> {
        grid.validate()?;
        let cells = grid.cells();
        let n = cells.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            for (i, cell) in cells.iter().enumerate() {
                sink.accept_owned(i, cell.run());
            }
            return Ok(n);
        }
        let cursor = AtomicUsize::new(0);
        let shared = Mutex::new(sink);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // ord: Relaxed — claim-only counter (see above); the
                    // sink mutex orders the deliveries.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Simulate outside the lock; only delivery serialises.
                    let result = cells[i].run();
                    shared
                        .lock()
                        .expect("a worker panicked while holding the sink")
                        .accept_owned(i, result);
                });
            }
        });
        Ok(n)
    }
}

/// The four-poller comparison set used by the ablation benches: fixed
/// (§3.1), variable without (c), full §3.2, and the PFP configuration.
pub fn comparison_pollers() -> Vec<PollerKind> {
    vec![
        PollerKind::FixedGs,
        PollerKind::Custom(Improvements {
            packet_aware: true,
            replan_from_actual: true,
            skip_empty_downlink: false,
        }),
        PollerKind::Custom(Improvements::ALL),
        PollerKind::PfpGs,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cell_order_is_deterministic() {
        let grid = ScenarioGrid {
            pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
            piconets: vec![1],
            seeds: vec![1, 2, 3],
            topologies: vec![Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(40), SimDuration::from_millis(30)],
            chain_deadlines: vec![None],
            bidirectional: false,
            bridge_cycle: SimDuration::from_millis(20),
            horizon: SimTime::from_secs(1),
            warmup: SimDuration::ZERO,
            include_be: false,
            be_load_scale: vec![1.0],
            be_source_mix: BeSourceMix::Cbr,
            telemetry: false,
        };
        let cells = grid.cells();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].poller, PollerKind::PfpGs);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[3].delay_requirement, SimDuration::from_millis(30));
        assert_eq!(cells[6].poller, PollerKind::FixedGs);
        assert_eq!(cells, grid.cells());
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let runner = ExperimentRunner::with_threads(8);
        let cells: Vec<u64> = (0..100).collect();
        let out = runner.run(&cells, |&c| c * 2);
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
        // Degenerate cases.
        assert!(runner.run(&[] as &[u64], |&c| c).is_empty());
        assert_eq!(
            ExperimentRunner::with_threads(1).run(&cells, |&c| c + 1)[99],
            100
        );
    }

    fn base_grid() -> ScenarioGrid {
        ScenarioGrid {
            pollers: vec![PollerKind::PfpGs],
            piconets: vec![1],
            seeds: vec![1],
            topologies: vec![Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(40)],
            chain_deadlines: vec![None],
            bidirectional: false,
            bridge_cycle: SimDuration::from_millis(10),
            horizon: SimTime::from_secs(2),
            warmup: SimDuration::from_millis(500),
            include_be: false,
            be_load_scale: vec![1.0],
            be_source_mix: BeSourceMix::Cbr,
            telemetry: false,
        }
    }

    #[test]
    fn validation_rejects_malformed_grids_at_construction_time() {
        assert!(base_grid().validate().is_ok());

        let mut g = base_grid();
        g.seeds.clear();
        assert!(g.validate().unwrap_err().contains("seeds"));

        let mut g = base_grid();
        g.piconets = vec![0];
        assert!(g.validate().unwrap_err().contains("piconet count 0"));

        // Piconet counts past the historic nine-piconet id block now
        // widen the block instead of failing (see `chain_id_base`).
        let mut g = base_grid();
        g.piconets = vec![10];
        assert!(g.validate().is_ok());

        // Non-chain topologies are scatternet axes and reject the
        // chain-only knobs.
        let mut g = base_grid();
        g.topologies = vec![Topology::Ring];
        assert!(g.validate().unwrap_err().contains("scatternet axes"));
        let mut g = base_grid();
        g.piconets = vec![3];
        g.topologies = vec![Topology::Chain, Topology::Ring];
        assert!(g.validate().is_ok());
        g.bidirectional = true;
        assert!(g.validate().unwrap_err().contains("chain topology"));
        let mut g = base_grid();
        g.piconets = vec![3];
        g.topologies = vec![Topology::Tree];
        g.include_be = true;
        assert!(g.validate().unwrap_err().contains("include_be"));

        let mut g = base_grid();
        g.warmup = SimDuration::from_secs(3);
        assert!(g.validate().unwrap_err().contains("warm-up"));

        // Scatternet-only axes combined with single-piconet cells.
        let mut g = base_grid();
        g.chain_deadlines = vec![Some(SimDuration::from_millis(150))];
        assert!(g.validate().unwrap_err().contains("scatternet axes"));
        let mut g = base_grid();
        g.bidirectional = true;
        assert!(g.validate().unwrap_err().contains("scatternet axes"));

        // Ill-formed bridge cycles (off the slot-pair grid, or zero) are
        // grid errors too — they used to fail inside a worker thread.
        let mut g = base_grid();
        g.piconets = vec![2];
        g.bridge_cycle = SimDuration::from_millis(3);
        assert!(g.validate().unwrap_err().contains("bridge_cycle"));
        g.bridge_cycle = SimDuration::ZERO;
        assert!(g.validate().unwrap_err().contains("bridge_cycle"));
        // Single-piconet grids never build bridges; the cycle is unused.
        let mut g = base_grid();
        g.bridge_cycle = SimDuration::from_millis(3);
        assert!(g.validate().is_ok());

        // An inadmissible chain deadline is a grid-construction error,
        // not a mid-run panic: at Dreq = 40 ms no chain can be admitted.
        let mut g = base_grid();
        g.piconets = vec![2];
        g.chain_deadlines = vec![Some(SimDuration::from_millis(150))];
        let err = g.validate().unwrap_err();
        assert!(err.contains("not admissible"), "{err}");
        assert!(ExperimentRunner::with_threads(1).try_run_grid(&g).is_err());

        // The same deadline with capacity left (Dreq = 46 ms) validates
        // and runs.
        g.delay_requirements = vec![SimDuration::from_millis(46)];
        assert!(g.validate().is_ok(), "{:?}", g.validate());
    }

    #[test]
    fn validation_covers_the_be_load_axis() {
        let mut g = base_grid();
        g.be_load_scale.clear();
        assert!(g.validate().unwrap_err().contains("be_load_scale"));

        // Out-of-range multipliers are grid errors, not mid-run panics
        // (a non-finite or zero scale would produce an invalid CBR
        // interval inside a worker).
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, 101.0] {
            let mut g = base_grid();
            g.include_be = true;
            g.be_load_scale = vec![1.0, bad];
            let err = g.validate().unwrap_err();
            assert!(err.contains("be_load_scale"), "{bad}: {err}");
        }

        // Sweeping BE load without BE flows is contradictory…
        let mut g = base_grid();
        g.be_load_scale = vec![0.5, 1.0, 2.0];
        assert!(g.validate().unwrap_err().contains("include_be"));
        // …but fine once the flows exist, and the axis multiplies the
        // cell count.
        g.include_be = true;
        assert!(g.validate().is_ok(), "{:?}", g.validate());
        assert_eq!(g.cells().len(), 3);
        assert_eq!(g.cells()[0].be_load_scale, 0.5);
        assert_eq!(g.cells()[2].be_load_scale, 2.0);
    }

    #[test]
    fn poller_labels_round_trip() {
        let mut kinds = vec![PollerKind::PfpGs, PollerKind::FixedGs];
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    kinds.push(PollerKind::Custom(Improvements {
                        packet_aware: a,
                        replan_from_actual: b,
                        skip_empty_downlink: c,
                    }));
                }
            }
        }
        for kind in kinds {
            assert_eq!(
                PollerKind::from_label(&kind.label()),
                Some(kind),
                "{} must round-trip",
                kind.label()
            );
        }
        for bad in ["", "pfp", "gs-custom(", "gs-custom(d)", "gs-custom(aa)"] {
            assert_eq!(PollerKind::from_label(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn source_mix_labels_round_trip() {
        for mix in [BeSourceMix::Cbr, BeSourceMix::Poisson, BeSourceMix::OnOff] {
            assert_eq!(BeSourceMix::from_label(mix.label()), Some(mix));
        }
        assert_eq!(BeSourceMix::from_label("bursty"), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PollerKind::PfpGs.label(), "pfp-gs");
        assert_eq!(PollerKind::FixedGs.label(), "gs-fixed");
        assert_eq!(
            PollerKind::Custom(Improvements::ALL).label(),
            "gs-custom(abc)"
        );
        assert_eq!(
            PollerKind::Custom(Improvements::NONE).label(),
            "gs-custom()"
        );
        assert_eq!(comparison_pollers().len(), 4);
    }
}
