//! Parallel experiment execution: fan a deterministic scenario grid across
//! worker threads.
//!
//! The paper's evaluation — and every ablation around it — is a sweep:
//! poller × seed × delay requirement, each cell an independent,
//! deterministic simulation. [`ExperimentRunner`] executes such grids on a
//! pool of `std::thread` workers. Because every cell derives all of its
//! randomness from its own seed (see [`PaperScenario::sources`]), the
//! result of a grid is **bit-identical** whatever the thread count — the
//! runner only changes wall-clock time, never output.
//!
//! ```
//! use btgs_core::{ExperimentRunner, PollerKind, ScenarioGrid};
//! use btgs_des::{SimDuration, SimTime};
//!
//! let grid = ScenarioGrid {
//!     pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
//!     piconets: vec![1],
//!     seeds: vec![1, 2],
//!     delay_requirements: vec![SimDuration::from_millis(40)],
//!     horizon: SimTime::from_secs(3),
//!     warmup: SimDuration::from_millis(500),
//!     include_be: false,
//! };
//! let report = ExperimentRunner::new().run_grid(&grid);
//! assert_eq!(report.cells.len(), 4);
//! ```

use crate::plan::Improvements;
use crate::scatternet_scenario::{ScatternetScenario, ScatternetScenarioParams};
use crate::scenario::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs_des::{SimDuration, SimTime};
use btgs_metrics::{fmt_f64, DelayStats, Table};
use btgs_piconet::{RunReport, ScatternetReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

impl PollerKind {
    /// A short stable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            PollerKind::PfpGs => "pfp-gs".into(),
            PollerKind::FixedGs => "gs-fixed".into(),
            PollerKind::Custom(imp) => {
                let mut s = String::from("gs-custom(");
                if imp.packet_aware {
                    s.push('a');
                }
                if imp.replan_from_actual {
                    s.push('b');
                }
                if imp.skip_empty_downlink {
                    s.push('c');
                }
                s.push(')');
                s
            }
        }
    }
}

/// A poller × piconet-count × seed × delay-requirement grid over the
/// paper's Fig. 4 scenario and its scatternet extension.
#[derive(Clone, Debug)]
pub struct ScenarioGrid {
    /// The pollers to compare.
    pub pollers: Vec<PollerKind>,
    /// The piconet counts to sweep: `1` runs the single-piconet Fig. 4
    /// scenario (bit-identical to the pre-scatternet runner), `≥ 2` runs
    /// the chained [`ScatternetScenario`] with one bridged GS flow.
    pub piconets: Vec<u8>,
    /// Seeds for the per-cell deterministic RNG streams.
    pub seeds: Vec<u64>,
    /// The delay requirements to sweep.
    pub delay_requirements: Vec<SimDuration>,
    /// Simulated horizon of every cell.
    pub horizon: SimTime,
    /// Warm-up excluded from measurements.
    pub warmup: SimDuration,
    /// Include the BE flows (all eight of Fig. 4 in a single piconet; the
    /// reduced S4/S5 load per scatternet piconet).
    pub include_be: bool,
}

impl ScenarioGrid {
    /// The paper's default evaluation surface for the given pollers and
    /// seeds: `Dreq = 40 ms`, one piconet, BE load included.
    pub fn paper(pollers: Vec<PollerKind>, seeds: Vec<u64>, horizon: SimTime) -> ScenarioGrid {
        ScenarioGrid {
            pollers,
            piconets: vec![1],
            seeds,
            delay_requirements: vec![SimDuration::from_millis(40)],
            horizon,
            warmup: SimDuration::from_secs(2),
            include_be: true,
        }
    }

    /// Materialises the cells in deterministic (poller-major, then piconet
    /// count, then requirement, then seed) order.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(
            self.pollers.len()
                * self.piconets.len()
                * self.seeds.len()
                * self.delay_requirements.len(),
        );
        for &poller in &self.pollers {
            for &piconets in &self.piconets {
                for &delay_requirement in &self.delay_requirements {
                    for &seed in &self.seeds {
                        out.push(GridCell {
                            poller,
                            piconets,
                            seed,
                            delay_requirement,
                            horizon: self.horizon,
                            warmup: self.warmup,
                            include_be: self.include_be,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One point of a [`ScenarioGrid`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridCell {
    /// The poller driving this cell.
    pub poller: PollerKind,
    /// Piconet count: 1 = the Fig. 4 piconet, ≥ 2 = chained scatternet.
    pub piconets: u8,
    /// The root seed of the cell's RNG streams.
    pub seed: u64,
    /// The delay requirement of the cell's GS flows.
    pub delay_requirement: SimDuration,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Warm-up excluded from measurements.
    pub warmup: SimDuration,
    /// Include the BE flows.
    pub include_be: bool,
}

impl GridCell {
    /// The single-piconet scenario parameters of this cell (also the
    /// reference schedule of piconet 0 in a scatternet cell).
    pub fn params(&self) -> PaperScenarioParams {
        PaperScenarioParams {
            delay_requirement: self.delay_requirement,
            seed: self.seed,
            warmup: self.warmup,
            include_be: self.include_be,
        }
    }

    /// The scatternet scenario parameters of this cell (piconets ≥ 2).
    pub fn scatternet_params(&self) -> ScatternetScenarioParams {
        ScatternetScenarioParams {
            piconets: self.piconets,
            delay_requirement: self.delay_requirement,
            seed: self.seed,
            warmup: self.warmup,
            include_be: self.include_be,
            bridge_cycle: SimDuration::from_millis(20),
        }
    }

    /// Builds and runs the cell's simulation.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails to simulate — a bug, not an input
    /// condition, for the paper's parameter ranges.
    pub fn run(&self) -> CellResult {
        let scenario = PaperScenario::build(self.params());
        if self.piconets <= 1 {
            let report = scenario
                .run(self.poller, self.horizon)
                .expect("paper scenario must simulate");
            return CellResult {
                cell: *self,
                scenario,
                report,
                scatternet: None,
            };
        }
        let scatternet_scenario = ScatternetScenario::build(self.scatternet_params());
        let scatternet_report = scatternet_scenario
            .run(self.poller, self.horizon)
            .expect("scatternet scenario must simulate");
        CellResult {
            cell: *self,
            // `scenario` keeps the single-piconet reference schedule: its
            // bounds are what piconet 0's paper flows would be guaranteed
            // without the bridge load, so `gs_violations` measures the
            // scatternet's interference.
            scenario,
            report: scatternet_report.piconets[0].clone(),
            scatternet: Some(ScatternetCellResult {
                scenario: scatternet_scenario,
                report: scatternet_report,
            }),
        }
    }
}

/// The scatternet-specific outcome of a multi-piconet grid cell.
#[derive(Clone, Debug)]
pub struct ScatternetCellResult {
    /// The derived chained-piconets scenario.
    pub scenario: ScatternetScenario,
    /// The full scatternet report (per-piconet runs + chain statistics).
    pub report: ScatternetReport,
}

/// The outcome of one grid cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: GridCell,
    /// The derived single-piconet scenario (schedule, plans, bounds). For
    /// scatternet cells this is the reference schedule of piconet 0.
    pub scenario: PaperScenario,
    /// The simulation report. For scatternet cells this is a *copy* of
    /// piconet 0's report (also reachable via
    /// `scatternet.report.piconets[0]`): the duplication buys every grid
    /// consumer (summary tables, digests, sweeps) one uniform field at the
    /// cost of one extra per-cell report clone — acceptable because
    /// multi-piconet grids are orders of magnitude smaller than the
    /// single-piconet sweeps.
    pub report: RunReport,
    /// Present for cells with `piconets ≥ 2`: the full scatternet outcome.
    pub scatternet: Option<ScatternetCellResult>,
}

impl CellResult {
    /// The worst packet delay over all of this cell's GS flows.
    ///
    /// # Panics
    ///
    /// Panics if a GS flow saw no traffic (a broken run, not an input
    /// condition).
    pub fn gs_max_delay(&self) -> SimDuration {
        self.scenario
            .gs_plans
            .iter()
            .map(|p| {
                self.report
                    .flow(p.request.id)
                    .delay
                    .max()
                    .expect("GS flows see traffic")
            })
            .max()
            .expect("at least one GS flow")
    }

    /// Packets of this cell's GS flows that exceeded their achievable
    /// bound.
    pub fn gs_violations(&self) -> usize {
        self.scenario
            .gs_plans
            .iter()
            .map(|p| {
                self.report
                    .flow(p.request.id)
                    .delay
                    .violations_of(p.achievable_bound)
            })
            .sum()
    }
}

/// The merged outcome of a whole grid, in [`ScenarioGrid::cells`] order.
#[derive(Clone, Debug)]
pub struct GridReport {
    /// Per-cell results, in deterministic grid order.
    pub cells: Vec<CellResult>,
}

impl GridReport {
    /// The results of one poller, in grid order.
    pub fn of_poller(&self, kind: PollerKind) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(move |c| c.cell.poller == kind)
    }

    /// Merged per-poller summary: throughput and delay statistics pooled
    /// over every seed and requirement of that poller.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(vec![
            "poller",
            "cells",
            "GS [kbps]",
            "BE [kbps]",
            "GS delay mean",
            "GS delay max",
            "bound violations",
        ]);
        let mut seen: Vec<PollerKind> = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.cell.poller) {
                seen.push(c.cell.poller);
            }
        }
        for kind in seen {
            let mut n = 0usize;
            let mut gs_kbps = 0.0;
            let mut be_kbps = 0.0;
            let mut delays = DelayStats::new();
            let mut violations = 0usize;
            for c in self.of_poller(kind) {
                n += 1;
                for f in &c.report.flows {
                    let kbps = c.report.throughput_kbps(f.id);
                    if f.channel.is_gs() {
                        gs_kbps += kbps;
                        delays.merge(&c.report.flow(f.id).delay);
                    } else {
                        be_kbps += kbps;
                    }
                }
                violations += c.gs_violations();
            }
            let cells = n.max(1) as f64;
            t.row(vec![
                kind.label(),
                n.to_string(),
                fmt_f64(gs_kbps / cells, 1),
                fmt_f64(be_kbps / cells, 1),
                delays.mean().map_or_else(|| "-".into(), |d| d.to_string()),
                delays.max().map_or_else(|| "-".into(), |d| d.to_string()),
                violations.to_string(),
            ]);
        }
        t
    }

    /// A stable textual digest of every cell (poller, seed, requirement,
    /// per-flow delivery counts and delay extrema). Two runs of the same
    /// grid — sequential or parallel — must render identically; the
    /// determinism tests hinge on this.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        fn flow_digest(out: &mut String, report: &RunReport) {
            for f in &report.flows {
                let r = report.flow(f.id);
                let _ = write!(
                    out,
                    "|{}:{}:{}:{}",
                    f.id,
                    r.delivered_packets,
                    r.delivered_bytes,
                    r.delay.max().map_or_else(|| "-".into(), |d| d.to_string()),
                );
            }
        }
        let mut out = String::new();
        for c in &self.cells {
            let _ = write!(
                out,
                "{}|pics={}|seed={}|dreq={}",
                c.cell.poller.label(),
                c.cell.piconets,
                c.cell.seed,
                c.cell.delay_requirement
            );
            match &c.scatternet {
                None => flow_digest(&mut out, &c.report),
                Some(s) => {
                    // Every piconet's flows, then the chain statistics.
                    for r in &s.report.piconets {
                        flow_digest(&mut out, r);
                    }
                    for chain in &s.report.chains {
                        let _ = write!(
                            out,
                            "|chain:{}:{}:{}:{}",
                            chain.delivered_packets,
                            chain.relayed_packets,
                            chain
                                .e2e
                                .max()
                                .map_or_else(|| "-".into(), |d| d.to_string()),
                            chain
                                .residence
                                .max()
                                .map_or_else(|| "-".into(), |d| d.to_string()),
                        );
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A deterministic parallel map over experiment cells.
///
/// Workers claim cells from an atomic cursor and run them independently;
/// results are reassembled in input order, so the output is invariant
/// under the thread count and the OS schedule.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentRunner {
    threads: usize,
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        ExperimentRunner::new()
    }
}

impl ExperimentRunner {
    /// A runner using all available CPU parallelism.
    pub fn new() -> ExperimentRunner {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExperimentRunner { threads }
    }

    /// A runner with an explicit worker count (1 = sequential, in the
    /// calling thread).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> ExperimentRunner {
        assert!(threads > 0, "at least one worker thread is required");
        ExperimentRunner { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `cells` on the worker pool and returns the results in
    /// input order.
    ///
    /// `f` must be a pure function of its cell (up to interior determinism
    /// — e.g. a simulation seeded from the cell); under that condition the
    /// output is identical for every thread count.
    pub fn run<C, R, F>(&self, cells: &[C], f: F) -> Vec<R>
    where
        C: Sync,
        R: Send,
        F: Fn(&C) -> R + Sync,
    {
        if cells.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(cells.len());
        if workers == 1 {
            return cells.iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(cells.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Claim-and-run until the grid is exhausted. Each worker
                    // batches its results locally and merges once, keeping
                    // lock traffic negligible next to simulation time.
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        local.push((i, f(&cells[i])));
                    }
                    collected
                        .lock()
                        .expect("worker panicked while holding the result lock")
                        .append(&mut local);
                });
            }
        });
        let mut pairs = collected.into_inner().expect("workers joined");
        pairs.sort_by_key(|(i, _)| *i);
        debug_assert_eq!(pairs.len(), cells.len());
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs a whole [`ScenarioGrid`] and merges the results.
    pub fn run_grid(&self, grid: &ScenarioGrid) -> GridReport {
        let cells = grid.cells();
        let results = self.run(&cells, GridCell::run);
        GridReport { cells: results }
    }
}

/// The four-poller comparison set used by the ablation benches: fixed
/// (§3.1), variable without (c), full §3.2, and the PFP configuration.
pub fn comparison_pollers() -> Vec<PollerKind> {
    vec![
        PollerKind::FixedGs,
        PollerKind::Custom(Improvements {
            packet_aware: true,
            replan_from_actual: true,
            skip_empty_downlink: false,
        }),
        PollerKind::Custom(Improvements::ALL),
        PollerKind::PfpGs,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cell_order_is_deterministic() {
        let grid = ScenarioGrid {
            pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
            piconets: vec![1],
            seeds: vec![1, 2, 3],
            delay_requirements: vec![SimDuration::from_millis(40), SimDuration::from_millis(30)],
            horizon: SimTime::from_secs(1),
            warmup: SimDuration::ZERO,
            include_be: false,
        };
        let cells = grid.cells();
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].poller, PollerKind::PfpGs);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[3].delay_requirement, SimDuration::from_millis(30));
        assert_eq!(cells[6].poller, PollerKind::FixedGs);
        assert_eq!(cells, grid.cells());
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let runner = ExperimentRunner::with_threads(8);
        let cells: Vec<u64> = (0..100).collect();
        let out = runner.run(&cells, |&c| c * 2);
        assert_eq!(out, (0..100).map(|c| c * 2).collect::<Vec<_>>());
        // Degenerate cases.
        assert!(runner.run(&[] as &[u64], |&c| c).is_empty());
        assert_eq!(
            ExperimentRunner::with_threads(1).run(&cells, |&c| c + 1)[99],
            100
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PollerKind::PfpGs.label(), "pfp-gs");
        assert_eq!(PollerKind::FixedGs.label(), "gs-fixed");
        assert_eq!(
            PollerKind::Custom(Improvements::ALL).label(),
            "gs-custom(abc)"
        );
        assert_eq!(
            PollerKind::Custom(Improvements::NONE).label(),
            "gs-custom()"
        );
        assert_eq!(comparison_pollers().len(), 4);
    }
}
