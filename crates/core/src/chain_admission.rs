//! Multi-hop (scatternet) Guaranteed Service admission: compose per-hop
//! delay bounds and worst-case bridge residences into a provable
//! end-to-end bound, and admit a chain only if **every** traversed piconet
//! passes the paper's single-piconet test — atomically.
//!
//! A [`ScatternetAdmissionController`] owns one [`AdmissionController`]
//! per piconet. [`admit_chain`](ScatternetAdmissionController::admit_chain)
//! runs in three phases:
//!
//! 1. **Budgeting** — a trial pass (on cloned controllers) admits every
//!    hop at the token rate to learn each hop's poll delay `y`. The fixed,
//!    rate-independent cost of the chain is then
//!    `Σ residences + Σ (y_h + absence_h)`; what remains of the deadline
//!    is split into equal per-hop queueing budgets
//!    ([`split_queueing_budget`]) and inverted into per-hop rate requests
//!    ([`required_rate`]).
//! 2. **Admission** — every hop's [`GsRequest`] runs through its
//!    piconet's controller in path order. Any rejection rolls the earlier
//!    hops back ([`AdmissionController::release`]), leaving all ledgers
//!    byte-identical to their pre-call state (the controller's canonical
//!    ordering guarantees exact restoration).
//! 3. **Verification** — the *actual* granted schedule (priorities may
//!    have been reshuffled by Audsley's search) is recomposed into the
//!    end-to-end bound. If the chain misses its deadline, or any
//!    previously admitted chain's recomposed bound now misses *its*
//!    deadline, the new hops are rolled back and the chain is rejected.
//!
//! The bound that comes out is `e2e ≤ Σ hop bounds + Σ residences` with
//! each hop bound an RFC 2212 Eq. 1 bound whose `D` term is inflated by
//! the hop slave's worst-case absence gap (a poll due while the bridge is
//! away waits out the gap) — see [`btgs_gs::compose_e2e_bound`] and the
//! scatternet validation binary, which checks measured worst-case delays
//! against the composed bound across a grid of pollers and seeds.
//!
//! ## Presence-aware poll intervals (Eq. 5 on a part-time slave)
//!
//! The paper's Eq. 5 (`x = η/R`) assumes every planned poll can execute.
//! A bridge slave is absent for up to `absence` per rendezvous cycle, so
//! a poll plan with interval `x` only guarantees one poll every
//! `x + absence` — polling a half-duty bridge at the fluid interval
//! serves *below* the granted rate and the backlog never drains. Chain
//! admission therefore requests the **physical** interval
//!
//! ```text
//! x_phys = η/R_fluid − absence        (R_phys = η/x_phys)
//! ```
//!
//! so the worst-case *effective* service rate `η/(x_phys + absence)`
//! still equals the fluid rate the bound was computed with. When Eq. 9
//! caps the physical rate (`x_phys ≥ y`), the hop's bound is recomputed
//! from the *achievable* effective rate `η/(y + absence)`; a hop whose
//! effective rate cannot even sustain the token rate is rejected as
//! [`ChainAdmissionError::HopUnsustainable`].

use crate::admission::{AdmissionController, AdmissionError, AdmissionOutcome, GsRequest};
use crate::efficiency::min_poll_efficiency;
use crate::timing::poll_interval;
use crate::ymax::max_admissible_rate;
use btgs_baseband::{AmAddr, Direction, PiconetId};
use btgs_des::SimDuration;
use btgs_gs::{
    compose_e2e_bound, delay_bound, required_rate, split_queueing_budget, ErrorTerms,
    TokenBucketSpec,
};
use btgs_traffic::FlowId;
use core::fmt;

/// One hop of a chain reservation request.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainHopSpec {
    /// The piconet this hop is polled in.
    pub piconet: PiconetId,
    /// The hop flow's id (globally unique).
    pub flow: FlowId,
    /// The slave the hop terminates at (a bridge slave for hops that cross
    /// piconets, the relaying master's counterpart otherwise).
    pub slave: AmAddr,
    /// The hop's transfer direction within its piconet.
    pub direction: Direction,
    /// Worst-case bridge residence paid **before** this hop — the handoff
    /// wait for the bridge to appear in this hop's piconet
    /// ([`btgs_gs::worst_case_residence`] of the *target* window). Zero for
    /// the first hop and for master-internal relays.
    pub residence_in: SimDuration,
    /// Worst-case extra poll delay of this hop's slave when it is
    /// part-time ([`btgs_gs::presence_absence_penalty`] of the slave's own
    /// window); zero for full-time slaves.
    pub absence: SimDuration,
}

/// A chain reservation request: an end-to-end deadline over an ordered
/// hop path.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainRequest {
    /// Caller-chosen chain identifier (unique among admitted chains).
    pub id: u32,
    /// The flow's token-bucket TSpec (identical on every hop: the chain
    /// relays the same packet stream).
    pub tspec: TokenBucketSpec,
    /// The end-to-end delay bound requested for the chain.
    pub deadline: SimDuration,
    /// The hops, in path order.
    pub hops: Vec<ChainHopSpec>,
}

/// The per-hop grant of an admitted chain.
#[derive(Clone, Debug, PartialEq)]
pub struct HopGrant {
    /// The hop flow.
    pub flow: FlowId,
    /// The piconet that granted it.
    pub piconet: PiconetId,
    /// The granted *physical* rate (bytes/s) — presence-compensated, so
    /// it can exceed the chain's fluid rate on part-time slaves (see the
    /// [module docs](self)).
    pub rate: f64,
    /// The granted poll interval `x = eta_min / rate` — recorded so the
    /// chain's polling schedule is auditable hop by hop.
    pub x: SimDuration,
    /// The hop entity's maximum poll delay `y` under the granted schedule.
    pub y: SimDuration,
    /// The hop slave's worst-case absence gap (copied from the request's
    /// [`ChainHopSpec::absence`]; zero for full-time slaves).
    pub absence: SimDuration,
    /// The hop's provable delay bound: Eq. 1 at the worst-case effective
    /// service rate `η/(x + absence)`, with `D = y + absence`.
    pub bound: SimDuration,
}

/// The grant of an admitted chain: per-hop grants plus the composed
/// end-to-end bound.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainGrant {
    /// The admitted request's id.
    pub id: u32,
    /// The deadline the chain was admitted against.
    pub deadline: SimDuration,
    /// Per-hop grants, in path order.
    pub hops: Vec<HopGrant>,
    /// Total worst-case bridge residence along the path.
    pub residence_total: SimDuration,
    /// The provable end-to-end bound:
    /// `Σ hop bounds + residence_total ≤ deadline`.
    pub composed_bound: SimDuration,
}

impl ChainGrant {
    /// The granted per-hop poll intervals, in path order.
    pub fn hop_intervals(&self) -> Vec<SimDuration> {
        self.hops.iter().map(|h| h.x).collect()
    }
}

/// Why a chain was rejected. Any rejection leaves every piconet's ledger
/// byte-identical to its pre-call state.
#[derive(Clone, Debug, PartialEq)]
pub enum ChainAdmissionError {
    /// The request itself is malformed (empty path, unknown piconet,
    /// duplicate flow or chain id, …).
    BadRequest(String),
    /// The rate-independent terms alone (residences, poll delays,
    /// absences) consume the deadline: no finite rates can meet it.
    DeadlineTooTight {
        /// The requested end-to-end deadline.
        deadline: SimDuration,
        /// The fixed terms that already exceed (or equal) it.
        fixed: SimDuration,
    },
    /// A traversed piconet rejected its hop; hops admitted before it were
    /// rolled back.
    HopRejected {
        /// Index of the rejected hop in the request path.
        hop: usize,
        /// The rejected hop flow.
        flow: FlowId,
        /// The rejecting piconet.
        piconet: PiconetId,
        /// The piconet-level rejection.
        error: AdmissionError,
    },
    /// Every hop was individually admissible, but the actual granted
    /// schedule composes to a bound past the deadline (priority
    /// reshuffling raised a hop's `y`); the chain was rolled back.
    BoundExceedsDeadline {
        /// The composed bound of the would-be grant.
        composed: SimDuration,
        /// The requested deadline it misses.
        deadline: SimDuration,
    },
    /// Admitting the chain would push a previously admitted chain past
    /// *its* deadline; the new chain was rolled back.
    WouldBreakExistingChain {
        /// The id of the chain whose guarantee would be lost.
        chain: u32,
    },
    /// The hop slave's absence gap is so large that no admissible poll
    /// interval sustains even the token rate through the rendezvous
    /// schedule (`η/(x + absence) < r` for every feasible `x`).
    HopUnsustainable {
        /// Index of the unsustainable hop in the request path.
        hop: usize,
        /// The hop flow.
        flow: FlowId,
        /// Its piconet.
        piconet: PiconetId,
    },
}

impl fmt::Display for ChainAdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainAdmissionError::BadRequest(msg) => write!(f, "bad chain request: {msg}"),
            ChainAdmissionError::DeadlineTooTight { deadline, fixed } => write!(
                f,
                "chain deadline {deadline} does not exceed the fixed terms {fixed} \
                 (residences + poll delays + absence gaps)"
            ),
            ChainAdmissionError::HopRejected {
                hop,
                flow,
                piconet,
                error,
            } => write!(f, "hop {hop} ({flow} in {piconet}) rejected: {error}"),
            ChainAdmissionError::BoundExceedsDeadline { composed, deadline } => write!(
                f,
                "composed end-to-end bound {composed} exceeds the deadline {deadline}"
            ),
            ChainAdmissionError::WouldBreakExistingChain { chain } => write!(
                f,
                "admission would break the guarantee of already-admitted chain {chain}"
            ),
            ChainAdmissionError::HopUnsustainable { hop, flow, piconet } => write!(
                f,
                "hop {hop} ({flow} in {piconet}): the slave's absence gap leaves no poll \
                 interval that sustains the token rate"
            ),
        }
    }
}

impl std::error::Error for ChainAdmissionError {}

/// The physical request rate whose poll interval, stretched by the hop
/// slave's absence gap, still delivers `fluid_rate` (the presence-aware
/// Eq. 5 of the [module docs](self)): `η/(η/R − absence)`. `None` when the
/// gap alone exceeds the fluid interval — no poll plan can compensate.
fn presence_compensated_rate(eta: f64, fluid_rate: f64, absence: SimDuration) -> Option<f64> {
    let x_needed = eta / fluid_rate - absence.as_secs_f64();
    (x_needed > 0.0).then_some(eta / x_needed)
}

/// The worst-case effective fluid service rate of a hop polled at
/// `physical_rate` on a slave with the given absence gap:
/// `η/(x + absence)`.
fn effective_fluid_rate(eta: f64, physical_rate: f64, absence: SimDuration) -> f64 {
    eta / (eta / physical_rate + absence.as_secs_f64())
}

/// Multi-hop admission over one [`AdmissionController`] per piconet; see
/// the [module docs](self) for the algorithm.
///
/// # Examples
///
/// Two Fig. 4 piconets joined by a bridge (20 ms cycle, half in each):
/// a 64 kbps chain over two hops admits against a 150 ms deadline with a
/// provable composed bound, and an impossible 15 ms deadline is rejected
/// without touching either piconet's ledger:
///
/// ```
/// use btgs_baseband::{AmAddr, Direction, PiconetId};
/// use btgs_core::{
///     AdmissionConfig, ChainHopSpec, ChainRequest, ScatternetAdmissionController,
/// };
/// use btgs_des::SimDuration;
/// use btgs_gs::TokenBucketSpec;
/// use btgs_traffic::FlowId;
///
/// let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
/// let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 2);
/// let hop = |p: u16, flow: u32, slave: u8, dir, residence_ms: u64| ChainHopSpec {
///     piconet: PiconetId(p),
///     flow: FlowId(flow),
///     slave: AmAddr::new(slave).unwrap(),
///     direction: dir,
///     residence_in: SimDuration::from_millis(residence_ms),
///     absence: SimDuration::from_millis(10),
/// };
/// let request = ChainRequest {
///     id: 1,
///     tspec,
///     deadline: SimDuration::from_millis(150),
///     hops: vec![
///         hop(0, 901, 6, Direction::MasterToSlave, 0),
///         hop(1, 902, 7, Direction::SlaveToMaster, 10),
///     ],
/// };
/// let grant = ctl.admit_chain(request.clone()).unwrap().clone();
/// assert!(grant.composed_bound <= SimDuration::from_millis(150));
///
/// let hopeless = ChainRequest { id: 2, deadline: SimDuration::from_millis(15), ..request };
/// assert!(ctl.admit_chain(hopeless).is_err());
/// # Ok::<(), btgs_traffic::InvalidTSpec>(())
/// ```
#[derive(Clone, Debug)]
pub struct ScatternetAdmissionController {
    config: crate::admission::AdmissionConfig,
    piconets: Vec<AdmissionController>,
    chains: Vec<ChainGrant>,
}

impl ScatternetAdmissionController {
    /// A controller over `piconets` empty per-piconet ledgers sharing one
    /// configuration.
    pub fn new(config: crate::admission::AdmissionConfig, piconets: usize) -> Self {
        ScatternetAdmissionController {
            piconets: (0..piconets)
                .map(|_| AdmissionController::new(config.clone()))
                .collect(),
            config,
            chains: Vec::new(),
        }
    }

    /// The per-piconet controller of `pic` (read access for reports).
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn piconet(&self, pic: PiconetId) -> &AdmissionController {
        &self.piconets[pic.index()]
    }

    /// Number of piconets under this controller.
    pub fn num_piconets(&self) -> usize {
        self.piconets.len()
    }

    /// The admitted chains, in admission order.
    pub fn chains(&self) -> &[ChainGrant] {
        &self.chains
    }

    /// Admits a piconet-local (single-hop) GS flow, re-verifying that no
    /// admitted chain loses its guarantee; on any failure the ledger is
    /// rolled back and unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`ChainAdmissionError::HopRejected`] (hop 0) when the
    /// piconet rejects the flow, or
    /// [`ChainAdmissionError::WouldBreakExistingChain`] when an admitted
    /// chain's recomposed bound would miss its deadline.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn try_admit_local(
        &mut self,
        pic: PiconetId,
        request: GsRequest,
    ) -> Result<&AdmissionOutcome, ChainAdmissionError> {
        let flow = request.id;
        self.piconets[pic.index()]
            .try_admit(request)
            .map_err(|error| ChainAdmissionError::HopRejected {
                hop: 0,
                flow,
                piconet: pic,
                error,
            })?;
        if let Err(e) = self.verify_admitted_chains() {
            self.piconets[pic.index()].release(flow);
            return Err(e);
        }
        // The admission may have shifted priorities within every chain's
        // deadline; keep the stored grants provable under the new
        // schedule.
        self.refresh_chain_bounds();
        Ok(self.piconets[pic.index()].outcome())
    }

    /// Admits a chain end to end, or rejects it leaving every ledger
    /// byte-identical; see the [module docs](self) for the three phases.
    ///
    /// # Errors
    ///
    /// See [`ChainAdmissionError`]; every error implies full rollback.
    pub fn admit_chain(
        &mut self,
        request: ChainRequest,
    ) -> Result<&ChainGrant, ChainAdmissionError> {
        self.validate(&request)?;
        let eta = min_poll_efficiency(
            &self.config.sar,
            request.tspec.min_policed_unit(),
            request.tspec.max_packet(),
            &self.config.allowed_types,
        );

        // Phase 1 (budgeting): learn each hop's poll delay y from a trial
        // pass at the loosest sustainable rate on cloned ledgers, then
        // split what the fixed terms leave of the deadline into per-hop
        // queueing budgets and invert them into rate requests.
        let candidate_ys = self.trial_ys(&request, eta)?;
        let residence_total = request
            .hops
            .iter()
            .fold(SimDuration::ZERO, |acc, h| acc + h.residence_in);
        let fixed = request
            .hops
            .iter()
            .zip(&candidate_ys)
            .fold(residence_total, |acc, (h, y)| acc + *y + h.absence);
        let budget = split_queueing_budget(request.deadline, fixed, request.hops.len()).ok_or(
            ChainAdmissionError::DeadlineTooTight {
                deadline: request.deadline,
                fixed,
            },
        )?;
        let token = request.tspec.token_rate();
        let mut rates: Vec<f64> = Vec::with_capacity(request.hops.len());
        for (i, (h, y)) in request.hops.iter().zip(&candidate_ys).enumerate() {
            let terms = ErrorTerms::new(eta, *y + h.absence);
            let target = budget + *y + h.absence;
            // An unreachable target here means the budget itself is below
            // the serialization floor; the final verification rejects such
            // chains, so fall back to the hardest admissible request
            // instead of failing early.
            let fluid = required_rate(&request.tspec, target, terms)
                .map(|r| r.max(token))
                .unwrap_or(f64::INFINITY);
            // Presence-aware Eq. 5 (module docs): the *physical* interval
            // shrinks by the absence gap so the effective service still
            // delivers the fluid rate; Eq. 9 then caps the physical rate
            // at eta/y (requesting beyond it would be rejected outright,
            // while the cap — with its larger bound — may still fit the
            // deadline thanks to the floor rounding in the equal split).
            let physical_floor = presence_compensated_rate(eta, token, h.absence)
                .filter(|&r| r <= max_admissible_rate(eta, *y))
                .ok_or(ChainAdmissionError::HopUnsustainable {
                    hop: i,
                    flow: h.flow,
                    piconet: h.piconet,
                })?;
            let physical = presence_compensated_rate(eta, fluid, h.absence)
                .unwrap_or(f64::INFINITY)
                .min(max_admissible_rate(eta, *y))
                .max(physical_floor);
            rates.push(physical);
        }

        // Phase 2 (admission): all-or-nothing across the traversed
        // piconets, rolling back on the first rejection.
        let mut admitted: Vec<(PiconetId, FlowId)> = Vec::with_capacity(request.hops.len());
        for (i, (h, &rate)) in request.hops.iter().zip(&rates).enumerate() {
            let gs_request = GsRequest::new(h.flow, h.slave, h.direction, request.tspec, rate);
            if let Err(error) = self.piconets[h.piconet.index()].try_admit(gs_request) {
                self.rollback(&admitted);
                return Err(ChainAdmissionError::HopRejected {
                    hop: i,
                    flow: h.flow,
                    piconet: h.piconet,
                    error,
                });
            }
            admitted.push((h.piconet, h.flow));
        }

        // Phase 3 (verification): recompose from the schedule actually
        // granted — Audsley's search may have placed hops at different
        // priorities than the trial pass assumed.
        let grant = match self.compose_grant(&request, eta, &rates) {
            Ok(grant) => grant,
            Err(e) => {
                self.rollback(&admitted);
                return Err(e);
            }
        };
        if let Err(e) = self.verify_admitted_chains() {
            self.rollback(&admitted);
            return Err(e);
        }
        // The new hops may have shifted earlier chains' priorities within
        // their deadlines; re-derive their stored grants before adding the
        // new one (itself composed from the current schedule).
        self.refresh_chain_bounds();
        self.chains.push(grant);
        Ok(self.chains.last().expect("just pushed"))
    }

    /// Releases an admitted chain: every hop leaves its piconet's ledger
    /// and the remaining chains' grants are recomposed (their bounds can
    /// only tighten when load leaves).
    ///
    /// # Panics
    ///
    /// Panics if no admitted chain has this id.
    pub fn release_chain(&mut self, id: u32) {
        let pos = self
            .chains
            .iter()
            .position(|c| c.id == id)
            .unwrap_or_else(|| panic!("chain {id} is not admitted"));
        let grant = self.chains.remove(pos);
        for hop in &grant.hops {
            self.piconets[hop.piconet.index()].release(hop.flow);
        }
        self.refresh_chain_bounds();
    }

    fn validate(&self, request: &ChainRequest) -> Result<(), ChainAdmissionError> {
        if request.hops.is_empty() {
            return Err(ChainAdmissionError::BadRequest(
                "a chain needs at least one hop".into(),
            ));
        }
        if self.chains.iter().any(|c| c.id == request.id) {
            return Err(ChainAdmissionError::BadRequest(format!(
                "chain id {} is already admitted",
                request.id
            )));
        }
        for (i, h) in request.hops.iter().enumerate() {
            if h.piconet.index() >= self.piconets.len() {
                return Err(ChainAdmissionError::BadRequest(format!(
                    "hop {i} names unknown piconet {}",
                    h.piconet
                )));
            }
            if request.hops[..i].iter().any(|o| o.flow == h.flow) {
                return Err(ChainAdmissionError::BadRequest(format!(
                    "hop flow {} appears twice in the path",
                    h.flow
                )));
            }
        }
        Ok(())
    }

    /// The per-hop poll delays `y` of a trial admission at the loosest
    /// sustainable rate — the token rate, presence-compensated for the
    /// hop slave's absence gap — on cloned ledgers (`self` is untouched).
    /// That rate is the loosest request whose effective service still
    /// reaches the token rate, so a trial rejection here means the hop
    /// cannot be admitted at any sustainable rate.
    fn trial_ys(
        &self,
        request: &ChainRequest,
        eta: f64,
    ) -> Result<Vec<SimDuration>, ChainAdmissionError> {
        let mut trial = self.piconets.clone();
        let mut ys = Vec::with_capacity(request.hops.len());
        for (i, h) in request.hops.iter().enumerate() {
            let trial_rate = presence_compensated_rate(eta, request.tspec.token_rate(), h.absence)
                .ok_or(ChainAdmissionError::HopUnsustainable {
                    hop: i,
                    flow: h.flow,
                    piconet: h.piconet,
                })?;
            let gs_request =
                GsRequest::new(h.flow, h.slave, h.direction, request.tspec, trial_rate);
            let outcome = trial[h.piconet.index()]
                .try_admit(gs_request)
                .map_err(|error| ChainAdmissionError::HopRejected {
                    hop: i,
                    flow: h.flow,
                    piconet: h.piconet,
                    error,
                })?;
            let entity = outcome
                .entity_of(h.flow)
                .expect("the just-admitted flow has an entity");
            ys.push(entity.y);
        }
        Ok(ys)
    }

    /// Rolls already-admitted hops back out of their piconets, restoring
    /// byte-identical ledgers (canonical controller ordering).
    fn rollback(&mut self, admitted: &[(PiconetId, FlowId)]) {
        for (pic, flow) in admitted.iter().rev() {
            self.piconets[pic.index()].release(*flow);
        }
    }

    /// Composes a [`ChainGrant`] from the schedule currently in force.
    fn compose_grant(
        &self,
        request: &ChainRequest,
        eta: f64,
        rates: &[f64],
    ) -> Result<ChainGrant, ChainAdmissionError> {
        let mut hop_grants = Vec::with_capacity(request.hops.len());
        let mut hop_bounds = Vec::with_capacity(request.hops.len());
        for (h, &rate) in request.hops.iter().zip(rates) {
            let outcome = self.piconets[h.piconet.index()].outcome();
            let entity = outcome
                .entity_of(h.flow)
                .expect("admitted hops have entities");
            let terms = ErrorTerms::new(eta, entity.y + h.absence);
            // The bound holds at the worst-case *effective* service rate
            // through the presence schedule, not the physical poll rate;
            // phase 1 guaranteed it reaches the token rate (the max only
            // absorbs float ulps of the round trip).
            let effective =
                effective_fluid_rate(eta, rate, h.absence).max(request.tspec.token_rate());
            let bound = delay_bound(&request.tspec, effective, terms)
                .expect("effective rates are clamped to the token rate");
            hop_bounds.push(bound);
            hop_grants.push(HopGrant {
                flow: h.flow,
                piconet: h.piconet,
                rate,
                x: poll_interval(eta, rate),
                y: entity.y,
                absence: h.absence,
                bound,
            });
        }
        let residences: Vec<SimDuration> = request.hops.iter().map(|h| h.residence_in).collect();
        let composed_bound = compose_e2e_bound(&hop_bounds, &residences);
        if composed_bound > request.deadline {
            return Err(ChainAdmissionError::BoundExceedsDeadline {
                composed: composed_bound,
                deadline: request.deadline,
            });
        }
        Ok(ChainGrant {
            id: request.id,
            deadline: request.deadline,
            hops: hop_grants,
            residence_total: residences.iter().fold(SimDuration::ZERO, |acc, &r| acc + r),
            composed_bound,
        })
    }

    /// Recomposes every admitted chain's bound from the schedule currently
    /// in force and checks it against its deadline.
    fn verify_admitted_chains(&self) -> Result<(), ChainAdmissionError> {
        for chain in &self.chains {
            if self.recomposed_bound(chain) > chain.deadline {
                return Err(ChainAdmissionError::WouldBreakExistingChain { chain: chain.id });
            }
        }
        Ok(())
    }

    /// A chain's grant recomputed against the schedule currently in force
    /// (priorities — and thus `y` — may have shifted since admission):
    /// per-hop `y` and `bound` refreshed, composed bound re-summed. Rates,
    /// intervals, absences, and residences are admission-time constants.
    fn recomposed_grant(&self, chain: &ChainGrant) -> ChainGrant {
        let mut refreshed = chain.clone();
        let mut total = chain.residence_total;
        for hop in &mut refreshed.hops {
            let controller = &self.piconets[hop.piconet.index()];
            let outcome = controller.outcome();
            let entity = outcome
                .entity_of(hop.flow)
                .expect("admitted hops stay in their ledgers");
            let grant = outcome.grant(hop.flow).expect("admitted hops have grants");
            let terms = ErrorTerms::new(grant.eta_min, entity.y + hop.absence);
            let spec = controller
                .accepted()
                .iter()
                .find(|r| r.id == hop.flow)
                .expect("admitted hops stay accepted");
            let effective = effective_fluid_rate(grant.eta_min, hop.rate, hop.absence)
                .max(spec.tspec.token_rate());
            hop.y = entity.y;
            hop.bound = delay_bound(&spec.tspec, effective, terms)
                .expect("effective rates are clamped to the token rate");
            total += hop.bound;
        }
        refreshed.composed_bound = total;
        refreshed
    }

    /// A chain's end-to-end bound under the schedule currently in force.
    fn recomposed_bound(&self, chain: &ChainGrant) -> SimDuration {
        self.recomposed_grant(chain).composed_bound
    }

    /// Re-derives every stored grant from the schedule currently in force,
    /// so [`chains`](ScatternetAdmissionController::chains) always reports
    /// currently-provable bounds. Called after every successful mutation —
    /// a later admission may legally *raise* a hop's `y` (as long as every
    /// deadline still holds, enforced by
    /// [`verify_admitted_chains`](Self::verify_admitted_chains) first),
    /// and a release can lower it.
    fn refresh_chain_bounds(&mut self) {
        let refreshed: Vec<ChainGrant> = self
            .chains
            .iter()
            .map(|c| self.recomposed_grant(c))
            .collect();
        self.chains = refreshed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn tspec() -> TokenBucketSpec {
        TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap()
    }

    /// A textual fingerprint of every piconet ledger: accepted requests
    /// plus the full schedule. Rollback must keep this byte-identical.
    fn digest(ctl: &ScatternetAdmissionController) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in 0..ctl.num_piconets() {
            let c = ctl.piconet(PiconetId(p as u16));
            let _ = write!(out, "{:?}|{:?};", c.accepted(), c.outcome());
        }
        out
    }

    /// Seeds piconet `pic` with `n` paper-style entities (S1.., uplink,
    /// token rate).
    fn seed_entities(ctl: &mut ScatternetAdmissionController, pic: u16, n: u8) {
        for k in 1..=n {
            ctl.try_admit_local(
                PiconetId(pic),
                GsRequest::new(
                    FlowId(100 * pic as u32 + k as u32),
                    s(k),
                    Direction::SlaveToMaster,
                    tspec(),
                    8_800.0,
                ),
            )
            .unwrap();
        }
    }

    fn hop(p: u16, flow: u32, slave: u8, dir: Direction) -> ChainHopSpec {
        ChainHopSpec {
            piconet: PiconetId(p),
            flow: FlowId(flow),
            slave: s(slave),
            direction: dir,
            residence_in: SimDuration::ZERO,
            absence: SimDuration::ZERO,
        }
    }

    /// A 2.5 ms absence gap (5 ms rendezvous cycle, even split).
    fn gap() -> SimDuration {
        SimDuration::from_micros(2_500)
    }

    #[test]
    fn two_piconet_chain_composes_per_hop_bounds_and_residence() {
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 2);
        seed_entities(&mut ctl, 0, 2);
        seed_entities(&mut ctl, 1, 2);
        let mut h0 = hop(0, 901, 6, Direction::MasterToSlave);
        h0.absence = gap();
        let mut h1 = hop(1, 902, 7, Direction::SlaveToMaster);
        h1.absence = gap();
        h1.residence_in = gap();
        let grant = ctl
            .admit_chain(ChainRequest {
                id: 1,
                tspec: tspec(),
                deadline: ms(150),
                hops: vec![h0, h1],
            })
            .unwrap()
            .clone();
        // Third entity in each piconet: y = 11.25 ms; D = y + 2.5 ms
        // absence. The generous budget keeps the *fluid* rate at the
        // token rate, but the granted physical interval shrinks by the
        // absence gap: x = 16.36 − 2.5 = 13.86 ms, so the worst-case
        // effective service through the rendezvous schedule is still
        // 8800 B/s.
        assert_eq!(grant.residence_total, gap());
        assert_eq!(grant.hops.len(), 2);
        for h in &grant.hops {
            assert_eq!(h.y, SimDuration::from_micros(11_250));
            assert!(h.rate > 10_386.0 && h.rate < 10_388.0, "{}", h.rate);
            assert_eq!(h.x.as_nanos(), 13_863_636);
            // Eq. 1 at the effective 8800 B/s: 320/8800 s + 13.75 ms.
            assert_eq!(h.bound.as_micros(), 50_113);
        }
        assert_eq!(
            grant.composed_bound,
            compose_e2e_bound(&[grant.hops[0].bound, grant.hops[1].bound], &[gap()])
        );
        assert!(grant.composed_bound <= ms(150));
        assert_eq!(
            grant.hop_intervals(),
            vec![grant.hops[0].x, grant.hops[1].x]
        );
        // Both ledgers now carry their hop.
        assert!(ctl
            .piconet(PiconetId(0))
            .outcome()
            .grant(FlowId(901))
            .is_some());
        assert!(ctl
            .piconet(PiconetId(1))
            .outcome()
            .grant(FlowId(902))
            .is_some());
        assert_eq!(ctl.chains().len(), 1);
    }

    #[test]
    fn deadline_below_fixed_terms_is_rejected_untouched() {
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 2);
        seed_entities(&mut ctl, 0, 2);
        seed_entities(&mut ctl, 1, 2);
        let before = digest(&ctl);
        let mut h0 = hop(0, 901, 6, Direction::MasterToSlave);
        h0.absence = gap();
        let mut h1 = hop(1, 902, 7, Direction::SlaveToMaster);
        h1.absence = gap();
        h1.residence_in = gap();
        // Fixed terms: 2.5 + (11.25+2.5) + (11.25+2.5) = 30 ms > 20 ms.
        let err = ctl
            .admit_chain(ChainRequest {
                id: 1,
                tspec: tspec(),
                deadline: ms(20),
                hops: vec![h0, h1],
            })
            .unwrap_err();
        match err {
            ChainAdmissionError::DeadlineTooTight { deadline, fixed } => {
                assert_eq!(deadline, ms(20));
                assert_eq!(fixed, ms(30));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(digest(&ctl), before, "rejection must not touch any ledger");
        assert!(ctl.chains().is_empty());
    }

    #[test]
    fn paper_loaded_piconet_cannot_guarantee_a_half_duty_bridge_hop() {
        // With the full paper population (entities at x ≈ 16.36 ms) a
        // 10 ms absence gap demands a 6.36 ms physical interval — below
        // any achievable y — and the hop is rejected without residue.
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 1);
        seed_entities(&mut ctl, 0, 3);
        let before = digest(&ctl);
        let mut h0 = hop(0, 901, 6, Direction::SlaveToMaster);
        h0.absence = ms(10);
        let err = ctl
            .admit_chain(ChainRequest {
                id: 1,
                tspec: tspec(),
                deadline: ms(500),
                hops: vec![h0],
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                ChainAdmissionError::HopRejected { hop: 0, .. }
                    | ChainAdmissionError::HopUnsustainable { hop: 0, .. }
            ),
            "{err:?}"
        );
        assert_eq!(digest(&ctl), before);
        // An absence gap at (or beyond) the token interval is
        // unsustainable even in an empty piconet.
        let mut empty = ScatternetAdmissionController::new(AdmissionConfig::paper(), 1);
        let mut h = hop(0, 902, 6, Direction::SlaveToMaster);
        h.absence = SimDuration::from_micros(16_364);
        let err = empty
            .admit_chain(ChainRequest {
                id: 1,
                tspec: tspec(),
                deadline: ms(500),
                hops: vec![h],
            })
            .unwrap_err();
        assert!(
            matches!(err, ChainAdmissionError::HopUnsustainable { hop: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn hop_rejection_rolls_back_earlier_piconets_exactly() {
        // Master-relay chain: two hops in piconet 0. The tight deadline
        // clamps both hop rates to their Eq. 9 maxima; hop 0 then admits
        // at x = 11.25 ms, which makes hop 1 infeasible at every priority
        // — the rejection at hop k must leave the k earlier admissions
        // rolled back and every ledger byte-identical.
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 2);
        seed_entities(&mut ctl, 0, 2);
        seed_entities(&mut ctl, 1, 3);
        let before = digest(&ctl);
        let err = ctl
            .admit_chain(ChainRequest {
                id: 1,
                tspec: tspec(),
                deadline: ms(50),
                hops: vec![
                    hop(0, 901, 6, Direction::SlaveToMaster),
                    hop(0, 902, 7, Direction::MasterToSlave),
                ],
            })
            .unwrap_err();
        match err {
            ChainAdmissionError::HopRejected {
                hop, flow, piconet, ..
            } => {
                assert_eq!(hop, 1);
                assert_eq!(flow, FlowId(902));
                assert_eq!(piconet, PiconetId(0));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            digest(&ctl),
            before,
            "hop-1 rejection left residue from the admitted hop 0"
        );
        assert!(ctl.chains().is_empty());
    }

    #[test]
    fn clamped_rates_past_the_deadline_are_rejected_with_rollback() {
        // Single hop whose Eq. 9 rate cap (12.8 kB/s at y = 11.25 ms)
        // cannot reach the 30 ms deadline: every piconet admits, the
        // composed bound (36.25 ms) misses, and the grant is rolled back.
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 1);
        seed_entities(&mut ctl, 0, 2);
        let before = digest(&ctl);
        let err = ctl
            .admit_chain(ChainRequest {
                id: 1,
                tspec: tspec(),
                deadline: ms(30),
                hops: vec![hop(0, 901, 6, Direction::SlaveToMaster)],
            })
            .unwrap_err();
        match err {
            ChainAdmissionError::BoundExceedsDeadline { composed, deadline } => {
                assert_eq!(deadline, ms(30));
                assert_eq!(composed, SimDuration::from_micros(36_250));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(digest(&ctl), before);
    }

    #[test]
    fn release_chain_restores_preadmission_ledgers() {
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 2);
        seed_entities(&mut ctl, 0, 3);
        seed_entities(&mut ctl, 1, 3);
        let before = digest(&ctl);
        ctl.admit_chain(ChainRequest {
            id: 7,
            tspec: tspec(),
            deadline: ms(200),
            hops: vec![
                hop(0, 901, 6, Direction::MasterToSlave),
                hop(1, 902, 7, Direction::SlaveToMaster),
            ],
        })
        .unwrap();
        assert_ne!(digest(&ctl), before);
        ctl.release_chain(7);
        assert_eq!(digest(&ctl), before);
        assert!(ctl.chains().is_empty());
    }

    #[test]
    #[should_panic(expected = "not admitted")]
    fn releasing_unknown_chain_panics() {
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 1);
        ctl.release_chain(3);
    }

    #[test]
    fn local_admission_that_breaks_a_chain_is_rejected() {
        // One seeded entity (S1) plus a token-rate chain hop: y_hop =
        // 7.5 ms, composed bound ≈ 43.86 ms, admitted with zero slack.
        // A local flow at x = 10 ms cannot sit at the bottom priority
        // (y would be 11.25 ms) but fits mid-schedule — pushing the hop
        // down to y = 15 ms and its chain past the deadline. The local
        // admission must be refused and rolled back.
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 1);
        seed_entities(&mut ctl, 0, 1);
        let grant = ctl
            .admit_chain(ChainRequest {
                id: 1,
                tspec: tspec(),
                deadline: SimDuration::from_nanos(43_863_636),
                hops: vec![hop(0, 901, 6, Direction::SlaveToMaster)],
            })
            .unwrap()
            .clone();
        assert_eq!(grant.hops[0].y, SimDuration::from_micros(7_500));
        let before = digest(&ctl);
        let err = ctl
            .try_admit_local(
                PiconetId(0),
                GsRequest::new(
                    FlowId(950),
                    s(4),
                    Direction::SlaveToMaster,
                    tspec(),
                    14_400.0, // x = 10 ms
                ),
            )
            .unwrap_err();
        assert_eq!(
            err,
            ChainAdmissionError::WouldBreakExistingChain { chain: 1 }
        );
        assert_eq!(digest(&ctl), before);
        // A gentler local flow (token rate, lands at the bottom) admits
        // without disturbing the chain.
        ctl.try_admit_local(
            PiconetId(0),
            GsRequest::new(
                FlowId(951),
                s(5),
                Direction::SlaveToMaster,
                tspec(),
                8_800.0,
            ),
        )
        .unwrap();
        assert_eq!(ctl.chains()[0].composed_bound, grant.composed_bound);
    }

    #[test]
    fn validation_rejects_malformed_requests() {
        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 1);
        let empty = ChainRequest {
            id: 1,
            tspec: tspec(),
            deadline: ms(100),
            hops: vec![],
        };
        assert!(matches!(
            ctl.admit_chain(empty),
            Err(ChainAdmissionError::BadRequest(_))
        ));
        let unknown_pic = ChainRequest {
            id: 1,
            tspec: tspec(),
            deadline: ms(100),
            hops: vec![hop(3, 901, 6, Direction::SlaveToMaster)],
        };
        assert!(matches!(
            ctl.admit_chain(unknown_pic),
            Err(ChainAdmissionError::BadRequest(_))
        ));
        let dup_flow = ChainRequest {
            id: 1,
            tspec: tspec(),
            deadline: ms(100),
            hops: vec![
                hop(0, 901, 6, Direction::SlaveToMaster),
                hop(0, 901, 7, Direction::MasterToSlave),
            ],
        };
        assert!(matches!(
            ctl.admit_chain(dup_flow),
            Err(ChainAdmissionError::BadRequest(_))
        ));
        // Duplicate chain ids.
        ctl.admit_chain(ChainRequest {
            id: 1,
            tspec: tspec(),
            deadline: ms(100),
            hops: vec![hop(0, 901, 6, Direction::SlaveToMaster)],
        })
        .unwrap();
        let dup_chain = ChainRequest {
            id: 1,
            tspec: tspec(),
            deadline: ms(100),
            hops: vec![hop(0, 902, 7, Direction::SlaveToMaster)],
        };
        assert!(matches!(
            ctl.admit_chain(dup_chain),
            Err(ChainAdmissionError::BadRequest(_))
        ));
    }
}
