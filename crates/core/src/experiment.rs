//! Experiment entry points for the paper's evaluation (§4).
//!
//! [`sweep_fig5`] fans its requirement points across worker threads via
//! [`ExperimentRunner`]; every point derives all randomness from its own
//! seed, so the sweep's output is identical to a sequential run.

use crate::runner::ExperimentRunner;
use crate::scenario::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs_baseband::AmAddr;
use btgs_des::{SimDuration, SimTime};
use btgs_metrics::SweepSeries;
use btgs_piconet::RunReport;

/// One point of the Fig. 5 sweep: the scenario, its run report, and the
/// per-slave throughputs.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The requested delay bound of this point.
    pub delay_requirement: SimDuration,
    /// The derived scenario.
    pub scenario: PaperScenario,
    /// The simulation result.
    pub report: RunReport,
}

impl SweepPoint {
    /// Throughput of slave `n` (1..=7) in kbit/s.
    pub fn slave_kbps(&self, n: u8) -> f64 {
        self.report
            .slave_throughput_kbps(AmAddr::new(n).expect("slave 1..=7"))
    }
}

/// Runs one scenario point.
///
/// # Panics
///
/// Panics if the scenario fails to build or run — a bug, not an input
/// condition, for the paper's parameter ranges.
pub fn run_point(
    delay_requirement: SimDuration,
    seed: u64,
    horizon: SimTime,
    kind: PollerKind,
) -> SweepPoint {
    let scenario = PaperScenario::build(PaperScenarioParams {
        delay_requirement,
        seed,
        ..Default::default()
    });
    let report = scenario
        .run(kind, horizon)
        .expect("paper scenario must simulate");
    SweepPoint {
        delay_requirement,
        scenario,
        report,
    }
}

/// Reproduces the paper's Fig. 5: per-slave throughput as a function of the
/// GS delay requirement.
///
/// Returns a [`SweepSeries`] whose x-axis is the delay requirement in
/// seconds and whose seven series are the slaves' throughputs in kbit/s,
/// labelled as in the paper's legend.
pub fn sweep_fig5(
    requirements: &[SimDuration],
    seed: u64,
    horizon: SimTime,
    kind: PollerKind,
) -> SweepSeries {
    let mut series = SweepSeries::new("Delay requirement [s]");
    for n in 1..=7u8 {
        series.add_series(PaperScenario::slave_legend(AmAddr::new(n).expect("1..=7")));
    }
    // One independent, deterministic simulation per requirement: fan the
    // points across threads and reassemble them in sweep order.
    let points =
        ExperimentRunner::new().run(requirements, |&dreq| run_point(dreq, seed, horizon, kind));
    for point in points {
        let ys: Vec<f64> = (1..=7u8).map(|n| point.slave_kbps(n)).collect();
        series.push_x(point.delay_requirement.as_secs_f64(), &ys);
    }
    series
}

/// The delay requirements of the paper's Fig. 5 x-axis: 28–46 ms.
pub fn fig5_requirements(step_ms: u64) -> Vec<SimDuration> {
    assert!(step_ms > 0, "step must be positive");
    (28..=46)
        .step_by(step_ms as usize)
        .map(SimDuration::from_millis)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::LogicalChannel;

    #[test]
    fn single_point_runs_and_gs_flows_hit_64kbps() {
        let point = run_point(
            SimDuration::from_millis(40),
            7,
            SimTime::from_secs(12),
            PollerKind::PfpGs,
        );
        // Each GS flow delivers its full 64 kbps.
        for id in point.report.flows_on(LogicalChannel::GuaranteedService) {
            let kbps = point.report.throughput_kbps(id);
            assert!(
                (kbps - 64.0).abs() < 2.0,
                "{id}: {kbps} kbps (expected ~64)"
            );
        }
        // Per-slave: S2 carries two GS flows.
        assert!(
            (point.slave_kbps(2) - 128.0).abs() < 4.0,
            "{}",
            point.slave_kbps(2)
        );
    }

    #[test]
    fn delay_bounds_hold_in_the_guaranteed_region() {
        let point = run_point(
            SimDuration::from_millis(40),
            3,
            SimTime::from_secs(12),
            PollerKind::PfpGs,
        );
        for plan in &point.scenario.gs_plans {
            assert!(plan.guaranteed);
            let r = point.report.flow(plan.request.id);
            assert!(r.delay.count() > 0, "{} saw no packets", plan.request.id);
            let max = r.delay.max().expect("non-empty");
            assert!(
                max <= plan.achievable_bound,
                "{}: max delay {} exceeds bound {}",
                plan.request.id,
                max,
                plan.achievable_bound
            );
        }
    }

    #[test]
    fn fig5_requirement_grid() {
        let grid = fig5_requirements(2);
        assert_eq!(grid.first().copied(), Some(SimDuration::from_millis(28)));
        assert_eq!(grid.last().copied(), Some(SimDuration::from_millis(46)));
        assert_eq!(grid.len(), 10);
    }

    #[test]
    fn mini_sweep_shape() {
        // A small, fast sweep: BE throughput must not increase when the
        // requirement tightens, and GS stays flat.
        let reqs = [SimDuration::from_millis(30), SimDuration::from_millis(44)];
        let series = sweep_fig5(&reqs, 5, SimTime::from_secs(8), PollerKind::PfpGs);
        let s1 = series.series("S1 (GS) flow 1").unwrap();
        assert!((s1[0] - s1[1]).abs() < 3.0, "GS throughput should be flat");
        let s7 = series.series("S7 (BE) flow 11+12").unwrap();
        assert!(
            s7[0] <= s7[1] + 2.0,
            "BE throughput should not grow at tighter bounds: {s7:?}"
        );
    }
}
