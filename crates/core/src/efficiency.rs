//! Poll efficiency (the paper's Eq. 4).
//!
//! A poll moves one baseband segment per direction, so the number of bytes a
//! poll moves depends on how the flow's packets segment. The *poll
//! efficiency* of packet size `L` is `eta(L) = L / n(L)` bytes per poll,
//! where `n(L)` is the segment count under the flow's segmentation policy
//! and allowed packet types. The minimum over the flow's packet size range
//! `[m, M]` — `eta_min` (Eq. 4) — is what the poll interval and the
//! exported `C` error term must be provisioned for.

use btgs_baseband::PacketType;
use btgs_piconet::{segment_count, SegmentationPolicy};

/// Poll efficiency of one packet size: `L / n(L)` bytes per poll.
///
/// # Panics
///
/// Panics if `size` is zero or `allowed` has no data-bearing type.
///
/// # Examples
///
/// ```
/// use btgs_core::poll_efficiency;
/// use btgs_piconet::MaxFirstPolicy;
/// use btgs_baseband::PacketType;
///
/// let allowed = [PacketType::Dh1, PacketType::Dh3];
/// // One DH3 carries the whole 144-byte packet: 144 bytes/poll.
/// assert_eq!(poll_efficiency(&MaxFirstPolicy, 144, &allowed), 144.0);
/// // 184 bytes need DH3+DH1: two polls for 184 bytes = 92 bytes/poll.
/// assert_eq!(poll_efficiency(&MaxFirstPolicy, 184, &allowed), 92.0);
/// ```
pub fn poll_efficiency<P: SegmentationPolicy + ?Sized>(
    policy: &P,
    size: u32,
    allowed: &[PacketType],
) -> f64 {
    size as f64 / segment_count(policy, size, allowed) as f64
}

/// The minimum poll efficiency over all packet sizes in `[min_size,
/// max_size]` — the paper's Eq. 4:
/// `eta_min = min_{m <= L <= M} L / n(L)`.
///
/// The minimum is found exactly: `n(L)` is a step function of `L`, and
/// within a run of constant `n`, `L/n` is increasing — so only the sizes
/// right after each segment-count step (plus `min_size` itself) can attain
/// the minimum.
///
/// # Panics
///
/// Panics if `min_size` is zero, `min_size > max_size`, or `allowed` has no
/// data-bearing type.
///
/// # Examples
///
/// The paper's evaluation: sizes 144–176 B with DH1+DH3 all fit one DH3, so
/// the minimum efficiency is attained at 144 B:
///
/// ```
/// use btgs_core::min_poll_efficiency;
/// use btgs_piconet::MaxFirstPolicy;
/// use btgs_baseband::PacketType;
///
/// let allowed = [PacketType::Dh1, PacketType::Dh3];
/// let eta = min_poll_efficiency(&MaxFirstPolicy, 144, 176, &allowed);
/// assert_eq!(eta, 144.0);
/// ```
pub fn min_poll_efficiency<P: SegmentationPolicy + ?Sized>(
    policy: &P,
    min_size: u32,
    max_size: u32,
    allowed: &[PacketType],
) -> f64 {
    assert!(min_size > 0, "packet sizes must be positive");
    assert!(
        min_size <= max_size,
        "min_size {min_size} must be <= max_size {max_size}"
    );
    let mut best = poll_efficiency(policy, min_size, allowed);
    let mut n_prev = segment_count(policy, min_size, allowed);
    let mut size = min_size;
    // Walk the step function: within a constant-n run, efficiency grows
    // with L, so candidates are the first size of each run.
    while size < max_size {
        // Find the next size where n increases. n is non-decreasing and
        // bounded; exponential probing keeps this fast for wide ranges.
        let mut lo = size;
        let mut hi = size;
        let mut step = 1u32;
        loop {
            let probe = hi.saturating_add(step).min(max_size);
            if probe == hi {
                break;
            }
            if segment_count(policy, probe, allowed) > n_prev {
                hi = probe;
                break;
            }
            hi = probe;
            step = step.saturating_mul(2);
            if hi == max_size {
                break;
            }
        }
        if segment_count(policy, hi, allowed) == n_prev {
            break; // n never increases again within the range
        }
        // Binary search for the first size with the larger count.
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if segment_count(policy, mid, allowed) > n_prev {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        size = hi;
        n_prev = segment_count(policy, size, allowed);
        best = best.min(poll_efficiency(policy, size, allowed));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_piconet::MaxFirstPolicy;

    const PAPER: [PacketType; 2] = [PacketType::Dh1, PacketType::Dh3];

    /// Brute-force reference implementation.
    fn eta_min_brute(min_size: u32, max_size: u32, allowed: &[PacketType]) -> f64 {
        (min_size..=max_size)
            .map(|l| poll_efficiency(&MaxFirstPolicy, l, allowed))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn paper_eta_min_is_144() {
        assert_eq!(
            min_poll_efficiency(&MaxFirstPolicy, 144, 176, &PAPER),
            144.0
        );
    }

    #[test]
    fn minimum_sits_just_past_a_boundary() {
        // Range straddling the DH3 boundary: 184 = DH3+DH1 gives 92 B/poll,
        // the worst in [150, 200].
        let eta = min_poll_efficiency(&MaxFirstPolicy, 150, 200, &PAPER);
        assert_eq!(eta, 92.0);
    }

    #[test]
    fn single_size_range() {
        assert_eq!(min_poll_efficiency(&MaxFirstPolicy, 27, 27, &PAPER), 27.0);
        assert_eq!(min_poll_efficiency(&MaxFirstPolicy, 28, 28, &PAPER), 28.0);
    }

    #[test]
    fn matches_brute_force_on_assorted_ranges() {
        for (lo, hi) in [
            (1u32, 27u32),
            (1, 200),
            (100, 400),
            (144, 176),
            (180, 190),
            (366, 400),
            (1, 1000),
        ] {
            let fast = min_poll_efficiency(&MaxFirstPolicy, lo, hi, &PAPER);
            let brute = eta_min_brute(lo, hi, &PAPER);
            assert_eq!(fast, brute, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn dh1_only_efficiency() {
        let dh1 = [PacketType::Dh1];
        // 28 bytes over DH1: two segments, 14 B/poll.
        assert_eq!(min_poll_efficiency(&MaxFirstPolicy, 27, 28, &dh1), 14.0);
        // Wide range: worst case is 27k+1 bytes for minimal k in range.
        let eta = min_poll_efficiency(&MaxFirstPolicy, 27, 1000, &dh1);
        assert_eq!(eta, eta_min_brute(27, 1000, &dh1));
    }

    #[test]
    #[should_panic(expected = "must be <=")]
    fn inverted_range_panics() {
        let _ = min_poll_efficiency(&MaxFirstPolicy, 10, 5, &PAPER);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btgs_des::DetRng;
    use btgs_piconet::MaxFirstPolicy;

    fn arb_allowed(rng: &mut DetRng) -> Vec<PacketType> {
        let all = PacketType::ACL_DATA;
        let mut out: Vec<PacketType> = all.iter().copied().filter(|_| rng.chance(0.5)).collect();
        if out.is_empty() {
            out.push(all[rng.below(all.len() as u64) as usize]);
        }
        out
    }

    /// The optimized minimum must equal the brute-force minimum.
    #[test]
    fn matches_brute_force() {
        let mut rng = DetRng::seed_from_u64(0xEF1);
        for _ in 0..128 {
            let lo = rng.range_inclusive(1, 599) as u32;
            let width = rng.below(300) as u32;
            let allowed = arb_allowed(&mut rng);
            let hi = lo + width;
            let fast = min_poll_efficiency(&MaxFirstPolicy, lo, hi, &allowed);
            let brute = (lo..=hi)
                .map(|l| poll_efficiency(&MaxFirstPolicy, l, &allowed))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(fast, brute);
        }
    }
}
