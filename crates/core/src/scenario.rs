//! The paper's simulation scenario (Fig. 4) and its schedule derivation.
//!
//! Seven slaves form a piconet with the master:
//!
//! * **GS flows 1–4** (64 kbps voice-like): packets every 20 ms, sizes
//!   uniform in `[144, 176]` bytes. Flow 1 is S1→M, flows 2/3 are a
//!   piggybacked M→S2 / S2→M pair, flow 4 is S3→M. All four request the
//!   same delay bound.
//! * **BE flows 5–12** (fixed 176-byte packets): a downlink/uplink pair per
//!   slave at 41.6 kbps (S4), 47.2 kbps (S5), 52.8 kbps (S6) and
//!   58.4 kbps (S7) per direction.
//! * Allowed baseband types DH1 and DH3, max-first segmentation.
//!
//! The schedule is derived the way a Guaranteed Service receiver would:
//! entities take the paper's priority order (S1, S2, S3); each entity's
//! `y` follows from the entities above it (Fig. 2); each flow then requests
//! `R = (M + C) / (Dreq - D)` (Eq. 1 inverted), clamped to
//! `[r, eta_min / y]` (Eq. 9). Below `Dreq = 36.25 ms` the lower-priority
//! entities saturate — their achievable bound exceeds the request, exactly
//! why the paper's Fig. 5 x-axis extends below the strictly-guaranteed
//! region.

use crate::admission::{AdmissionOutcome, EntityPlan, FlowGrant, GsRequest};
use crate::efficiency::min_poll_efficiency;
use crate::gs_poller::GsPoller;
use crate::timing::{piconet_u, poll_interval};
use crate::ymax::{y_fixpoint, HigherEntity};
use btgs_baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
use btgs_des::{DetRng, SimDuration, SimTime};
use btgs_gs::{delay_bound, required_rate, ErrorTerms, TokenBucketSpec};
use btgs_piconet::{
    EventQueueBackend, FlowSpec, PiconetConfig, PiconetError, PiconetSim, Poller, RunReport,
    SarPolicy,
};
use btgs_pollers::PfpBePoller;
use btgs_traffic::{CbrSource, FlowId, OnOffSource, PoissonSource, Source};

/// Which poller drives a scenario run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollerKind {
    /// The paper's §4 configuration: variable-interval GS polling with
    /// PFP-BE serving the leftover slots.
    PfpGs,
    /// The fixed-interval poller of §3.1 (with PFP-BE for best effort).
    FixedGs,
    /// The variable-interval poller with a chosen improvement subset
    /// (ablation); PFP-BE serves best effort.
    Custom(crate::plan::Improvements),
}

/// How the best-effort flows of a scenario generate traffic.
///
/// The GS flows are always the paper's CBR voice model; the mix only
/// varies the *best-effort* load, the saturation-study axis the ROADMAP
/// asks for. Every variant targets the same mean rate (the Fig. 4 rates
/// times the scenario's `be_load_scale`), so the offered load is
/// comparable across mixes — only its burstiness differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BeSourceMix {
    /// Constant bit rate at the target rate (the paper's workload).
    #[default]
    Cbr,
    /// Poisson arrivals with the target mean rate.
    Poisson,
    /// Bursty on-off: exponential ON/OFF periods (mean
    /// [`BE_ONOFF_MEAN`] each), CBR at twice the target rate while ON so
    /// the long-run mean rate matches.
    OnOff,
}

impl BeSourceMix {
    /// A short stable label for tables, digests and the wire format.
    pub fn label(&self) -> &'static str {
        match self {
            BeSourceMix::Cbr => "cbr",
            BeSourceMix::Poisson => "poisson",
            BeSourceMix::OnOff => "onoff",
        }
    }

    /// The inverse of [`BeSourceMix::label`].
    pub fn from_label(label: &str) -> Option<BeSourceMix> {
        match label {
            "cbr" => Some(BeSourceMix::Cbr),
            "poisson" => Some(BeSourceMix::Poisson),
            "onoff" => Some(BeSourceMix::OnOff),
            _ => None,
        }
    }
}

/// Mean ON and OFF period of the [`BeSourceMix::OnOff`] best-effort
/// sources.
pub const BE_ONOFF_MEAN: SimDuration = SimDuration::from_millis(200);

/// Parameters of the paper scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperScenarioParams {
    /// The delay bound every GS flow requests.
    pub delay_requirement: SimDuration,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Warm-up excluded from measurements.
    pub warmup: SimDuration,
    /// Include the eight BE flows (disable for GS-only ablations).
    pub include_be: bool,
    /// Multiplier on every BE flow's Fig. 4 rate (1.0 = the paper's
    /// load); the saturation-study axis.
    pub be_load_scale: f64,
    /// How the BE flows generate traffic.
    pub be_source_mix: BeSourceMix,
    /// Arrival batching factor handed to the engine (see
    /// [`btgs_piconet::PiconetConfig::arrival_batch`]); 1 = off.
    pub arrival_batch: u32,
}

impl Default for PaperScenarioParams {
    fn default() -> Self {
        PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(40),
            seed: 1,
            warmup: SimDuration::from_secs(2),
            include_be: true,
            be_load_scale: 1.0,
            be_source_mix: BeSourceMix::Cbr,
            arrival_batch: 1,
        }
    }
}

/// The derived plan of one GS flow.
#[derive(Clone, Debug)]
pub struct GsFlowPlan {
    /// The reservation that was (effectively) requested.
    pub request: GsRequest,
    /// The entity's maximum poll delay `y` (also the exported `D`).
    pub y: SimDuration,
    /// The delay bound achievable at the granted rate.
    pub achievable_bound: SimDuration,
    /// `true` if the achievable bound meets the requested one — i.e. the
    /// flow is strictly guaranteed its request.
    pub guaranteed: bool,
}

/// BE per-direction rates of Fig. 4, in kbit/s, for slaves S4..S7.
pub const BE_RATES_KBPS: [f64; 4] = [41.6, 47.2, 52.8, 58.4];

/// GS packet size range of the scenario.
pub const GS_PACKET_RANGE: (u32, u32) = (144, 176);

/// GS packet generation interval.
pub const GS_INTERVAL: SimDuration = SimDuration::from_millis(20);

/// Fixed BE packet size.
pub const BE_PACKET_SIZE: u32 = 176;

/// A fully derived instance of the paper's Fig. 4 scenario.
#[derive(Clone, Debug)]
pub struct PaperScenario {
    /// The parameters it was built from.
    pub params: PaperScenarioParams,
    /// The piconet configuration (flows, packet types, SAR, warm-up).
    pub config: PiconetConfig,
    /// The GS schedule (entities with priorities, x, y).
    pub outcome: AdmissionOutcome,
    /// Per-GS-flow plans, in flow order 1..4.
    pub gs_plans: Vec<GsFlowPlan>,
}

fn slave(n: u8) -> AmAddr {
    AmAddr::new(n).expect("scenario slave addresses are 1..=7")
}

/// Derives the Guaranteed Service schedule of one piconet the way a GS
/// receiver would (see the module docs): entities take the given priority
/// order; each entity's `y` follows from the entities above it (Fig. 2);
/// each flow requests `R = (M + C) / (Dreq - D)` (Eq. 1 inverted), clamped
/// to `[r, eta_min / y]` (Eq. 9).
///
/// Shared by the single-piconet Fig. 4 scenario and the scatternet
/// scenario, whose piconets append bridge-hop entities after the paper's
/// three — higher-priority plans are unaffected by the extra entities, so
/// the paper flows keep their exact single-piconet schedule.
pub(crate) fn derive_gs_schedule(
    entity_defs: &[(AmAddr, &[(u32, Direction)])],
    delay_requirement: SimDuration,
    allowed: &[PacketType],
) -> (AdmissionOutcome, Vec<GsFlowPlan>) {
    let sar = SarPolicy::MaxFirst;
    let tspec = paper_tspec();
    let eta = min_poll_efficiency(&sar, tspec.min_policed_unit(), tspec.max_packet(), allowed);
    let u = piconet_u(allowed);

    let mut higher: Vec<HigherEntity> = Vec::new();
    let mut entities = Vec::new();
    let mut gs_plans: Vec<GsFlowPlan> = Vec::new();
    let mut grants = Vec::new();
    let x_at_token_rate = poll_interval(eta, tspec.token_rate());
    for (idx, (sl, flow_defs)) in entity_defs.iter().enumerate() {
        // The achievable y at this priority position, allowing for the
        // loosest possible own interval (R = r). If even that diverges,
        // fall back to a generous cap for reporting.
        let y = y_fixpoint(u, &higher, x_at_token_rate)
            .or_else(|| y_fixpoint(u, &higher, SimDuration::from_millis(200)))
            .unwrap_or(SimDuration::from_millis(200));
        let terms = ErrorTerms::new(eta, y);
        // Receiver-side rate computation, clamped to Eq. 9's maximum.
        let r_required = required_rate(&tspec, delay_requirement, terms).unwrap_or(f64::INFINITY);
        let r_max = eta / y.as_secs_f64();
        let rate = r_required.min(r_max).max(tspec.token_rate());
        let x = poll_interval(eta, rate);
        let achievable =
            delay_bound(&tspec, rate, terms).expect("rate is clamped to at least the token rate");
        let guaranteed = x >= y && achievable <= delay_requirement;

        let accounting = flow_defs
            .iter()
            .find(|(_, d)| d.is_uplink())
            .unwrap_or(&flow_defs[0]);
        for (id, dir) in flow_defs.iter() {
            let request = GsRequest::new(FlowId(*id), *sl, *dir, tspec, rate);
            grants.push(FlowGrant {
                id: FlowId(*id),
                entity: idx,
                eta_min: eta,
                terms,
                bound: achievable,
            });
            gs_plans.push(GsFlowPlan {
                request,
                y,
                achievable_bound: achievable,
                guaranteed,
            });
        }
        entities.push(EntityPlan {
            slave: *sl,
            priority: idx as u32 + 1,
            x,
            y,
            s: u,
            accounting_flow: FlowId(accounting.0),
            accounting_direction: accounting.1,
            rate,
            eta_min: eta,
            flow_ids: flow_defs.iter().map(|(id, _)| FlowId(*id)).collect(),
            can_skip: flow_defs.iter().all(|(_, d)| d.is_downlink()),
            has_downlink: flow_defs.iter().any(|(_, d)| d.is_downlink()),
            has_uplink: flow_defs.iter().any(|(_, d)| d.is_uplink()),
        });
        higher.push(HigherEntity { x, s: u });
    }
    gs_plans.sort_by_key(|p| p.request.id);
    let outcome = AdmissionOutcome {
        entities,
        flows: grants,
    };
    (outcome, gs_plans)
}

/// Builds one best-effort traffic source, shared by the single-piconet
/// and scatternet scenarios.
///
/// `stream` is the flow's dedicated RNG stream; `start` is the earliest
/// process start (zero for the paper scenario, the piconet stagger offset
/// in scatternets). With `scale == 1.0` and [`BeSourceMix::Cbr`] the draw
/// sequence and arrivals are bit-identical to the pre-axis scenarios.
///
/// # Panics
///
/// Panics if `slave` is not one of the BE slaves (S4..S7) or the scaled
/// rate is not positive/finite — [`ScenarioGrid`](crate::ScenarioGrid)
/// validation rejects such grids before any cell runs.
pub(crate) fn be_source(
    id: FlowId,
    slave: AmAddr,
    scale: f64,
    mix: BeSourceMix,
    start: SimTime,
    mut stream: DetRng,
) -> Box<dyn Source> {
    let k = (slave.get() - 4) as usize;
    let rate_bps = BE_RATES_KBPS[k] * 1000.0 * scale;
    assert!(
        rate_bps.is_finite() && rate_bps > 0.0,
        "BE load scale {scale} yields an invalid rate"
    );
    let interval = SimDuration::from_secs_f64(BE_PACKET_SIZE as f64 * 8.0 / rate_bps);
    match mix {
        BeSourceMix::Cbr => {
            let offset = start + SimDuration::from_nanos(stream.below(interval.as_nanos()));
            Box::new(
                CbrSource::new(id, interval, BE_PACKET_SIZE, BE_PACKET_SIZE, stream)
                    .starting_at(offset),
            )
        }
        BeSourceMix::Poisson => {
            // The first arrival is already one random interval after the
            // start; no extra phase stagger needed.
            Box::new(
                PoissonSource::new(id, interval, BE_PACKET_SIZE, BE_PACKET_SIZE, stream)
                    .starting_at(start),
            )
        }
        BeSourceMix::OnOff => {
            // Same phase stagger as CBR; twice the rate while ON and a 50%
            // duty cycle (equal ON/OFF means) preserve the mean rate.
            let offset = start + SimDuration::from_nanos(stream.below(interval.as_nanos()));
            Box::new(
                OnOffSource::new(
                    id,
                    interval / 2,
                    BE_PACKET_SIZE,
                    BE_ONOFF_MEAN,
                    BE_ONOFF_MEAN,
                    stream,
                )
                .starting_at(offset),
            )
        }
    }
}

/// The paper's TSpec (Eqs. 11–12): `p = r = 8800 B/s`, `b = M = 176`,
/// `m = 144`.
pub fn paper_tspec() -> TokenBucketSpec {
    TokenBucketSpec::for_cbr(
        GS_INTERVAL.as_secs_f64(),
        GS_PACKET_RANGE.0,
        GS_PACKET_RANGE.1,
    )
    .expect("the paper's TSpec is valid")
}

impl PaperScenario {
    /// Derives the scenario for the given parameters.
    pub fn build(params: PaperScenarioParams) -> PaperScenario {
        let allowed = vec![PacketType::Dh1, PacketType::Dh3];

        // Entities in the paper's priority order. Each entry: (slave,
        // flows: [(id, direction)]).
        let entity_defs: [(AmAddr, &[(u32, Direction)]); 3] = [
            (slave(1), &[(1, Direction::SlaveToMaster)]),
            (
                slave(2),
                &[(2, Direction::MasterToSlave), (3, Direction::SlaveToMaster)],
            ),
            (slave(3), &[(4, Direction::SlaveToMaster)]),
        ];
        let (outcome, gs_plans) =
            derive_gs_schedule(&entity_defs, params.delay_requirement, &allowed);

        // Piconet configuration.
        let mut config = PiconetConfig::new(allowed)
            .with_warmup(params.warmup)
            .with_arrival_batch(params.arrival_batch);
        for plan in &gs_plans {
            config = config.with_flow(FlowSpec::new(
                plan.request.id,
                plan.request.slave,
                plan.request.direction,
                LogicalChannel::GuaranteedService,
            ));
        }
        if params.include_be {
            for (k, _) in BE_RATES_KBPS.iter().enumerate() {
                let sl = slave(4 + k as u8);
                let down_id = FlowId(5 + 2 * k as u32);
                let up_id = FlowId(6 + 2 * k as u32);
                config = config
                    .with_flow(FlowSpec::new(
                        down_id,
                        sl,
                        Direction::MasterToSlave,
                        LogicalChannel::BestEffort,
                    ))
                    .with_flow(FlowSpec::new(
                        up_id,
                        sl,
                        Direction::SlaveToMaster,
                        LogicalChannel::BestEffort,
                    ));
            }
        }

        PaperScenario {
            params,
            config,
            outcome,
            gs_plans,
        }
    }

    /// The traffic sources of every configured flow, seeded from
    /// `params.seed`. CBR phases are staggered pseudo-randomly within one
    /// interval so flows do not arrive in lockstep.
    pub fn sources(&self) -> Vec<Box<dyn Source>> {
        let root = DetRng::seed_from_u64(self.params.seed);
        let mut out: Vec<Box<dyn Source>> = Vec::new();
        for f in &self.config.flows {
            let mut stream = root.stream(u64::from(f.id.0));
            if f.channel.is_gs() {
                let offset = SimTime::from_nanos(stream.below(GS_INTERVAL.as_nanos()));
                out.push(Box::new(
                    CbrSource::new(
                        f.id,
                        GS_INTERVAL,
                        GS_PACKET_RANGE.0,
                        GS_PACKET_RANGE.1,
                        stream,
                    )
                    .starting_at(offset),
                ));
            } else {
                out.push(be_source(
                    f.id,
                    f.slave,
                    self.params.be_load_scale,
                    self.params.be_source_mix,
                    SimTime::ZERO,
                    stream,
                ));
            }
        }
        out
    }

    /// Builds the poller of the given kind for this scenario's schedule.
    pub fn poller(&self, kind: PollerKind) -> GsPoller {
        let be: Box<dyn Poller> = Box::new(PfpBePoller::new(SimDuration::from_millis(25)));
        match kind {
            PollerKind::PfpGs => GsPoller::pfp(&self.outcome, SimTime::ZERO, be),
            PollerKind::FixedGs => {
                GsPoller::fixed(&self.outcome, SimTime::ZERO).with_best_effort(be)
            }
            PollerKind::Custom(improvements) => {
                GsPoller::with_improvements(&self.outcome, SimTime::ZERO, improvements)
                    .with_best_effort(be)
            }
        }
    }

    /// Runs the scenario to `horizon` with the given poller kind over an
    /// ideal radio channel.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (none are expected for a
    /// well-formed scenario).
    pub fn run(&self, kind: PollerKind, horizon: SimTime) -> Result<RunReport, PiconetError> {
        self.run_with_backend(kind, horizon, EventQueueBackend::TimingWheel)
    }

    /// Runs the scenario on an explicit event-queue backend.
    ///
    /// The differential tests use this to demand byte-identical reports
    /// from the timing wheel and the binary-heap reference.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (none are expected for a
    /// well-formed scenario).
    pub fn run_with_backend(
        &self,
        kind: PollerKind,
        horizon: SimTime,
        backend: EventQueueBackend,
    ) -> Result<RunReport, PiconetError> {
        let poller = self.poller(kind);
        let mut sim = PiconetSim::with_backend(
            self.config.clone(),
            Box::new(poller),
            Box::new(IdealChannel),
            backend,
        )?;
        for src in self.sources() {
            sim.add_source(src)?;
        }
        sim.run(horizon)
    }

    /// The per-slave legend of the paper's Fig. 5.
    pub fn slave_legend(s: AmAddr) -> &'static str {
        match s.get() {
            1 => "S1 (GS) flow 1",
            2 => "S2 (GS) flow 2+3",
            3 => "S3 (GS) flow 4",
            4 => "S4 (BE) flow 5+6",
            5 => "S5 (BE) flow 7+8",
            6 => "S6 (BE) flow 9+10",
            7 => "S7 (BE) flow 11+12",
            _ => "unknown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_at_loose_requirement() {
        // At Dreq = 40 ms (inside the guaranteed region) the schedule shows
        // the paper's §4.1 values.
        let sc = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(40),
            ..Default::default()
        });
        assert_eq!(sc.outcome.entities.len(), 3);
        let ys: Vec<u64> = sc
            .outcome
            .entities
            .iter()
            .map(|e| e.y.as_micros())
            .collect();
        assert_eq!(ys, vec![3_750, 7_500, 11_250]);
        for p in &sc.gs_plans {
            assert!(p.guaranteed, "{:?}", p.request.id);
            assert!(p.achievable_bound <= SimDuration::from_millis(40));
        }
        // 4 GS + 8 BE flows.
        assert_eq!(sc.config.flows.len(), 12);
        assert!(sc.config.validate().is_ok());
    }

    #[test]
    fn dmin_boundary_is_36_25_ms() {
        let at_bound = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_micros(36_250),
            ..Default::default()
        });
        assert!(at_bound.gs_plans.iter().all(|p| p.guaranteed));
        // Flow 4 runs exactly at the paper's R_max = 12.8 kB/s.
        let f4 = &at_bound.gs_plans[3];
        assert!(
            (f4.request.rate - 12_800.0).abs() < 1e-6,
            "{}",
            f4.request.rate
        );

        let below = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_micros(36_000),
            ..Default::default()
        });
        assert!(
            !below.gs_plans[3].guaranteed,
            "flow 4 saturates below 36.25 ms"
        );
        assert!(
            below.gs_plans[0].guaranteed,
            "flow 1 is fine far below that"
        );
    }

    #[test]
    fn dmax_at_token_rate_is_47_6_ms() {
        // A very loose requirement: every flow requests just the token rate
        // and the achievable bound equals the paper's 47.6 ms.
        let sc = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(100),
            ..Default::default()
        });
        let f4 = &sc.gs_plans[3];
        assert_eq!(f4.request.rate, 8800.0);
        assert_eq!(f4.achievable_bound.as_micros(), 47_613);
    }

    #[test]
    fn rates_rise_as_requirement_tightens_in_guaranteed_region() {
        // Within the strictly guaranteed region (>= 36.25 ms) every flow's
        // granted rate rises as the requirement tightens.
        let loose = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(46),
            ..Default::default()
        });
        let tight = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(37),
            ..Default::default()
        });
        for (l, t) in loose.gs_plans.iter().zip(&tight.gs_plans) {
            assert!(
                t.request.rate >= l.request.rate,
                "{:?}: {} < {}",
                l.request.id,
                t.request.rate,
                l.request.rate
            );
        }
        // Below the region the saturated flow falls back to its token rate
        // (minimal resource commitment once the guarantee is unattainable).
        let saturated = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(30),
            ..Default::default()
        });
        assert_eq!(saturated.gs_plans[3].request.rate, 8800.0);
        assert!(!saturated.gs_plans[3].guaranteed);
        // Higher-priority flows keep chasing the tighter bound.
        assert!(saturated.gs_plans[0].request.rate > tight.gs_plans[0].request.rate);
    }

    #[test]
    fn sources_are_deterministic_and_cover_flows() {
        let sc = PaperScenario::build(PaperScenarioParams::default());
        let a: Vec<FlowId> = sc.sources().iter().map(|s| s.flow()).collect();
        let b: Vec<FlowId> = sc.sources().iter().map(|s| s.flow()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // One source per configured flow.
        for f in &sc.config.flows {
            assert!(a.contains(&f.id), "{} lacks a source", f.id);
        }
    }

    #[test]
    fn be_intervals_match_rates() {
        // 41.6 kbps with 176-byte packets: one packet every 33.846 ms.
        let interval = SimDuration::from_secs_f64(176.0 * 8.0 / 41_600.0);
        assert_eq!(interval.as_micros(), 33_846);
    }

    #[test]
    fn legend_matches_fig4() {
        assert_eq!(PaperScenario::slave_legend(slave(2)), "S2 (GS) flow 2+3");
        assert_eq!(PaperScenario::slave_legend(slave(7)), "S7 (BE) flow 11+12");
    }
}
