//! Poll intervals and segment-exchange times (the paper's Eq. 5 and the
//! `U`/`s_i` quantities of Fig. 2).

use btgs_baseband::{slots, PacketType};
use btgs_des::SimDuration;

/// The poll interval of Eq. 5: `x_i = eta_min_i / R_i` for a granted fluid
/// rate of `rate` bytes/second.
///
/// # Panics
///
/// Panics unless both arguments are positive and finite.
///
/// # Examples
///
/// The paper's evaluation: `eta_min = 144 B`, `R = r = 8800 B/s` gives
/// `x = 16.36 ms`:
///
/// ```
/// use btgs_core::poll_interval;
///
/// let x = poll_interval(144.0, 8800.0);
/// assert_eq!(x.as_micros(), 16_363);
/// ```
pub fn poll_interval(eta_min: f64, rate: f64) -> SimDuration {
    assert!(
        eta_min.is_finite() && eta_min > 0.0,
        "eta_min must be positive and finite, got {eta_min}"
    );
    assert!(
        rate.is_finite() && rate > 0.0,
        "rate must be positive and finite, got {rate}"
    );
    SimDuration::from_secs_f64(eta_min / rate)
}

/// The longest on-air time of a data packet among `allowed`, in slots.
/// Control packets (POLL/NULL) take one slot.
pub fn max_data_slots(allowed: &[PacketType]) -> u64 {
    allowed
        .iter()
        .filter(|t| t.is_acl_data())
        .map(|t| t.slots())
        .max()
        .unwrap_or(1)
}

/// The piconet-wide maximum segment-exchange time `U` of Fig. 2: the longest
/// possible downlink-plus-uplink transmission, assuming any node may use the
/// largest allowed packet in either direction. Ongoing exchanges cannot be
/// interrupted, so every planned poll may have to wait this long.
///
/// # Examples
///
/// DH1+DH3 allowed: both master and slave may send a DH3, so
/// `U = 6 slots = 3.75 ms` — the paper's evaluation value:
///
/// ```
/// use btgs_core::piconet_u;
/// use btgs_baseband::PacketType;
///
/// let u = piconet_u(&[PacketType::Dh1, PacketType::Dh3]);
/// assert_eq!(u.as_micros(), 3_750);
/// ```
pub fn piconet_u(allowed: &[PacketType]) -> SimDuration {
    slots(2 * max_data_slots(allowed))
}

/// How the per-entity segment-exchange time `s_i` of Fig. 2 is accounted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SegmentTimeModel {
    /// The paper's accounting: charge every GS entity the piconet-wide
    /// worst case `U` ("the possibility must be taken into account that
    /// both the master and the addressed slave transmit a DH3 packet").
    /// Reproduces the paper's `y` values.
    #[default]
    Conservative,
    /// Tighter accounting: charge only what the entity's own directions can
    /// actually transmit (a unidirectional uplink entity costs
    /// POLL + data, not data + data). Admits more/faster flows; ablated in
    /// the bench suite.
    Exact,
}

/// The segment-exchange time `s_i` of one GS entity under the given model.
///
/// `has_downlink`/`has_uplink` say which directions carry GS data for this
/// entity; a direction without data still costs one slot (POLL or NULL).
pub fn segment_exchange_time(
    model: SegmentTimeModel,
    allowed: &[PacketType],
    has_downlink: bool,
    has_uplink: bool,
) -> SimDuration {
    match model {
        SegmentTimeModel::Conservative => piconet_u(allowed),
        SegmentTimeModel::Exact => {
            let data = max_data_slots(allowed);
            let down = if has_downlink { data } else { 1 };
            let up = if has_uplink { data } else { 1 };
            slots(down + up)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: [PacketType; 2] = [PacketType::Dh1, PacketType::Dh3];

    #[test]
    fn paper_poll_interval() {
        let x = poll_interval(144.0, 8800.0);
        assert_eq!(x.as_nanos(), 16_363_636);
        // Higher granted rate -> shorter interval.
        assert!(poll_interval(144.0, 12_800.0) < x);
        assert_eq!(
            poll_interval(144.0, 12_800.0),
            SimDuration::from_micros(11_250)
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = poll_interval(144.0, 0.0);
    }

    #[test]
    fn u_values() {
        assert_eq!(piconet_u(&PAPER), SimDuration::from_micros(3_750));
        assert_eq!(
            piconet_u(&[PacketType::Dh1]),
            SimDuration::from_micros(1_250)
        );
        assert_eq!(
            piconet_u(&PacketType::ACL_DATA),
            SimDuration::from_micros(6_250)
        );
        // Control-only set falls back to 1 slot per direction.
        assert_eq!(piconet_u(&[]), SimDuration::from_micros(1_250));
    }

    #[test]
    fn conservative_charges_u_regardless() {
        for (down, up) in [(true, true), (true, false), (false, true)] {
            assert_eq!(
                segment_exchange_time(SegmentTimeModel::Conservative, &PAPER, down, up),
                SimDuration::from_micros(3_750)
            );
        }
    }

    #[test]
    fn exact_charges_per_direction() {
        // Bidirectional: DH3 + DH3 = 6 slots.
        assert_eq!(
            segment_exchange_time(SegmentTimeModel::Exact, &PAPER, true, true),
            SimDuration::from_micros(3_750)
        );
        // Uplink only: POLL + DH3 = 4 slots = 2.5 ms.
        assert_eq!(
            segment_exchange_time(SegmentTimeModel::Exact, &PAPER, false, true),
            SimDuration::from_micros(2_500)
        );
        // Downlink only: DH3 + NULL = 4 slots.
        assert_eq!(
            segment_exchange_time(SegmentTimeModel::Exact, &PAPER, true, false),
            SimDuration::from_micros(2_500)
        );
    }
}
