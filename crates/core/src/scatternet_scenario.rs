//! The scatternet evaluation scenario: chained Fig. 4 piconets with one
//! bridged Guaranteed Service flow — the paper's future-work workload.
//!
//! `N` piconets each carry the paper's GS population (flows 1–4 on S1–S3,
//! ids offset by `100·p`) plus an optional reduced best-effort load (S4 and
//! S5; S6/S7 are reserved for bridge roles). A single cross-piconet GS
//! chain enters at the master of piconet 0 and is relayed bridge by bridge
//! to the master of piconet `N−1`:
//!
//! ```text
//! M0 ─▸ B0 (P0/S6 ⇄ P1/S7) ─▸ M1 ─▸ B1 (P1/S6 ⇄ P2/S7) ─▸ M2 ─ …
//! ```
//!
//! Every bridge alternates between its two piconets on a deterministic
//! rendezvous cycle (half the cycle in each), and each piconet's GS
//! schedule gains one bridge-hop entity per bridge role, appended *after*
//! the paper entities — so the paper flows keep their exact single-piconet
//! plans and the per-piconet reports stay comparable to Fig. 5.

use crate::admission::{AdmissionConfig, AdmissionOutcome, GsRequest};
use crate::chain_admission::{
    ChainGrant, ChainHopSpec, ChainRequest, ScatternetAdmissionController,
};
use crate::gs_poller::GsPoller;
use crate::scenario::{
    derive_gs_schedule, paper_tspec, BeSourceMix, GsFlowPlan, PollerKind, GS_INTERVAL,
    GS_PACKET_RANGE,
};
use btgs_baseband::{
    AmAddr, ChannelModel, Direction, IdealChannel, LogicalChannel, PacketType, PiconetId,
    ScopedSlave,
};
use btgs_des::{DetRng, SimDuration, SimTime};
use btgs_gs::worst_case_residence;
use btgs_piconet::{
    BridgeSpec, ChainSpec, FlowSpec, PiconetConfig, PiconetError, Poller, SarPolicy,
    ScatternetConfig, ScatternetReport, ScatternetSim,
};
use btgs_pollers::PfpBePoller;
use btgs_traffic::{CbrSource, FlowId, Source};

/// Gap between consecutive piconets' flow id blocks.
pub const PICONET_ID_STRIDE: u32 = 100;

/// First id of the chain's hop flows for scenarios of up to nine piconets
/// (`CHAIN_ID_BASE + 2p` enters piconet `p`, `CHAIN_ID_BASE + 1 + 2p`
/// leaves it). Longer scatternets widen the block: see [`chain_id_base`].
pub const CHAIN_ID_BASE: u32 = 900;

/// First id of the *reverse* chain's hop flows (bidirectional scenarios
/// of up to nine piconets): `REV_CHAIN_ID_BASE + 2p` leaves piconet `p`
/// toward lower-numbered piconets, `REV_CHAIN_ID_BASE + 1 + 2p` enters it
/// from above.
pub const REV_CHAIN_ID_BASE: u32 = 950;

/// The slave address every bridge uses in its *downstream* piconet.
pub const BRIDGE_IN_SLAVE: u8 = 7;

/// The slave address every bridge uses in its *upstream* piconet.
pub const BRIDGE_OUT_SLAVE: u8 = 6;

/// The upstream slave address of a tree piconet's *second* out-bridge
/// (its first uses [`BRIDGE_OUT_SLAVE`]). S5 doubles as a best-effort
/// slave, so tree scenarios require `include_be == false`.
pub const TREE_SECOND_OUT_SLAVE: u8 = 5;

/// First id of the hop-flow block for an `n`-piconet scenario.
///
/// Up to nine piconets this is exactly [`CHAIN_ID_BASE`] (so all historic
/// flow ids are preserved); longer scatternets slide the block up so the
/// paper blocks (`100·p + k`) can never reach into it.
pub const fn chain_id_base(n: u16) -> u32 {
    let n = n as u32;
    PICONET_ID_STRIDE * if n > 9 { n } else { 9 }
}

/// First id of the reverse-chain hop block for an `n`-piconet scenario
/// ([`REV_CHAIN_ID_BASE`] for up to nine piconets).
pub const fn rev_chain_id_base(n: u16) -> u32 {
    let gap = 2 * n as u32 + 2;
    chain_id_base(n) + if gap > 50 { gap } else { 50 }
}

/// How the piconets of a [`ScatternetScenario`] are wired together.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A line: `M0 → M1 → … → M(N−1)` with one bridge per consecutive
    /// pair and a single end-to-end chain (plus the reverse chain when
    /// `bidirectional`). The PR 3 scenario.
    Chain,
    /// The chain closed into a ring (the mesh variant): a wrap bridge
    /// `P(N−1)/S6 → P0/S7` carries a second, two-hop chain, so every
    /// piconet holds both bridge roles and every rendezvous window is in
    /// use.
    Ring,
    /// A fanout-2 tree (children of piconet `p` are `2p+1` and `2p+2`),
    /// one independent two-hop chain per edge. A parent's second
    /// out-bridge rides on [`TREE_SECOND_OUT_SLAVE`], so trees require
    /// `include_be == false`.
    Tree,
    /// A deterministic random-geometric mesh: piconets get pseudo-random
    /// plane positions from `seed`, each joins its nearest
    /// already-placed piconet with a free bridge slot (guaranteeing a
    /// connected spanning tree for `degree ≥ 2`), and `degree == 4` adds
    /// one extra cross edge per piconet where slots allow. Every edge is
    /// covered by a multi-hop chain (spanning-tree paths are cut into
    /// segments of at most three edges). Bridge roles are allocated from
    /// slaves S7 down to S4, so meshes require `include_be == false`;
    /// `degree` must be 2..=4.
    Mesh {
        /// Maximum bridge roles per piconet (2..=4).
        degree: u8,
        /// Seed of the geometric placement.
        seed: u64,
    },
}

impl Topology {
    /// Stable lower-case label (grid axes, wire format, bench ids).
    /// Meshes encode their parameters: `mesh{degree}x{seed}`.
    pub fn label(self) -> String {
        match self {
            Topology::Chain => "chain".into(),
            Topology::Ring => "ring".into(),
            Topology::Tree => "tree".into(),
            Topology::Mesh { degree, seed } => format!("mesh{degree}x{seed}"),
        }
    }

    /// Inverse of [`Topology::label`].
    pub fn from_label(label: &str) -> Option<Topology> {
        match label {
            "chain" => Some(Topology::Chain),
            "ring" => Some(Topology::Ring),
            "tree" => Some(Topology::Tree),
            _ => {
                let rest = label.strip_prefix("mesh")?;
                let (degree, seed) = rest.split_once('x')?;
                Some(Topology::Mesh {
                    degree: degree.parse().ok()?,
                    seed: seed.parse().ok()?,
                })
            }
        }
    }
}

/// Parameters of the scatternet scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScatternetScenarioParams {
    /// Number of piconets (≥ 2).
    pub piconets: u16,
    /// The delay bound every per-piconet GS flow requests.
    pub delay_requirement: SimDuration,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Warm-up excluded from measurements (per piconet and chain).
    pub warmup: SimDuration,
    /// Include the reduced best-effort load (S4/S5 pairs per piconet).
    pub include_be: bool,
    /// Bridge rendezvous cycle; each bridge spends half in each piconet.
    pub bridge_cycle: SimDuration,
    /// End-to-end deadline for the bridged chain(s). `None` reproduces the
    /// measured-only PR 3 scenario (bridge hops polled at derived rates
    /// with no composed guarantee); `Some` runs the multi-hop admission
    /// test — every traversed piconet admits its hop atomically and the
    /// scenario records the provable composed bound per chain.
    pub chain_deadline: Option<SimDuration>,
    /// Add a second chain crossing every bridge in the *reverse* direction
    /// (M(N−1) → … → M0), so both rendezvous windows of each bridge carry
    /// guaranteed traffic and the residence term is stressed under
    /// contention.
    pub bidirectional: bool,
    /// Multiplier on every BE flow's Fig. 4 rate (1.0 = the paper's
    /// load).
    pub be_load_scale: f64,
    /// How the BE flows generate traffic.
    pub be_source_mix: BeSourceMix,
    /// How the piconets are wired together. Ring and tree topologies
    /// support neither `chain_deadline` (multi-hop admission is derived
    /// for the line and the mesh) nor `bidirectional`; trees and meshes
    /// additionally require `include_be == false` (their extra bridge
    /// roles ride on the best-effort slaves).
    pub topology: Topology,
}

impl ScatternetScenarioParams {
    /// Defaults matching [`PaperScenarioParams`](crate::PaperScenarioParams)
    /// with `n` piconets and a 20 ms rendezvous cycle.
    pub fn chained(n: u16) -> ScatternetScenarioParams {
        ScatternetScenarioParams {
            piconets: n,
            delay_requirement: SimDuration::from_millis(40),
            seed: 1,
            warmup: SimDuration::from_secs(2),
            include_be: true,
            bridge_cycle: SimDuration::from_millis(20),
            chain_deadline: None,
            bidirectional: false,
            be_load_scale: 1.0,
            be_source_mix: BeSourceMix::Cbr,
            topology: Topology::Chain,
        }
    }

    /// [`ScatternetScenarioParams::chained`] closed into a ring.
    pub fn ring(n: u16) -> ScatternetScenarioParams {
        ScatternetScenarioParams {
            topology: Topology::Ring,
            ..ScatternetScenarioParams::chained(n)
        }
    }

    /// A fanout-2 tree over `n` piconets (best-effort load off — S5
    /// carries second out-bridges).
    pub fn tree(n: u16) -> ScatternetScenarioParams {
        ScatternetScenarioParams {
            topology: Topology::Tree,
            include_be: false,
            ..ScatternetScenarioParams::chained(n)
        }
    }

    /// A random-geometric mesh over `n` piconets (best-effort load off —
    /// bridge roles spill onto the best-effort slaves).
    pub fn mesh(n: u16, degree: u8, seed: u64) -> ScatternetScenarioParams {
        ScatternetScenarioParams {
            topology: Topology::Mesh { degree, seed },
            include_be: false,
            ..ScatternetScenarioParams::chained(n)
        }
    }
}

/// The sanitizer/bisector corpus: one small scenario per topology class
/// (chain, ring, mesh), shared by the piconet mutation-corpus tests, the
/// `btgs-analyze -- --bisect` CLI and CI's sanitized parallel-equivalence
/// smoke — so all three surfaces prove the same engine on the same
/// workloads. Short warmups keep a corpus run cheap; the default CBR load
/// keeps islands busy across bridge handoffs, which the lookahead-safety
/// and staging-order checks need to bite.
pub fn sanitizer_corpus() -> Vec<(&'static str, ScatternetScenarioParams)> {
    let tune = |mut p: ScatternetScenarioParams| {
        p.warmup = SimDuration::from_millis(500);
        p
    };
    vec![
        ("chain", tune(ScatternetScenarioParams::chained(3))),
        ("ring", tune(ScatternetScenarioParams::ring(4))),
        ("mesh", tune(ScatternetScenarioParams::mesh(5, 2, 7))),
    ]
}

/// A fully derived instance of the chained-piconets scenario.
#[derive(Clone, Debug)]
pub struct ScatternetScenario {
    /// The parameters it was built from.
    pub params: ScatternetScenarioParams,
    /// The scatternet configuration (piconets, bridges, the chain(s)).
    pub config: ScatternetConfig,
    /// Per-piconet GS schedules (paper entities plus bridge-hop entities).
    pub outcomes: Vec<AdmissionOutcome>,
    /// Per-piconet GS flow plans, paper flows and bridge hops alike.
    pub gs_plans: Vec<Vec<GsFlowPlan>>,
    /// The multi-hop admission grants, in [`ScatternetConfig::chains`]
    /// order. Empty when `params.chain_deadline` is `None` (measured-only
    /// chains carry no composed guarantee).
    pub chain_grants: Vec<ChainGrant>,
}

/// Per-piconet entity definitions: `(slave, [(flow id, direction), …])`
/// in priority order — the shape [`derive_gs_schedule`] consumes.
type EntityDefs = Vec<(AmAddr, Vec<(u32, Direction)>)>;

fn slave(n: u8) -> AmAddr {
    AmAddr::new(n).expect("scenario slave addresses are 1..=7")
}

/// Uplink hop id keyed by `p` within the `base` block (chain/ring: the
/// flow entering piconet `p` through its S7 bridge identity; tree: the
/// flow entering child `p`; mesh: the flow entering edge `p`'s downstream
/// piconet).
fn hop_in_id(base: u32, p: u16) -> u32 {
    base + 2 * p as u32
}

/// Downlink hop id keyed by `p` within the `base` block (chain/ring: the
/// flow leaving piconet `p` toward its out-bridge; tree: the flow leaving
/// child `p`'s parent toward it; mesh: the flow leaving edge `p`'s
/// upstream piconet).
fn hop_out_id(base: u32, p: u16) -> u32 {
    base + 1 + 2 * p as u32
}

/// Reverse-chain hop leaving piconet `p` toward piconet `p − 1` (downlink
/// to the bridge-in slave); exists for `p ≥ 1`.
fn rev_out_id(rev_base: u32, p: u16) -> u32 {
    rev_base + 2 * p as u32
}

/// Reverse-chain hop entering piconet `p` from piconet `p + 1` (uplink
/// from the bridge-out slave); exists for `p ≤ n − 2`.
fn rev_in_id(rev_base: u32, p: u16) -> u32 {
    rev_base + 1 + 2 * p as u32
}

/// One bridge edge of the topology: packets flow `up_pic → down_pic`
/// through a bridge slave that is `out_slave` in `up_pic` and `in_slave`
/// in `down_pic`.
#[derive(Clone, Copy, Debug)]
struct EdgeDef {
    up_pic: u16,
    down_pic: u16,
    out_slave: u8,
    in_slave: u8,
    /// Downlink hop id in `up_pic` (master → bridge).
    out_flow: u32,
    /// Uplink hop id in `down_pic` (bridge → master).
    in_flow: u32,
}

/// The bridge edges of the scenario's topology, in deterministic order
/// (chain position / wrap last / tree child index / mesh build order).
fn topology_edges(params: &ScatternetScenarioParams) -> Vec<EdgeDef> {
    let n = params.piconets;
    let base = chain_id_base(n);
    let chain_edge = |p: u16| EdgeDef {
        up_pic: p,
        down_pic: p + 1,
        out_slave: BRIDGE_OUT_SLAVE,
        in_slave: BRIDGE_IN_SLAVE,
        out_flow: hop_out_id(base, p),
        in_flow: hop_in_id(base, p + 1),
    };
    match params.topology {
        Topology::Chain => (0..n - 1).map(chain_edge).collect(),
        Topology::Ring => {
            let mut edges: Vec<EdgeDef> = (0..n - 1).map(chain_edge).collect();
            edges.push(EdgeDef {
                up_pic: n - 1,
                down_pic: 0,
                out_slave: BRIDGE_OUT_SLAVE,
                in_slave: BRIDGE_IN_SLAVE,
                out_flow: hop_out_id(base, n - 1),
                in_flow: hop_in_id(base, 0),
            });
            edges
        }
        Topology::Tree => (1..n)
            .map(|c| EdgeDef {
                up_pic: (c - 1) / 2,
                down_pic: c,
                // The first child rides the regular out-bridge slave; the
                // second child needs a second radio on the parent.
                out_slave: if c % 2 == 1 {
                    BRIDGE_OUT_SLAVE
                } else {
                    TREE_SECOND_OUT_SLAVE
                },
                in_slave: BRIDGE_IN_SLAVE,
                out_flow: hop_out_id(base, c),
                in_flow: hop_in_id(base, c),
            })
            .collect(),
        Topology::Mesh { degree, seed } => mesh_edges(n, degree, seed, base),
    }
}

/// The deterministic random-geometric mesh builder.
///
/// Piconets get pseudo-random positions on a million-unit square; each
/// piconet `k ≥ 1` bridges to its nearest already-placed piconet with a
/// free bridge slot (squared distance, ties to the lower id). Every
/// piconet has `degree` slots allocated downward from S7, and with
/// `degree ≥ 2` a counting argument guarantees a free earlier slot always
/// exists (`k` earlier piconets hold `k·degree ≥ 2k` slots while the
/// `k − 1` spanning edges consume `2(k − 1)`), so the mesh is connected
/// by construction. `degree == 4` densifies the spanning tree with one
/// extra cross edge per piconet where both endpoints still have slots.
/// Hop flow ids are keyed by edge index within the `base` block.
fn mesh_edges(n: u16, degree: u8, seed: u64, base: u32) -> Vec<EdgeDef> {
    let cap = degree.clamp(2, 4);
    let mut rng = DetRng::seed_from_u64(seed);
    let pos: Vec<(i64, i64)> = (0..n)
        .map(|_| (rng.below(1_000_000) as i64, rng.below(1_000_000) as i64))
        .collect();
    let d2 = |a: usize, b: usize| {
        let dx = pos[a].0 - pos[b].0;
        let dy = pos[a].1 - pos[b].1;
        dx * dx + dy * dy
    };
    // Bridge roles allocated per piconet, S7 downward: role i → S(7−i).
    let mut used: Vec<u8> = vec![0; n as usize];
    let mut edges: Vec<EdgeDef> = Vec::with_capacity(2 * n as usize);
    let push_edge = |edges: &mut Vec<EdgeDef>, used: &mut Vec<u8>, j: usize, k: usize| {
        let e = edges.len() as u16;
        let out_slave = BRIDGE_IN_SLAVE - used[j];
        let in_slave = BRIDGE_IN_SLAVE - used[k];
        used[j] += 1;
        used[k] += 1;
        edges.push(EdgeDef {
            up_pic: j as u16,
            down_pic: k as u16,
            out_slave,
            in_slave,
            out_flow: hop_out_id(base, e),
            in_flow: hop_in_id(base, e),
        });
    };
    for k in 1..n as usize {
        let j = (0..k)
            .filter(|&j| used[j] < cap)
            .min_by_key(|&j| (d2(j, k), j))
            .expect("degree >= 2 always leaves a free earlier slot");
        push_edge(&mut edges, &mut used, j, k);
    }
    if cap == 4 {
        // Cross edges close geometric cycles: nearest earlier non-adjacent
        // piconet with slots free on both ends.
        for k in 2..n as usize {
            if used[k] >= cap {
                continue;
            }
            let adjacent: Vec<usize> = edges
                .iter()
                .filter_map(|e| match (e.up_pic as usize, e.down_pic as usize) {
                    (j, d) if d == k => Some(j),
                    (j, d) if j == k => Some(d),
                    _ => None,
                })
                .collect();
            if let Some(j) = (0..k)
                .filter(|&j| used[j] < cap && !adjacent.contains(&j))
                .min_by_key(|&j| (d2(j, k), j))
            {
                push_edge(&mut edges, &mut used, j, k);
            }
        }
    }
    edges
}

/// Longest chain length (in edges) a mesh path segment may cover.
const MESH_SEGMENT_EDGES: usize = 3;

/// Cuts the mesh's edge list into chain segments: edge order is scanned
/// once, and an edge extends the segment currently ending at its upstream
/// piconet (master relay) unless that segment already spans
/// [`MESH_SEGMENT_EDGES`] edges — otherwise it starts a new segment.
/// Every edge lands in exactly one segment, so every bridge window
/// carries chain traffic.
fn mesh_chain_segments(edges: &[EdgeDef]) -> Vec<Vec<usize>> {
    let mut segments: Vec<Vec<usize>> = Vec::new();
    // Piconet → index of the segment currently extendable from it. A
    // BTreeMap, not a HashMap: the map is keyed-access-only today, but
    // scenario derivation feeds the byte-identity invariant and an ordered
    // map keeps any future iteration deterministic by construction
    // (and off the determinism lint's waiver list).
    let mut extendable: std::collections::BTreeMap<u16, usize> = std::collections::BTreeMap::new();
    for (ei, e) in edges.iter().enumerate() {
        match extendable.remove(&e.up_pic) {
            Some(si) if segments[si].len() < MESH_SEGMENT_EDGES => {
                segments[si].push(ei);
                if segments[si].len() < MESH_SEGMENT_EDGES {
                    extendable.insert(e.down_pic, si);
                }
            }
            _ => {
                segments.push(vec![ei]);
                extendable.insert(e.down_pic, segments.len() - 1);
            }
        }
    }
    segments
}

impl ScatternetScenario {
    /// Derives the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `params.piconets < 2` (a one-piconet "scatternet" is the
    /// plain [`PaperScenario`](crate::PaperScenario)), on an unsupported
    /// parameter combination (see [`ScatternetScenarioParams::topology`]),
    /// or — with a `chain_deadline` — if the multi-hop admission rejects
    /// a chain; use [`ScatternetScenario::try_build`] to handle
    /// rejection.
    pub fn build(params: ScatternetScenarioParams) -> ScatternetScenario {
        ScatternetScenario::try_build(params)
            .unwrap_or_else(|e| panic!("scatternet scenario rejected: {e}"))
    }

    /// Derives the scenario, surfacing chain-admission rejections and
    /// unsupported parameter combinations as errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`ChainAdmissionError`](crate::ChainAdmissionError)
    /// rendering when `params.chain_deadline` is set and a chain cannot
    /// be admitted, and a description of the conflict for unsupported
    /// combinations (non-chain topology with `chain_deadline` or
    /// `bidirectional`; tree with `include_be`).
    ///
    /// # Panics
    ///
    /// Panics on `params.piconets < 2` — a caller bug, not a verdict.
    pub fn try_build(params: ScatternetScenarioParams) -> Result<ScatternetScenario, String> {
        let n = params.piconets;
        assert!(n >= 2, "a scatternet scenario needs at least two piconets");
        let is_mesh = matches!(params.topology, Topology::Mesh { .. });
        if params.topology != Topology::Chain {
            let label = params.topology.label();
            if params.chain_deadline.is_some() && !is_mesh {
                return Err(format!(
                    "chain_deadline (multi-hop admission) is derived for the chain \
                     topology only, not `{label}`"
                ));
            }
            if params.bidirectional {
                return Err(format!(
                    "bidirectional reverse chains exist in the chain topology only, \
                     not `{label}`"
                ));
            }
        }
        if params.topology == Topology::Tree && params.include_be {
            return Err(format!(
                "tree topologies use S{TREE_SECOND_OUT_SLAVE} for second out-bridges; \
                 set include_be to false"
            ));
        }
        if let Topology::Mesh { degree, .. } = params.topology {
            if !(2..=4).contains(&degree) {
                return Err(format!(
                    "mesh degree {degree} out of range: 2..=4 bridge roles per piconet"
                ));
            }
            if params.include_be {
                return Err(
                    "mesh topologies allocate bridge roles down from S7 into the \
                     best-effort slaves; set include_be to false"
                        .into(),
                );
            }
        }
        let allowed = vec![PacketType::Dh1, PacketType::Dh3];
        let edges = topology_edges(&params);
        let chains = derive_chain_paths(&params, &edges, &allowed);

        // Per-piconet entity definitions: the paper's order, then the
        // bridge roles (lowest priority, so the paper flows keep their
        // exact plans). With bidirectional traffic the reverse hops fold
        // into the bridge entities as piggybacked opposite-direction
        // flows.
        //
        // Capacity note for the admission path: a guaranteed bridge hop
        // needs a presence-compensated poll interval `x ≤ η/r − absence`
        // (see `ScatternetAdmissionController`'s module docs, with
        // `absence = cycle − dwell + U` since a GS poll also needs a full
        // segment exchange to fit before departure) *and* `x ≥ y`, so a
        // hop entity can only hold a priority whose `y` leaves that
        // window open — priority 1 or 2 for the default rendezvous
        // schedule. The full paper population leaves no such slot — the
        // measured-only path runs bridge hops over-committed with no
        // guarantee (exactly PR 3's behaviour); the admission path
        // instead *enforces* the capacity limit: end piconets trade their
        // S3 flow for the guaranteed hop slot, and transit piconets (both
        // bridge roles) carry only bridged traffic.
        let guarantee_mode = params.chain_deadline.is_some();
        let mut all_defs: Vec<EntityDefs> = Vec::with_capacity(n as usize);
        for p in 0..n {
            let base = PICONET_ID_STRIDE * p as u32;
            let mut defs: EntityDefs = vec![
                (slave(1), vec![(base + 1, Direction::SlaveToMaster)]),
                (
                    slave(2),
                    vec![
                        (base + 2, Direction::MasterToSlave),
                        (base + 3, Direction::SlaveToMaster),
                    ],
                ),
                (slave(3), vec![(base + 4, Direction::SlaveToMaster)]),
            ];
            if is_mesh {
                // Mesh piconets are transit-only in every mode: all of
                // them hold bridge roles, and the mesh cells exist to
                // stress the relay fabric — stacking the full Fig. 4
                // population on top would leave the bridge hops
                // over-committed on every node at once (a uniform
                // overload, not a topology study).
                defs.clear();
            } else if guarantee_mode {
                // See the capacity note above.
                defs.remove(2); // S3
                                // Transit piconets carry bridged traffic only.
                if p > 0 && p < n - 1 {
                    defs.clear();
                }
            }
            let rev_base = rev_chain_id_base(n);
            for e in edges.iter().filter(|e| e.down_pic == p) {
                let mut flows = vec![(e.in_flow, Direction::SlaveToMaster)];
                if params.bidirectional {
                    // Chain topology only: the reverse chain's downlink
                    // piggybacks on the in-bridge entity.
                    flows.push((rev_out_id(rev_base, p), Direction::MasterToSlave));
                }
                defs.push((slave(e.in_slave), flows));
            }
            for e in edges.iter().filter(|e| e.up_pic == p) {
                let mut flows = vec![(e.out_flow, Direction::MasterToSlave)];
                if params.bidirectional {
                    flows.push((rev_in_id(rev_base, p), Direction::SlaveToMaster));
                }
                defs.push((slave(e.out_slave), flows));
            }
            all_defs.push(defs);
        }

        let (outcomes, gs_plans, chain_grants) = match params.chain_deadline {
            None => {
                // Measured-only (PR 3) path: the whole schedule, bridge
                // hops included, derives from the per-piconet requirement.
                let mut outcomes = Vec::with_capacity(n as usize);
                let mut gs_plans = Vec::with_capacity(n as usize);
                for defs in &all_defs {
                    let borrowed: Vec<(AmAddr, &[(u32, Direction)])> =
                        defs.iter().map(|(s, f)| (*s, f.as_slice())).collect();
                    let (outcome, plans) =
                        derive_gs_schedule(&borrowed, params.delay_requirement, &allowed);
                    outcomes.push(outcome);
                    gs_plans.push(plans);
                }
                (outcomes, gs_plans, Vec::new())
            }
            Some(deadline) => admit_chains(&params, &all_defs, &chains, deadline, &allowed)?,
        };

        let mut piconets = Vec::with_capacity(n as usize);
        for (p, plans) in gs_plans.iter().enumerate() {
            let base = PICONET_ID_STRIDE * p as u32;
            let mut config = PiconetConfig::new(allowed.clone()).with_warmup(params.warmup);
            for plan in plans {
                config = config.with_flow(FlowSpec::new(
                    plan.request.id,
                    plan.request.slave,
                    plan.request.direction,
                    LogicalChannel::GuaranteedService,
                ));
            }
            if params.include_be {
                // S6/S7 carry bridge roles, so only the two lightest Fig. 4
                // best-effort pairs ride along (S4 and S5).
                for k in 0..2u32 {
                    let sl = slave(4 + k as u8);
                    config = config
                        .with_flow(FlowSpec::new(
                            FlowId(base + 5 + 2 * k),
                            sl,
                            Direction::MasterToSlave,
                            LogicalChannel::BestEffort,
                        ))
                        .with_flow(FlowSpec::new(
                            FlowId(base + 6 + 2 * k),
                            sl,
                            Direction::SlaveToMaster,
                            LogicalChannel::BestEffort,
                        ));
                }
            }
            piconets.push(config);
        }

        let bridges = edges
            .iter()
            .map(|e| BridgeSpec {
                upstream: ScopedSlave::new(PiconetId(e.up_pic), slave(e.out_slave)),
                downstream: ScopedSlave::new(PiconetId(e.down_pic), slave(e.in_slave)),
                cycle: params.bridge_cycle,
                dwell_upstream: params.bridge_cycle / 2,
            })
            .collect();
        let chain_specs = chains
            .iter()
            .enumerate()
            .map(|(ci, path)| {
                let spec = ChainSpec::new(path.iter().map(|h| h.flow).collect());
                match chain_grants.get(ci) {
                    Some(grant) => spec.with_intervals(grant.hop_intervals()),
                    None => spec,
                }
            })
            .collect();
        let config = ScatternetConfig {
            piconets,
            bridges,
            chains: chain_specs,
        };

        Ok(ScatternetScenario {
            params,
            config,
            outcomes,
            gs_plans,
            chain_grants,
        })
    }

    /// The id of the forward chain's first hop (the flow a source must
    /// feed).
    pub fn chain_entry(&self) -> FlowId {
        self.config.chains[0].hops[0]
    }

    /// The entry hops of every chain (each needs a registered source;
    /// every other chain hop is relay-fed).
    pub fn chain_entries(&self) -> Vec<FlowId> {
        self.config.chains.iter().map(|c| c.hops[0]).collect()
    }

    /// The traffic sources of every source-fed flow, seeded from
    /// `params.seed`.
    ///
    /// Like the single-piconet scenario, CBR phases are staggered
    /// pseudo-randomly within one interval; additionally each piconet's
    /// sources are staggered by a per-piconet offset (via
    /// [`CbrSource::starting_at`]) so the piconets do not run in lockstep.
    pub fn sources(&self) -> Vec<Box<dyn Source>> {
        let root = DetRng::seed_from_u64(self.params.seed);
        let entries = self.chain_entries();
        let mut out: Vec<Box<dyn Source>> = Vec::new();
        for (p, cfg) in self.config.piconets.iter().enumerate() {
            // Spread piconet starts across one GS interval.
            let pic_offset = GS_INTERVAL * p as u64 / self.config.piconets.len() as u64;
            for f in &cfg.flows {
                if f.id.0 >= chain_id_base(self.params.piconets) && !entries.contains(&f.id) {
                    continue; // relay-fed hop
                }
                let mut stream = root.stream(u64::from(f.id.0));
                if f.channel.is_gs() {
                    let offset = SimTime::ZERO
                        + pic_offset
                        + SimDuration::from_nanos(stream.below(GS_INTERVAL.as_nanos()));
                    out.push(Box::new(
                        CbrSource::new(
                            f.id,
                            GS_INTERVAL,
                            GS_PACKET_RANGE.0,
                            GS_PACKET_RANGE.1,
                            stream,
                        )
                        .starting_at(offset),
                    ));
                } else {
                    out.push(crate::scenario::be_source(
                        f.id,
                        f.slave,
                        self.params.be_load_scale,
                        self.params.be_source_mix,
                        SimTime::ZERO + pic_offset,
                        stream,
                    ));
                }
            }
        }
        out
    }

    /// Builds the per-piconet pollers of the given kind.
    pub fn pollers(&self, kind: PollerKind) -> Vec<Box<dyn Poller>> {
        self.outcomes
            .iter()
            .map(|outcome| {
                let be: Box<dyn Poller> = Box::new(PfpBePoller::new(SimDuration::from_millis(25)));
                let poller: Box<dyn Poller> = match kind {
                    PollerKind::PfpGs => Box::new(GsPoller::pfp(outcome, SimTime::ZERO, be)),
                    PollerKind::FixedGs => {
                        Box::new(GsPoller::fixed(outcome, SimTime::ZERO).with_best_effort(be))
                    }
                    PollerKind::Custom(improvements) => Box::new(
                        GsPoller::with_improvements(outcome, SimTime::ZERO, improvements)
                            .with_best_effort(be),
                    ),
                };
                poller
            })
            .collect()
    }

    /// Builds the simulator over ideal radio channels.
    ///
    /// # Errors
    ///
    /// Propagates scatternet validation errors (none are expected for a
    /// derived scenario).
    pub fn simulator(&self, kind: PollerKind) -> Result<ScatternetSim, PiconetError> {
        let channels: Vec<Box<dyn ChannelModel>> = self
            .config
            .piconets
            .iter()
            .map(|_| Box::new(IdealChannel) as Box<dyn ChannelModel>)
            .collect();
        let mut sim = ScatternetSim::new(self.config.clone(), self.pollers(kind), channels)?;
        for src in self.sources() {
            sim.add_source(src)?;
        }
        Ok(sim)
    }

    /// Runs the scenario to `horizon` with the given poller kind.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (none are expected for a
    /// derived scenario).
    pub fn run(
        &self,
        kind: PollerKind,
        horizon: SimTime,
    ) -> Result<ScatternetReport, PiconetError> {
        self.simulator(kind)?.run(horizon)
    }

    /// The segmentation policy of every piconet (the paper's max-first).
    pub fn sar(&self) -> SarPolicy {
        SarPolicy::MaxFirst
    }
}

/// The ordered hop paths of the scenario's chain(s) — forward, plus the
/// reverse chain when bidirectional — with per-hop residence and absence
/// terms derived from the bridge rendezvous schedule.
fn derive_chain_paths(
    params: &ScatternetScenarioParams,
    edges: &[EdgeDef],
    allowed: &[PacketType],
) -> Vec<Vec<ChainHopSpec>> {
    let n = params.piconets;
    let cycle = params.bridge_cycle;
    // Every bridge spends the first half of its cycle upstream (its S6
    // identity) and the rest downstream (S7).
    let up_len = cycle / 2;
    let down_len = cycle - up_len;
    // A GS poll of a bridge hop only executes while a *full* segment
    // exchange still fits before departure, so the effective absence gap
    // between pollable instants is `cycle − dwell + U` — the schedule gap
    // guarded by the exchange time ([`worst_case_residence`]'s `guard`).
    let u = crate::timing::piconet_u(allowed);
    let hop = |p: u16,
               flow: u32,
               sl: u8,
               direction: Direction,
               residence_in: SimDuration,
               window_len: SimDuration| ChainHopSpec {
        piconet: PiconetId(p),
        flow: FlowId(flow),
        slave: slave(sl),
        direction,
        residence_in,
        absence: worst_case_residence(cycle, window_len, u),
    };

    // Every edge contributes the same two hops: a master-to-slave exit
    // in the upstream piconet (no residence — the packet leaves with the
    // bridge) followed by a slave-to-master entry in the downstream
    // piconet once the bridge's S7 window opens.
    let out_hop = |e: &EdgeDef| {
        hop(
            e.up_pic,
            e.out_flow,
            e.out_slave,
            Direction::MasterToSlave,
            SimDuration::ZERO,
            up_len,
        )
    };
    let in_hop = |e: &EdgeDef| {
        hop(
            e.down_pic,
            e.in_flow,
            e.in_slave,
            Direction::SlaveToMaster,
            worst_case_residence(cycle, down_len, SimDuration::ZERO),
            down_len,
        )
    };
    let span = |edges: &[EdgeDef]| -> Vec<ChainHopSpec> {
        edges.iter().flat_map(|e| [out_hop(e), in_hop(e)]).collect()
    };

    let mut chains = match params.topology {
        // One end-to-end chain M0 → M(N−1) over the consecutive edges.
        Topology::Chain => vec![span(edges)],
        // The forward chain plus a separate two-hop flow over the wrap
        // edge M(N−1) → M0 (a single flow around the whole ring would
        // revisit its first hop).
        Topology::Ring => {
            let (wrap, line) = edges.split_last().expect("ring has edges");
            vec![span(line), span(std::slice::from_ref(wrap))]
        }
        // One two-hop parent→child flow per tree edge.
        Topology::Tree => edges
            .iter()
            .map(|e| span(std::slice::from_ref(e)))
            .collect(),
        // One multi-hop chain per spanning-path segment, covering every
        // mesh edge exactly once.
        Topology::Mesh { .. } => mesh_chain_segments(edges)
            .into_iter()
            .map(|segment| {
                let seg_edges: Vec<EdgeDef> = segment.iter().map(|&ei| edges[ei]).collect();
                span(&seg_edges)
            })
            .collect(),
    };
    if params.bidirectional {
        // Chain topology only (validated in `try_build`).
        // M(N−1) → … → M0: each bridge is crossed downstream→upstream, so
        // the handoff waits for the bridge's *upstream* (S6) window.
        let rev_base = rev_chain_id_base(n);
        let mut reverse = Vec::with_capacity(2 * (n as usize - 1));
        for p in (1..n).rev() {
            reverse.push(hop(
                p,
                rev_out_id(rev_base, p),
                BRIDGE_IN_SLAVE,
                Direction::MasterToSlave,
                SimDuration::ZERO,
                down_len,
            ));
            reverse.push(hop(
                p - 1,
                rev_in_id(rev_base, p - 1),
                BRIDGE_OUT_SLAVE,
                Direction::SlaveToMaster,
                worst_case_residence(cycle, up_len, SimDuration::ZERO),
                up_len,
            ));
        }
        chains.push(reverse);
    }
    chains
}

/// Per-piconet outcomes and plans plus the chain grants produced by the
/// admission path.
type AdmittedSchedules = (Vec<AdmissionOutcome>, Vec<Vec<GsFlowPlan>>, Vec<ChainGrant>);

/// The multi-hop admission path of [`ScatternetScenario::try_build`]:
/// seeds one [`ScatternetAdmissionController`] with every piconet's paper
/// flows at their derived single-piconet rates, admits the chain(s)
/// atomically against `deadline`, and returns the granted schedules.
fn admit_chains(
    params: &ScatternetScenarioParams,
    all_defs: &[EntityDefs],
    chains: &[Vec<ChainHopSpec>],
    deadline: SimDuration,
    allowed: &[PacketType],
) -> Result<AdmittedSchedules, String> {
    let n = params.piconets as usize;
    let base = chain_id_base(params.piconets);
    let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), n);
    let mut gs_plans: Vec<Vec<GsFlowPlan>> = Vec::with_capacity(n);
    for (p, defs) in all_defs.iter().enumerate() {
        // Paper entities only (ids below the chain block): their rates
        // derive exactly as in the single-piconet scenario; the bridge
        // hops are granted by chain admission below instead.
        let borrowed: Vec<(AmAddr, &[(u32, Direction)])> = defs
            .iter()
            .filter(|(_, flows)| flows.iter().all(|(id, _)| *id < base))
            .map(|(s, f)| (*s, f.as_slice()))
            .collect();
        let (_, plans) = derive_gs_schedule(&borrowed, params.delay_requirement, allowed);
        for plan in &plans {
            ctl.try_admit_local(PiconetId(p as u16), plan.request.clone())
                .map_err(|e| format!("seeding piconet {p}: {e}"))?;
        }
        gs_plans.push(plans);
    }
    for (ci, path) in chains.iter().enumerate() {
        ctl.admit_chain(ChainRequest {
            id: ci as u32,
            tspec: paper_tspec(),
            deadline,
            hops: path.clone(),
        })
        .map_err(|e| format!("chain {ci}: {e}"))?;
    }
    // Read the grants back only now: a later chain's admission may have
    // shifted an earlier chain's priorities (within its deadline), and the
    // controller keeps every stored grant re-derived against the schedule
    // actually in force.
    let grants = ctl.chains().to_vec();
    for (grant, path) in grants.iter().zip(chains) {
        for (hop_grant, hop_spec) in grant.hops.iter().zip(path) {
            gs_plans[hop_spec.piconet.index()].push(GsFlowPlan {
                request: GsRequest::new(
                    hop_spec.flow,
                    hop_spec.slave,
                    hop_spec.direction,
                    paper_tspec(),
                    hop_grant.rate,
                ),
                y: hop_grant.y,
                achievable_bound: hop_grant.bound,
                guaranteed: grant.composed_bound <= grant.deadline,
            });
        }
    }
    for plans in &mut gs_plans {
        plans.sort_by_key(|p| p.request.id);
    }
    let outcomes = (0..n)
        .map(|p| ctl.piconet(PiconetId(p as u16)).outcome().clone())
        .collect();
    Ok((outcomes, gs_plans, grants))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_chained_topology() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::chained(3));
        assert_eq!(sc.config.piconets.len(), 3);
        assert_eq!(sc.config.bridges.len(), 2);
        assert_eq!(
            sc.config.chains[0].hops,
            vec![FlowId(901), FlowId(902), FlowId(903), FlowId(904)]
        );
        // P0: 4 GS + 1 hop out + 4 BE; P1: 4 GS + hop in + hop out + 4 BE;
        // P2: 4 GS + hop in + 4 BE.
        assert_eq!(sc.config.piconets[0].flows.len(), 9);
        assert_eq!(sc.config.piconets[1].flows.len(), 10);
        assert_eq!(sc.config.piconets[2].flows.len(), 9);
        for cfg in &sc.config.piconets {
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn nine_piconets_keep_the_historic_id_block() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::chained(9));
        assert_eq!(sc.config.piconets.len(), 9);
        assert_eq!(chain_id_base(9), CHAIN_ID_BASE);
        assert_eq!(rev_chain_id_base(9), REV_CHAIN_ID_BASE);
        // Highest paper-flow id stays below the chain id block.
        let max_id = sc
            .config
            .piconets
            .iter()
            .flat_map(|c| &c.flows)
            .map(|f| f.id.0)
            .filter(|id| *id < CHAIN_ID_BASE)
            .max()
            .unwrap();
        assert!(max_id < CHAIN_ID_BASE);
        assert!(ScatternetSim::new(
            sc.config.clone(),
            sc.pollers(PollerKind::PfpGs),
            sc.config
                .piconets
                .iter()
                .map(|_| Box::new(IdealChannel) as Box<dyn ChannelModel>)
                .collect(),
        )
        .is_ok());
    }

    #[test]
    fn long_chains_widen_the_id_block() {
        // Beyond nine piconets the hop block slides past every paper
        // block (piconet 15's flows are 1501..1504 < chain_id_base(16)).
        let sc = ScatternetScenario::build(ScatternetScenarioParams::chained(16));
        assert_eq!(sc.config.piconets.len(), 16);
        assert_eq!(chain_id_base(16), 1600);
        let base = chain_id_base(16);
        assert_eq!(sc.config.chains[0].hops[0], FlowId(hop_out_id(base, 0)));
        assert_eq!(sc.config.chains[0].hops.len(), 30);
        let max_paper = sc
            .config
            .piconets
            .iter()
            .flat_map(|c| &c.flows)
            .map(|f| f.id.0)
            .filter(|id| *id < base)
            .max()
            .unwrap();
        assert!(max_paper < base);
        assert!(ScatternetSim::new(
            sc.config.clone(),
            sc.pollers(PollerKind::PfpGs),
            sc.config
                .piconets
                .iter()
                .map(|_| Box::new(IdealChannel) as Box<dyn ChannelModel>)
                .collect(),
        )
        .is_ok());
    }

    #[test]
    fn builds_ring_topology() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::ring(4));
        // n bridges: the line's three plus the wrap P3/S6 → P0/S7.
        assert_eq!(sc.config.bridges.len(), 4);
        assert_eq!(sc.config.bridges[3].upstream.piconet, PiconetId(3));
        assert_eq!(sc.config.bridges[3].downstream.piconet, PiconetId(0));
        // Two chains: the forward line and the two-hop wrap chain.
        assert_eq!(sc.config.chains.len(), 2);
        let base = chain_id_base(4);
        assert_eq!(
            sc.config.chains[1].hops,
            vec![FlowId(hop_out_id(base, 3)), FlowId(hop_in_id(base, 0))]
        );
        // Every piconet now holds both bridge roles.
        for cfg in &sc.config.piconets {
            assert!(cfg.validate().is_ok());
            for sl in [BRIDGE_IN_SLAVE, BRIDGE_OUT_SLAVE] {
                assert!(cfg.flows.iter().any(|f| f.slave.get() == sl));
            }
        }
        // Both chains are source-fed at their entries and deliver.
        let mut params = ScatternetScenarioParams::ring(4);
        params.warmup = SimDuration::from_millis(500);
        let report = ScatternetScenario::build(params)
            .run(PollerKind::PfpGs, SimTime::from_secs(3))
            .unwrap();
        for (ci, chain) in report.chains.iter().enumerate() {
            assert!(
                chain.delivered_packets > 50,
                "ring chain {ci} delivered only {}",
                chain.delivered_packets
            );
        }
    }

    #[test]
    fn builds_tree_topology() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::tree(5));
        // One bridge and one two-hop chain per edge.
        assert_eq!(sc.config.bridges.len(), 4);
        assert_eq!(sc.config.chains.len(), 4);
        let base = chain_id_base(5);
        for (c, chain) in sc.config.chains.iter().enumerate() {
            let child = (c + 1) as u16;
            assert_eq!(
                chain.hops,
                vec![
                    FlowId(hop_out_id(base, child)),
                    FlowId(hop_in_id(base, child))
                ]
            );
        }
        // Piconet 0 parents children 1 and 2: S6 and S5 out-bridges.
        let p0_slaves: Vec<u8> = sc.config.piconets[0]
            .flows
            .iter()
            .map(|f| f.slave.get())
            .collect();
        assert!(p0_slaves.contains(&BRIDGE_OUT_SLAVE));
        assert!(p0_slaves.contains(&TREE_SECOND_OUT_SLAVE));
        for cfg in &sc.config.piconets {
            assert!(cfg.validate().is_ok());
        }
        let mut params = ScatternetScenarioParams::tree(5);
        params.warmup = SimDuration::from_millis(500);
        let report = ScatternetScenario::build(params)
            .run(PollerKind::PfpGs, SimTime::from_secs(3))
            .unwrap();
        for (ci, chain) in report.chains.iter().enumerate() {
            assert!(
                chain.delivered_packets > 50,
                "tree chain {ci} delivered only {}",
                chain.delivered_packets
            );
        }
    }

    #[test]
    fn non_chain_topologies_reject_chain_only_parameters() {
        let mut p = ScatternetScenarioParams::ring(3);
        p.chain_deadline = Some(SimDuration::from_millis(150));
        assert!(ScatternetScenario::try_build(p)
            .unwrap_err()
            .contains("chain topology only"));
        let mut p = ScatternetScenarioParams::ring(3);
        p.bidirectional = true;
        assert!(ScatternetScenario::try_build(p)
            .unwrap_err()
            .contains("chain topology only"));
        let mut p = ScatternetScenarioParams::tree(3);
        p.include_be = true;
        assert!(ScatternetScenario::try_build(p)
            .unwrap_err()
            .contains("include_be"));
    }

    #[test]
    fn paper_entities_keep_single_piconet_plans() {
        use crate::scenario::{PaperScenario, PaperScenarioParams};
        let single = PaperScenario::build(PaperScenarioParams::default());
        let scatter = ScatternetScenario::build(ScatternetScenarioParams::chained(2));
        // Bridge entities are appended after the paper's three, so the
        // paper flows' schedules are identical in every piconet.
        for plans in &scatter.gs_plans {
            for (sp, pp) in plans.iter().zip(&single.gs_plans) {
                assert_eq!(sp.y, pp.y, "paper entity y must be unchanged");
                assert_eq!(sp.achievable_bound, pp.achievable_bound);
            }
            assert!(plans.len() > single.gs_plans.len(), "bridge hops present");
        }
    }

    #[test]
    fn sources_cover_exactly_the_source_fed_flows() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::chained(2));
        let ids: Vec<FlowId> = sc.sources().iter().map(|s| s.flow()).collect();
        // Chain entry is fed; the relay-fed hop is not.
        assert!(ids.contains(&FlowId(901)));
        assert!(!ids.contains(&FlowId(902)));
        // Per piconet: 4 GS + 4 BE, plus the one chain source.
        assert_eq!(ids.len(), 2 * 8 + 1);
        // Deterministic.
        let again: Vec<FlowId> = sc.sources().iter().map(|s| s.flow()).collect();
        assert_eq!(ids, again);
    }

    #[test]
    fn two_piconet_chain_runs_and_reports_end_to_end() {
        let mut params = ScatternetScenarioParams::chained(2);
        params.warmup = SimDuration::from_millis(500);
        let sc = ScatternetScenario::build(params);
        let report = sc.run(PollerKind::PfpGs, SimTime::from_secs(4)).unwrap();
        let chain = &report.chains[0];
        assert!(
            chain.delivered_packets > 100,
            "the bridged GS flow must flow: {} delivered",
            chain.delivered_packets
        );
        assert_eq!(chain.e2e.count() as u64, chain.delivered_packets);
        assert!(chain.residence.count() > 0);
        // Paper GS flows still deliver ~64 kbps in each piconet.
        for p in 0..2u16 {
            let r = report.piconet(PiconetId(p));
            for id in 1..=4u32 {
                let kbps = r.throughput_kbps(FlowId(PICONET_ID_STRIDE * p as u32 + id));
                assert!(
                    (kbps - 64.0).abs() < 4.0,
                    "P{p} flow {id}: {kbps} kbps (expected ~64)"
                );
            }
        }
    }
}

#[cfg(test)]
mod admission_path_tests {
    use super::*;
    use btgs_piconet::ScatternetReport;

    fn deadline_params(n: u16, deadline_ms: u64, bidirectional: bool) -> ScatternetScenarioParams {
        let mut params = ScatternetScenarioParams::chained(n);
        // At Dreq = 40 ms the paper flows' granted rates (x down to
        // 12.9 ms) leave no capacity for a guaranteed hop entity — the
        // admission test rightly rejects any chain. The paper's 46 ms
        // sweep point keeps every paper interval ≥ 15 ms; a 10 ms
        // rendezvous cycle keeps the absence gap (5 ms) inside the
        // presence-compensation window while each 5 ms dwell (8 slots)
        // still fits full DH3 exchanges.
        params.delay_requirement = SimDuration::from_millis(46);
        params.bridge_cycle = SimDuration::from_millis(10);
        params.warmup = SimDuration::from_millis(500);
        params.chain_deadline = Some(SimDuration::from_millis(deadline_ms));
        params.bidirectional = bidirectional;
        params
    }

    #[test]
    fn deadline_build_records_grants_and_intervals() {
        let sc = ScatternetScenario::build(deadline_params(2, 150, false));
        assert_eq!(sc.chain_grants.len(), 1);
        let grant = &sc.chain_grants[0];
        assert!(grant.composed_bound <= SimDuration::from_millis(150));
        assert_eq!(grant.hops.len(), 2);
        // The granted polling intervals ride on the ChainSpec.
        assert_eq!(sc.config.chains[0].hop_intervals, grant.hop_intervals());
        // Every hop flow has a guaranteed plan in its piconet.
        for hop in &grant.hops {
            let plan = sc.gs_plans[hop.piconet.index()]
                .iter()
                .find(|p| p.request.id == hop.flow)
                .expect("hop flow has a plan");
            assert!(plan.guaranteed);
            assert_eq!(plan.achievable_bound, hop.bound);
        }
        // End piconets trade S3 for the guaranteed hop slot, keeping
        // flows 1–3.
        let p0_gs: Vec<u32> = sc.config.piconets[0]
            .flows
            .iter()
            .filter(|f| f.id.0 < CHAIN_ID_BASE && f.channel.is_gs())
            .map(|f| f.id.0)
            .collect();
        assert_eq!(p0_gs, vec![1, 2, 3]);
    }

    #[test]
    fn transit_piconets_trade_local_flows_for_guaranteed_hops() {
        let sc = ScatternetScenario::build(deadline_params(3, 260, false));
        // Transit piconet 1 carries only bridged traffic: a guaranteed
        // hop needs a presence-compensated interval (priority 1 or 2)
        // that any local GS load would deny — exactly what the admission
        // test enforces.
        let transit_gs: Vec<u32> = sc.config.piconets[1]
            .flows
            .iter()
            .filter(|f| f.channel.is_gs() && f.id.0 < CHAIN_ID_BASE)
            .map(|f| f.id.0)
            .collect();
        assert_eq!(transit_gs, Vec::<u32>::new());
        // End piconets keep S1 and the S2 pair.
        assert!(sc.config.piconets[0].flows.iter().any(|f| f.id.0 == 3));
        assert!(sc.config.piconets[2].flows.iter().any(|f| f.id.0 == 203));
        assert!(!sc.config.piconets[0].flows.iter().any(|f| f.id.0 == 4));
        // The measured-only path still carries the full, over-committed
        // load (its chain has no guarantee).
        let measured = ScatternetScenario::build(ScatternetScenarioParams::chained(3));
        assert!(measured.config.piconets[1]
            .flows
            .iter()
            .any(|f| f.id.0 == 104));
    }

    #[test]
    fn infeasible_deadline_is_an_error_not_a_panic() {
        let err = ScatternetScenario::try_build(deadline_params(2, 30, false)).unwrap_err();
        assert!(
            err.contains("chain 0"),
            "error should name the rejected chain: {err}"
        );
    }

    #[test]
    fn bidirectional_scenario_builds_both_chains() {
        let sc = ScatternetScenario::build(deadline_params(2, 150, true));
        assert_eq!(sc.config.chains.len(), 2);
        assert_eq!(sc.chain_grants.len(), 2);
        let (base, rev_base) = (chain_id_base(2), rev_chain_id_base(2));
        assert_eq!(
            sc.config.chains[1].hops,
            vec![
                FlowId(rev_out_id(rev_base, 1)),
                FlowId(rev_in_id(rev_base, 0))
            ]
        );
        // Both entries are source-fed; relay-fed hops are not.
        let ids: Vec<FlowId> = sc.sources().iter().map(|s| s.flow()).collect();
        assert!(ids.contains(&FlowId(hop_out_id(base, 0))));
        assert!(ids.contains(&FlowId(rev_out_id(rev_base, 1))));
        assert!(!ids.contains(&FlowId(hop_in_id(base, 1))));
        assert!(!ids.contains(&FlowId(rev_in_id(rev_base, 0))));
        // Reverse hops piggyback on the forward bridge entities: the
        // bridge slaves' entities each serve two flows.
        for outcome in &sc.outcomes {
            for entity in &outcome.entities {
                if entity.slave.get() == BRIDGE_IN_SLAVE || entity.slave.get() == BRIDGE_OUT_SLAVE {
                    assert_eq!(entity.flow_ids.len(), 2, "bridge entity piggybacks");
                }
            }
        }
    }

    fn assert_chains_within_bounds(sc: &ScatternetScenario, report: &ScatternetReport) {
        for (ci, chain) in report.chains.iter().enumerate() {
            let grant = &sc.chain_grants[ci];
            assert!(
                chain.delivered_packets > 50,
                "chain {ci} delivered only {}",
                chain.delivered_packets
            );
            let measured = chain.e2e.max().expect("chain delivered");
            assert!(
                measured <= grant.composed_bound,
                "chain {ci}: measured e2e max {measured} exceeds the composed bound {}",
                grant.composed_bound
            );
        }
    }

    #[test]
    fn measured_e2e_never_exceeds_the_composed_bound_bidirectional() {
        // The tentpole claim, in-line: across both pollers, every admitted
        // chain's measured worst case stays inside the composed analytic
        // bound (the full grid runs in the validation binary / CI).
        let sc = ScatternetScenario::build(deadline_params(2, 150, true));
        for kind in [PollerKind::PfpGs, PollerKind::FixedGs] {
            let report = sc.run(kind, SimTime::from_secs(3)).unwrap();
            assert_chains_within_bounds(&sc, &report);
        }
    }

    #[test]
    fn three_piconet_admitted_chain_holds_its_bound() {
        let sc = ScatternetScenario::build(deadline_params(3, 260, false));
        let report = sc.run(PollerKind::PfpGs, SimTime::from_secs(3)).unwrap();
        assert_chains_within_bounds(&sc, &report);
    }
}
