//! The scatternet evaluation scenario: chained Fig. 4 piconets with one
//! bridged Guaranteed Service flow — the paper's future-work workload.
//!
//! `N` piconets each carry the paper's GS population (flows 1–4 on S1–S3,
//! ids offset by `100·p`) plus an optional reduced best-effort load (S4 and
//! S5; S6/S7 are reserved for bridge roles). A single cross-piconet GS
//! chain enters at the master of piconet 0 and is relayed bridge by bridge
//! to the master of piconet `N−1`:
//!
//! ```text
//! M0 ─▸ B0 (P0/S6 ⇄ P1/S7) ─▸ M1 ─▸ B1 (P1/S6 ⇄ P2/S7) ─▸ M2 ─ …
//! ```
//!
//! Every bridge alternates between its two piconets on a deterministic
//! rendezvous cycle (half the cycle in each), and each piconet's GS
//! schedule gains one bridge-hop entity per bridge role, appended *after*
//! the paper entities — so the paper flows keep their exact single-piconet
//! plans and the per-piconet reports stay comparable to Fig. 5.

use crate::admission::AdmissionOutcome;
use crate::gs_poller::GsPoller;
use crate::scenario::{
    derive_gs_schedule, GsFlowPlan, PollerKind, BE_PACKET_SIZE, BE_RATES_KBPS, GS_INTERVAL,
    GS_PACKET_RANGE,
};
use btgs_baseband::{
    AmAddr, ChannelModel, Direction, IdealChannel, LogicalChannel, PacketType, PiconetId,
    ScopedSlave,
};
use btgs_des::{DetRng, SimDuration, SimTime};
use btgs_piconet::{
    BridgeSpec, ChainSpec, FlowSpec, PiconetConfig, PiconetError, Poller, SarPolicy,
    ScatternetConfig, ScatternetReport, ScatternetSim,
};
use btgs_pollers::PfpBePoller;
use btgs_traffic::{CbrSource, FlowId, Source};

/// Gap between consecutive piconets' flow id blocks.
pub const PICONET_ID_STRIDE: u32 = 100;

/// First id of the chain's hop flows (`CHAIN_ID_BASE + 2p` enters piconet
/// `p`, `CHAIN_ID_BASE + 1 + 2p` leaves it).
pub const CHAIN_ID_BASE: u32 = 900;

/// The slave address every bridge uses in its *downstream* piconet.
pub const BRIDGE_IN_SLAVE: u8 = 7;

/// The slave address every bridge uses in its *upstream* piconet.
pub const BRIDGE_OUT_SLAVE: u8 = 6;

/// Parameters of the scatternet scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScatternetScenarioParams {
    /// Number of chained piconets (≥ 2).
    pub piconets: u8,
    /// The delay bound every per-piconet GS flow requests.
    pub delay_requirement: SimDuration,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Warm-up excluded from measurements (per piconet and chain).
    pub warmup: SimDuration,
    /// Include the reduced best-effort load (S4/S5 pairs per piconet).
    pub include_be: bool,
    /// Bridge rendezvous cycle; each bridge spends half in each piconet.
    pub bridge_cycle: SimDuration,
}

impl ScatternetScenarioParams {
    /// Defaults matching [`PaperScenarioParams`](crate::PaperScenarioParams)
    /// with `n` piconets and a 20 ms rendezvous cycle.
    pub fn chained(n: u8) -> ScatternetScenarioParams {
        ScatternetScenarioParams {
            piconets: n,
            delay_requirement: SimDuration::from_millis(40),
            seed: 1,
            warmup: SimDuration::from_secs(2),
            include_be: true,
            bridge_cycle: SimDuration::from_millis(20),
        }
    }
}

/// A fully derived instance of the chained-piconets scenario.
#[derive(Clone, Debug)]
pub struct ScatternetScenario {
    /// The parameters it was built from.
    pub params: ScatternetScenarioParams,
    /// The scatternet configuration (piconets, bridges, the chain).
    pub config: ScatternetConfig,
    /// Per-piconet GS schedules (paper entities plus bridge-hop entities).
    pub outcomes: Vec<AdmissionOutcome>,
    /// Per-piconet GS flow plans, paper flows and bridge hops alike.
    pub gs_plans: Vec<Vec<GsFlowPlan>>,
}

fn slave(n: u8) -> AmAddr {
    AmAddr::new(n).expect("scenario slave addresses are 1..=7")
}

/// First hop id of piconet `p`'s incoming bridge flow.
fn hop_in_id(p: u8) -> u32 {
    CHAIN_ID_BASE + 2 * p as u32
}

/// Hop id of piconet `p`'s outgoing bridge flow.
fn hop_out_id(p: u8) -> u32 {
    CHAIN_ID_BASE + 1 + 2 * p as u32
}

impl ScatternetScenario {
    /// Derives the scenario.
    ///
    /// # Panics
    ///
    /// Panics if `params.piconets < 2` (a one-piconet "scatternet" is the
    /// plain [`PaperScenario`](crate::PaperScenario)) or `> 9` (piconet 9's
    /// paper-flow id block would reach [`CHAIN_ID_BASE`]; longer chains
    /// need a wider id scheme first).
    pub fn build(params: ScatternetScenarioParams) -> ScatternetScenario {
        let n = params.piconets;
        assert!(n >= 2, "a scatternet scenario needs at least two piconets");
        assert!(
            u32::from(n) * PICONET_ID_STRIDE <= CHAIN_ID_BASE,
            "flow id scheme supports at most {} chained piconets",
            CHAIN_ID_BASE / PICONET_ID_STRIDE
        );
        let allowed = vec![PacketType::Dh1, PacketType::Dh3];

        let mut piconets = Vec::with_capacity(n as usize);
        let mut outcomes = Vec::with_capacity(n as usize);
        let mut gs_plans = Vec::with_capacity(n as usize);
        for p in 0..n {
            let base = PICONET_ID_STRIDE * p as u32;
            // The paper's entity order, then the bridge roles (lowest
            // priority, so the paper flows keep their exact plans).
            let mut defs: Vec<(AmAddr, Vec<(u32, Direction)>)> = vec![
                (slave(1), vec![(base + 1, Direction::SlaveToMaster)]),
                (
                    slave(2),
                    vec![
                        (base + 2, Direction::MasterToSlave),
                        (base + 3, Direction::SlaveToMaster),
                    ],
                ),
                (slave(3), vec![(base + 4, Direction::SlaveToMaster)]),
            ];
            if p > 0 {
                defs.push((
                    slave(BRIDGE_IN_SLAVE),
                    vec![(hop_in_id(p), Direction::SlaveToMaster)],
                ));
            }
            if p < n - 1 {
                defs.push((
                    slave(BRIDGE_OUT_SLAVE),
                    vec![(hop_out_id(p), Direction::MasterToSlave)],
                ));
            }
            let borrowed: Vec<(AmAddr, &[(u32, Direction)])> =
                defs.iter().map(|(s, f)| (*s, f.as_slice())).collect();
            let (outcome, plans) =
                derive_gs_schedule(&borrowed, params.delay_requirement, &allowed);

            let mut config = PiconetConfig::new(allowed.clone()).with_warmup(params.warmup);
            for plan in &plans {
                config = config.with_flow(FlowSpec::new(
                    plan.request.id,
                    plan.request.slave,
                    plan.request.direction,
                    LogicalChannel::GuaranteedService,
                ));
            }
            if params.include_be {
                // S6/S7 carry bridge roles, so only the two lightest Fig. 4
                // best-effort pairs ride along (S4 and S5).
                for k in 0..2u32 {
                    let sl = slave(4 + k as u8);
                    config = config
                        .with_flow(FlowSpec::new(
                            FlowId(base + 5 + 2 * k),
                            sl,
                            Direction::MasterToSlave,
                            LogicalChannel::BestEffort,
                        ))
                        .with_flow(FlowSpec::new(
                            FlowId(base + 6 + 2 * k),
                            sl,
                            Direction::SlaveToMaster,
                            LogicalChannel::BestEffort,
                        ));
                }
            }
            piconets.push(config);
            outcomes.push(outcome);
            gs_plans.push(plans);
        }

        let bridges = (0..n - 1)
            .map(|k| BridgeSpec {
                upstream: ScopedSlave::new(PiconetId(k), slave(BRIDGE_OUT_SLAVE)),
                downstream: ScopedSlave::new(PiconetId(k + 1), slave(BRIDGE_IN_SLAVE)),
                cycle: params.bridge_cycle,
                dwell_upstream: params.bridge_cycle / 2,
            })
            .collect();
        let mut hops = Vec::with_capacity(2 * (n as usize - 1));
        for p in 0..n {
            if p > 0 {
                hops.push(FlowId(hop_in_id(p)));
            }
            if p < n - 1 {
                hops.push(FlowId(hop_out_id(p)));
            }
        }
        let config = ScatternetConfig {
            piconets,
            bridges,
            chains: vec![ChainSpec { hops }],
        };

        ScatternetScenario {
            params,
            config,
            outcomes,
            gs_plans,
        }
    }

    /// The id of the chain's first hop (the flow a source must feed).
    pub fn chain_entry(&self) -> FlowId {
        self.config.chains[0].hops[0]
    }

    /// The traffic sources of every source-fed flow, seeded from
    /// `params.seed`.
    ///
    /// Like the single-piconet scenario, CBR phases are staggered
    /// pseudo-randomly within one interval; additionally each piconet's
    /// sources are staggered by a per-piconet offset (via
    /// [`CbrSource::starting_at`]) so the piconets do not run in lockstep.
    pub fn sources(&self) -> Vec<Box<dyn Source>> {
        let root = DetRng::seed_from_u64(self.params.seed);
        let mut out: Vec<Box<dyn Source>> = Vec::new();
        for (p, cfg) in self.config.piconets.iter().enumerate() {
            // Spread piconet starts across one GS interval.
            let pic_offset = GS_INTERVAL * p as u64 / self.config.piconets.len() as u64;
            for f in &cfg.flows {
                if f.id != self.chain_entry() && f.id.0 >= CHAIN_ID_BASE {
                    continue; // relay-fed hop
                }
                let mut stream = root.stream(u64::from(f.id.0));
                let (interval, min_size, max_size) = if f.channel.is_gs() {
                    (GS_INTERVAL, GS_PACKET_RANGE.0, GS_PACKET_RANGE.1)
                } else {
                    let k = (f.slave.get() - 4) as usize;
                    let rate_bps = BE_RATES_KBPS[k] * 1000.0;
                    let interval =
                        SimDuration::from_secs_f64(BE_PACKET_SIZE as f64 * 8.0 / rate_bps);
                    (interval, BE_PACKET_SIZE, BE_PACKET_SIZE)
                };
                let offset = SimTime::ZERO
                    + pic_offset
                    + SimDuration::from_nanos(stream.below(interval.as_nanos()));
                out.push(Box::new(
                    CbrSource::new(f.id, interval, min_size, max_size, stream).starting_at(offset),
                ));
            }
        }
        out
    }

    /// Builds the per-piconet pollers of the given kind.
    pub fn pollers(&self, kind: PollerKind) -> Vec<Box<dyn Poller>> {
        self.outcomes
            .iter()
            .map(|outcome| {
                let be: Box<dyn Poller> = Box::new(PfpBePoller::new(SimDuration::from_millis(25)));
                let poller: Box<dyn Poller> = match kind {
                    PollerKind::PfpGs => Box::new(GsPoller::pfp(outcome, SimTime::ZERO, be)),
                    PollerKind::FixedGs => {
                        Box::new(GsPoller::fixed(outcome, SimTime::ZERO).with_best_effort(be))
                    }
                    PollerKind::Custom(improvements) => Box::new(
                        GsPoller::with_improvements(outcome, SimTime::ZERO, improvements)
                            .with_best_effort(be),
                    ),
                };
                poller
            })
            .collect()
    }

    /// Builds the simulator over ideal radio channels.
    ///
    /// # Errors
    ///
    /// Propagates scatternet validation errors (none are expected for a
    /// derived scenario).
    pub fn simulator(&self, kind: PollerKind) -> Result<ScatternetSim, PiconetError> {
        let channels: Vec<Box<dyn ChannelModel>> = self
            .config
            .piconets
            .iter()
            .map(|_| Box::new(IdealChannel) as Box<dyn ChannelModel>)
            .collect();
        let mut sim = ScatternetSim::new(self.config.clone(), self.pollers(kind), channels)?;
        for src in self.sources() {
            sim.add_source(src)?;
        }
        Ok(sim)
    }

    /// Runs the scenario to `horizon` with the given poller kind.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration errors (none are expected for a
    /// derived scenario).
    pub fn run(
        &self,
        kind: PollerKind,
        horizon: SimTime,
    ) -> Result<ScatternetReport, PiconetError> {
        self.simulator(kind)?.run(horizon)
    }

    /// The segmentation policy of every piconet (the paper's max-first).
    pub fn sar(&self) -> SarPolicy {
        SarPolicy::MaxFirst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_chained_topology() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::chained(3));
        assert_eq!(sc.config.piconets.len(), 3);
        assert_eq!(sc.config.bridges.len(), 2);
        assert_eq!(
            sc.config.chains[0].hops,
            vec![FlowId(901), FlowId(902), FlowId(903), FlowId(904)]
        );
        // P0: 4 GS + 1 hop out + 4 BE; P1: 4 GS + hop in + hop out + 4 BE;
        // P2: 4 GS + hop in + 4 BE.
        assert_eq!(sc.config.piconets[0].flows.len(), 9);
        assert_eq!(sc.config.piconets[1].flows.len(), 10);
        assert_eq!(sc.config.piconets[2].flows.len(), 9);
        for cfg in &sc.config.piconets {
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "at most 9 chained piconets")]
    fn rejects_chains_that_overrun_the_id_scheme() {
        // Piconet 9's paper-flow block would collide with CHAIN_ID_BASE.
        let _ = ScatternetScenario::build(ScatternetScenarioParams::chained(10));
    }

    #[test]
    fn nine_piconets_is_the_longest_supported_chain() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::chained(9));
        assert_eq!(sc.config.piconets.len(), 9);
        // Highest paper-flow id stays below the chain id block.
        let max_id = sc
            .config
            .piconets
            .iter()
            .flat_map(|c| &c.flows)
            .map(|f| f.id.0)
            .filter(|id| *id < CHAIN_ID_BASE)
            .max()
            .unwrap();
        assert!(max_id < CHAIN_ID_BASE);
        assert!(ScatternetSim::new(
            sc.config.clone(),
            sc.pollers(PollerKind::PfpGs),
            sc.config
                .piconets
                .iter()
                .map(|_| Box::new(IdealChannel) as Box<dyn ChannelModel>)
                .collect(),
        )
        .is_ok());
    }

    #[test]
    fn paper_entities_keep_single_piconet_plans() {
        use crate::scenario::{PaperScenario, PaperScenarioParams};
        let single = PaperScenario::build(PaperScenarioParams::default());
        let scatter = ScatternetScenario::build(ScatternetScenarioParams::chained(2));
        // Bridge entities are appended after the paper's three, so the
        // paper flows' schedules are identical in every piconet.
        for plans in &scatter.gs_plans {
            for (sp, pp) in plans.iter().zip(&single.gs_plans) {
                assert_eq!(sp.y, pp.y, "paper entity y must be unchanged");
                assert_eq!(sp.achievable_bound, pp.achievable_bound);
            }
            assert!(plans.len() > single.gs_plans.len(), "bridge hops present");
        }
    }

    #[test]
    fn sources_cover_exactly_the_source_fed_flows() {
        let sc = ScatternetScenario::build(ScatternetScenarioParams::chained(2));
        let ids: Vec<FlowId> = sc.sources().iter().map(|s| s.flow()).collect();
        // Chain entry is fed; the relay-fed hop is not.
        assert!(ids.contains(&FlowId(901)));
        assert!(!ids.contains(&FlowId(902)));
        // Per piconet: 4 GS + 4 BE, plus the one chain source.
        assert_eq!(ids.len(), 2 * 8 + 1);
        // Deterministic.
        let again: Vec<FlowId> = sc.sources().iter().map(|s| s.flow()).collect();
        assert_eq!(ids, again);
    }

    #[test]
    fn two_piconet_chain_runs_and_reports_end_to_end() {
        let mut params = ScatternetScenarioParams::chained(2);
        params.warmup = SimDuration::from_millis(500);
        let sc = ScatternetScenario::build(params);
        let report = sc.run(PollerKind::PfpGs, SimTime::from_secs(4)).unwrap();
        let chain = &report.chains[0];
        assert!(
            chain.delivered_packets > 100,
            "the bridged GS flow must flow: {} delivered",
            chain.delivered_packets
        );
        assert_eq!(chain.e2e.count() as u64, chain.delivered_packets);
        assert!(chain.residence.count() > 0);
        // Paper GS flows still deliver ~64 kbps in each piconet.
        for p in 0..2u8 {
            let r = report.piconet(PiconetId(p));
            for id in 1..=4u32 {
                let kbps = r.throughput_kbps(FlowId(PICONET_ID_STRIDE * p as u32 + id));
                assert!(
                    (kbps - 64.0).abs() < 4.0,
                    "P{p} flow {id}: {kbps} kbps (expected ~64)"
                );
            }
        }
    }
}
