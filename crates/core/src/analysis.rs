//! Analytical cross-checks for the paper scenario.
//!
//! Slot-budget arithmetic that predicts the *shape* of Fig. 5 without
//! simulation: how many slots per second the GS schedule consumes at a
//! given delay requirement, and how the PFP divides the remainder among the
//! BE slaves (max-min fairly). The integration tests compare the simulator
//! against these predictions.

use crate::scenario::{PaperScenario, BE_PACKET_SIZE, BE_RATES_KBPS};
use btgs_baseband::SLOTS_PER_SECOND;
use btgs_metrics::max_min_fair;

/// Expected BE slot demand (slots per second) of each BE slave pair at full
/// rate: one 6-slot DH3↔DH3 exchange moves one 176-byte packet in each
/// direction.
pub fn be_slot_demands() -> [f64; 4] {
    let mut out = [0.0; 4];
    for (k, kbps) in BE_RATES_KBPS.iter().enumerate() {
        let pkts_per_sec_each_way = kbps * 1000.0 / 8.0 / BE_PACKET_SIZE as f64;
        out[k] = pkts_per_sec_each_way * 6.0;
    }
    out
}

/// Rough GS slot consumption (slots per second) of a derived scenario:
/// each entity polls at most every `x` seconds; a successful poll costs
/// 4 slots for a unidirectional entity (POLL + DH3 or DH3 + NULL) and
/// 6 slots for a piggybacked pair.
pub fn gs_slot_estimate(scenario: &PaperScenario) -> f64 {
    scenario
        .outcome
        .entities
        .iter()
        .map(|e| {
            let per_poll = if e.has_downlink && e.has_uplink {
                6.0
            } else {
                4.0
            };
            per_poll / e.x.as_secs_f64()
        })
        .sum()
}

/// Predicted per-slave BE throughput (kbit/s) when `gs_slots` slots per
/// second go to the GS schedule: the remainder is divided max-min fairly
/// over the BE demands, and each allocated 6-slot exchange moves
/// `2 x 176` bytes.
pub fn predicted_be_throughput_kbps(gs_slots: f64) -> [f64; 4] {
    let capacity = (SLOTS_PER_SECOND as f64 - gs_slots).max(0.0);
    let demands = be_slot_demands();
    let alloc = max_min_fair(capacity, &demands);
    let mut out = [0.0; 4];
    for (k, slots) in alloc.iter().enumerate() {
        let exchanges = slots / 6.0;
        out[k] = exchanges * 2.0 * BE_PACKET_SIZE as f64 * 8.0 / 1000.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PaperScenarioParams;
    use btgs_des::SimDuration;

    #[test]
    fn be_demands_match_hand_arithmetic() {
        let d = be_slot_demands();
        // 41.6 kbps = 5200 B/s = 29.54 packets/s -> 177.3 slots/s.
        assert!((d[0] - 177.27).abs() < 0.1, "{}", d[0]);
        assert!((d[3] - 248.86).abs() < 0.1, "{}", d[3]);
        let total: f64 = d.iter().sum();
        assert!((total - 852.3).abs() < 1.0, "{total}");
    }

    #[test]
    fn gs_estimate_grows_as_requirement_tightens() {
        let loose = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(46),
            ..Default::default()
        });
        let tight = PaperScenario::build(PaperScenarioParams {
            delay_requirement: SimDuration::from_millis(30),
            ..Default::default()
        });
        assert!(gs_slot_estimate(&tight) > gs_slot_estimate(&loose));
        // At the loose end the GS schedule is in the ~700 slots/s regime
        // computed in DESIGN.md.
        let slots = gs_slot_estimate(&loose);
        assert!((600.0..950.0).contains(&slots), "{slots}");
    }

    #[test]
    fn prediction_saturates_be_at_loose_bounds() {
        // With ~700 GS slots the remainder covers most BE demand.
        let kbps = predicted_be_throughput_kbps(700.0);
        assert!((kbps[0] - 83.2).abs() < 0.5, "S4 saturated: {}", kbps[0]);
        // Tight GS budget: everyone is squeezed evenly.
        let squeezed = predicted_be_throughput_kbps(1100.0);
        assert!(squeezed[3] < 83.0);
        let spread = squeezed.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - squeezed.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread < 1.0, "fair division under pressure: {squeezed:?}");
    }
}
