//! Per-entity poll planning (§3.1 fixed interval, §3.2 variable interval).
//!
//! A [`PollPlan`] holds the planned time of an entity's next poll and
//! advances it according to the poller flavour:
//!
//! * **Fixed interval** (§3.1): every poll plans the next one `x` after its
//!   own *planned* time, unconditionally.
//! * **Variable interval** (§3.2): three improvements save polls without
//!   weakening the delay guarantee —
//!   (a) after the **last segment** of a packet of size `L`, the next poll
//!   is planned `L/R` after the planned time of the packet's **first**
//!   poll (the fluid model affords the packet `L/R` of service time, Eq. 10);
//!   (b) after an **unsuccessful** poll, the next poll is planned `x` after
//!   the poll's **actual** time (nothing was waiting, so the plan may relax
//!   to reality);
//!   (c) a due poll whose master-side queue is known empty is **skipped**
//!   outright (master→slave flows only).

use btgs_des::{SimDuration, SimTime};

/// Which of the §3.2 improvements are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Improvements {
    /// Improvement (a): packet-size-aware postponement after a last
    /// segment.
    pub packet_aware: bool,
    /// Improvement (b): replan unsuccessful polls from their actual time.
    pub replan_from_actual: bool,
    /// Improvement (c): skip polls for known-empty master→slave flows.
    pub skip_empty_downlink: bool,
}

impl Improvements {
    /// The fixed-interval poller of §3.1 (no improvements).
    pub const NONE: Improvements = Improvements {
        packet_aware: false,
        replan_from_actual: false,
        skip_empty_downlink: false,
    };

    /// The variable-interval poller of §3.2 (all improvements).
    pub const ALL: Improvements = Improvements {
        packet_aware: true,
        replan_from_actual: true,
        skip_empty_downlink: true,
    };
}

/// What a poll observed about the entity's **accounting flow** — the flow
/// whose request drives the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollOutcome {
    /// A segment of the accounting flow moved and completed its packet.
    LastSegment {
        /// Size of the completed higher-layer packet in bytes.
        packet_size: u32,
        /// `true` if this segment also started the packet.
        first_segment: bool,
    },
    /// A segment moved but its packet is not finished (or the segment needs
    /// an ARQ retransmission).
    MidSegment {
        /// `true` if this segment started its packet.
        first_segment: bool,
    },
    /// The poll moved no data of the accounting flow — the paper's
    /// *unsuccessful poll*.
    Unsuccessful,
}

/// The poll-planning state of one GS entity.
///
/// # Examples
///
/// ```
/// use btgs_core::{Improvements, PollOutcome, PollPlan};
/// use btgs_des::{SimDuration, SimTime};
///
/// let x = SimDuration::from_millis(16);
/// let mut plan = PollPlan::new(x, 9000.0, Improvements::ALL, SimTime::ZERO);
/// assert!(plan.is_due(SimTime::ZERO));
///
/// // A 144-byte packet completes on the first poll: the next poll lands
/// // 144/9000 s = 16 ms after the first poll's *planned* time.
/// let planned = plan.next_poll();
/// plan.on_poll(
///     planned,
///     SimTime::from_millis(3), // executed late: planned time still rules
///     PollOutcome::LastSegment { packet_size: 144, first_segment: true },
/// );
/// assert_eq!(plan.next_poll(), SimTime::from_millis(16));
/// ```
#[derive(Clone, Debug)]
pub struct PollPlan {
    x: SimDuration,
    rate: f64,
    improvements: Improvements,
    next: SimTime,
    packet_first_plan: Option<SimTime>,
    skipped: u64,
    executed: u64,
    /// Memoized `(packet_size, L/R)` of the Eq. 10 fluid allowance. GS
    /// packets of a flow repeat a handful of sizes, so this caches the
    /// float division and seconds→nanos conversion of the common case.
    fluid_memo: Option<(u32, SimDuration)>,
}

impl PollPlan {
    /// Creates a plan whose first poll is planned at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is zero or `rate` is not positive and finite.
    pub fn new(x: SimDuration, rate: f64, improvements: Improvements, start: SimTime) -> PollPlan {
        assert!(!x.is_zero(), "poll interval must be positive");
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive and finite, got {rate}"
        );
        PollPlan {
            x,
            rate,
            improvements,
            next: start,
            packet_first_plan: None,
            skipped: 0,
            executed: 0,
            fluid_memo: None,
        }
    }

    /// The Eq. 10 fluid service allowance `L/R` for a packet of
    /// `packet_size` bytes, memoized per size.
    fn fluid_allowance(&mut self, packet_size: u32) -> SimDuration {
        match self.fluid_memo {
            Some((size, d)) if size == packet_size => d,
            _ => {
                let d = SimDuration::from_secs_f64(packet_size as f64 / self.rate);
                self.fluid_memo = Some((packet_size, d));
                d
            }
        }
    }

    /// The poll interval `x`.
    pub fn interval(&self) -> SimDuration {
        self.x
    }

    /// The planned time of the next poll.
    pub fn next_poll(&self) -> SimTime {
        self.next
    }

    /// `true` if the next poll's planned time has arrived.
    pub fn is_due(&self, now: SimTime) -> bool {
        self.next <= now
    }

    /// Polls skipped via improvement (c) so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Polls executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Skips the pending poll (improvement (c)): the next poll moves one
    /// interval forward from the skipped poll's planned time, consuming no
    /// air time.
    ///
    /// # Panics
    ///
    /// Panics if the plan's improvements do not include skipping.
    pub fn skip(&mut self) {
        assert!(
            self.improvements.skip_empty_downlink,
            "skip() requires improvement (c)"
        );
        self.next += self.x;
        self.skipped += 1;
        // A skipped poll cannot be mid-packet: packets drain consecutively.
        debug_assert!(self.packet_first_plan.is_none());
    }

    /// Records an executed poll for this entity and replans the next one.
    ///
    /// * `planned` — the poll's planned time (as read from
    ///   [`next_poll`](PollPlan::next_poll) when it was issued);
    /// * `actual` — when the master actually started the exchange;
    /// * `outcome` — what the accounting flow got out of it.
    pub fn on_poll(&mut self, planned: SimTime, actual: SimTime, outcome: PollOutcome) {
        debug_assert!(actual >= planned, "a poll cannot execute before its plan");
        self.executed += 1;
        match outcome {
            PollOutcome::LastSegment {
                packet_size,
                first_segment,
            } => {
                let first_plan = if first_segment {
                    planned
                } else {
                    self.packet_first_plan.unwrap_or(planned)
                };
                self.packet_first_plan = None;
                if self.improvements.packet_aware {
                    // Eq. 10: the fluid model affords the packet L/R of
                    // service; never plan earlier than the fixed plan would.
                    let fluid = first_plan + self.fluid_allowance(packet_size);
                    self.next = fluid.max(planned + self.x);
                } else {
                    self.next = planned + self.x;
                }
            }
            PollOutcome::MidSegment { first_segment } => {
                if first_segment {
                    self.packet_first_plan = Some(planned);
                }
                self.next = planned + self.x;
            }
            PollOutcome::Unsuccessful => {
                if self.packet_first_plan.is_some() {
                    // Only possible on a lossy radio: the poll carried no
                    // data (e.g. the POLL packet itself was lost) while a
                    // packet is still mid-drain. Keep the plan cadence and
                    // the first-poll anchor so the retransmissions continue
                    // at the provisioned rate.
                    self.next = planned + self.x;
                } else if self.improvements.replan_from_actual {
                    self.next = actual + self.x;
                } else {
                    self.next = planned + self.x;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn x16() -> SimDuration {
        SimDuration::from_millis(16)
    }

    fn fixed() -> PollPlan {
        PollPlan::new(x16(), 9000.0, Improvements::NONE, SimTime::ZERO)
    }

    fn variable() -> PollPlan {
        PollPlan::new(x16(), 9000.0, Improvements::ALL, SimTime::ZERO)
    }

    #[test]
    fn due_semantics() {
        let plan = fixed();
        assert!(plan.is_due(SimTime::ZERO));
        let mut plan = fixed();
        plan.on_poll(SimTime::ZERO, SimTime::ZERO, PollOutcome::Unsuccessful);
        assert!(!plan.is_due(ms(15)));
        assert!(plan.is_due(ms(16)));
    }

    #[test]
    fn fixed_plans_from_planned_time_always() {
        let mut plan = fixed();
        // Executed 5 ms late and unsuccessfully: next is still planned+x.
        plan.on_poll(SimTime::ZERO, ms(5), PollOutcome::Unsuccessful);
        assert_eq!(plan.next_poll(), ms(16));
        // Last segment of a big packet: fixed ignores packet size.
        plan.on_poll(
            ms(16),
            ms(17),
            PollOutcome::LastSegment {
                packet_size: 9000, // 1 second of fluid service!
                first_segment: true,
            },
        );
        assert_eq!(plan.next_poll(), ms(32));
    }

    #[test]
    fn improvement_a_postpones_by_fluid_service_time() {
        let mut plan = variable();
        // 288 bytes at 9000 B/s = 32 ms of fluid service, from the first
        // poll's planned time.
        plan.on_poll(
            SimTime::ZERO,
            SimTime::ZERO,
            PollOutcome::MidSegment {
                first_segment: true,
            },
        );
        assert_eq!(plan.next_poll(), ms(16));
        plan.on_poll(
            ms(16),
            ms(18),
            PollOutcome::LastSegment {
                packet_size: 288,
                first_segment: false,
            },
        );
        assert_eq!(plan.next_poll(), ms(32));
    }

    #[test]
    fn improvement_a_on_minimum_efficiency_packet_is_identity() {
        // The paper's remark: for the minimum-efficiency packet size the
        // next poll lands exactly x after the last planned poll.
        // x = eta_min / R with eta_min = 144, R = 9000: x = 16 ms, and a
        // single-segment 144-byte packet gives L/R = 16 ms as well.
        let mut plan = variable();
        plan.on_poll(
            SimTime::ZERO,
            ms(2),
            PollOutcome::LastSegment {
                packet_size: 144,
                first_segment: true,
            },
        );
        assert_eq!(plan.next_poll(), ms(16));
    }

    #[test]
    fn improvement_a_never_plans_before_fixed() {
        // A runt packet (below the policed minimum) must not pull the next
        // poll earlier than planned + x.
        let mut plan = variable();
        plan.on_poll(
            SimTime::ZERO,
            SimTime::ZERO,
            PollOutcome::LastSegment {
                packet_size: 10, // L/R = 1.1 ms << x
                first_segment: true,
            },
        );
        assert_eq!(plan.next_poll(), ms(16));
    }

    #[test]
    fn improvement_b_replans_from_actual() {
        let mut plan = variable();
        plan.on_poll(SimTime::ZERO, ms(7), PollOutcome::Unsuccessful);
        assert_eq!(plan.next_poll(), ms(7) + x16());
        // Fixed poller in the same situation sticks to the planned grid.
        let mut fixed_plan = fixed();
        fixed_plan.on_poll(SimTime::ZERO, ms(7), PollOutcome::Unsuccessful);
        assert_eq!(fixed_plan.next_poll(), ms(16));
    }

    #[test]
    fn improvement_c_skip_advances_plan_silently() {
        let mut plan = variable();
        plan.skip();
        plan.skip();
        assert_eq!(plan.next_poll(), ms(32));
        assert_eq!(plan.skipped(), 2);
        assert_eq!(plan.executed(), 0);
    }

    #[test]
    #[should_panic(expected = "improvement (c)")]
    fn fixed_plan_cannot_skip() {
        fixed().skip();
    }

    #[test]
    fn multi_packet_sequence() {
        let mut plan = variable();
        // Packet 1: two segments (first at t=0, second at t=16), 320 bytes.
        plan.on_poll(
            SimTime::ZERO,
            SimTime::ZERO,
            PollOutcome::MidSegment {
                first_segment: true,
            },
        );
        plan.on_poll(
            ms(16),
            ms(16),
            PollOutcome::LastSegment {
                packet_size: 320,
                first_segment: false,
            },
        );
        // 320 B / 9000 B/s = 35.56 ms from t=0.
        assert_eq!(plan.next_poll().as_nanos(), 35_555_556);
        assert_eq!(plan.executed(), 2);
    }

    #[test]
    fn lost_poll_mid_packet_keeps_cadence_and_anchor() {
        // A lossy radio can produce an unsuccessful poll while a packet is
        // mid-drain (the POLL itself got lost). The plan must neither crash
        // nor replan from the actual time — the packet keeps draining on
        // the provisioned grid.
        let mut plan = variable();
        plan.on_poll(
            SimTime::ZERO,
            SimTime::ZERO,
            PollOutcome::MidSegment {
                first_segment: true,
            },
        );
        plan.on_poll(ms(16), ms(20), PollOutcome::Unsuccessful); // lost POLL
        assert_eq!(plan.next_poll(), ms(32), "cadence from planned time");
        // The packet finally completes; improvement (a) still anchors at
        // the FIRST poll's planned time (t = 0).
        plan.on_poll(
            ms(32),
            ms(32),
            PollOutcome::LastSegment {
                packet_size: 450,
                first_segment: false,
            },
        );
        assert_eq!(plan.next_poll(), ms(50)); // 450 B / 9000 B/s from t=0
    }

    #[test]
    fn unsuccessful_when_late_and_fixed_catches_up() {
        // Fixed plans can fall behind real time; each poll advances exactly
        // one x from the planned time so the backlog of planned polls drains.
        let mut plan = fixed();
        plan.on_poll(SimTime::ZERO, ms(40), PollOutcome::Unsuccessful);
        assert_eq!(plan.next_poll(), ms(16));
        assert!(plan.is_due(ms(40)));
    }
}
