//! The maximum poll delay `y_i` (the paper's Fig. 2 algorithm).
//!
//! A planned poll can be delayed by (a) one ongoing, uninterruptible
//! exchange — at most the piconet-wide `U` — and (b) the polls of every
//! higher-priority flow that fall due while it waits. Fig. 2 computes the
//! fixed point
//!
//! ```text
//! y <- U + sum over higher-priority flows k of  ceil(y / x_k) * s_k
//! ```
//!
//! starting from `y = U`, aborting when `y` exceeds the flow's own poll
//! interval `x_i` (at that point Eq. 9, `y_i <= x_i`, is already violated,
//! so the flow is infeasible at this priority).

use btgs_des::SimDuration;

/// One higher-priority GS entity as seen by the `y` computation: its poll
/// interval `x_k` and segment-exchange time `s_k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HigherEntity {
    /// The entity's poll interval `x_k`.
    pub x: SimDuration,
    /// The entity's segment-exchange time `s_k`.
    pub s: SimDuration,
}

/// Computes `y_i` for an entity with poll interval `x_i`, given the
/// piconet-wide maximum exchange time `u` and the set of strictly
/// higher-priority entities. Returns `None` if the fixed point exceeds
/// `x_i` (the entity is infeasible at this priority, Eq. 9).
///
/// # Panics
///
/// Panics if `u`, `x_i`, or any `x_k`/`s_k` is zero.
///
/// # Examples
///
/// The paper's evaluation numbers (`U = s = 3.75 ms`, `x = 16.36 ms`):
///
/// ```
/// use btgs_core::{y_max, HigherEntity};
/// use btgs_des::SimDuration;
///
/// let u = SimDuration::from_micros(3_750);
/// let x = SimDuration::from_micros(16_364);
/// let e = HigherEntity { x, s: u };
///
/// // Highest priority: y = U = 3.75 ms.
/// assert_eq!(y_max(u, &[], x), Some(u));
/// // One higher entity: y = 7.5 ms.
/// assert_eq!(y_max(u, &[e], x), Some(SimDuration::from_micros(7_500)));
/// // Two higher entities: y = 11.25 ms.
/// assert_eq!(y_max(u, &[e, e], x), Some(SimDuration::from_micros(11_250)));
/// ```
pub fn y_max(u: SimDuration, higher: &[HigherEntity], x_i: SimDuration) -> Option<SimDuration> {
    y_fixpoint(u, higher, x_i)
}

/// The raw Fig. 2 fixed point with an arbitrary abort bound `cap` (where
/// [`y_max`] uses the entity's own `x_i`). Useful for computing the
/// *achievable* poll delay of an over-committed entity: pass a loose cap
/// and interpret `None` as divergence.
///
/// # Panics
///
/// Panics under the same conditions as [`y_max`].
pub fn y_fixpoint(
    u: SimDuration,
    higher: &[HigherEntity],
    cap: SimDuration,
) -> Option<SimDuration> {
    assert!(!u.is_zero(), "U must be positive");
    assert!(!cap.is_zero(), "cap must be positive");
    for h in higher {
        assert!(
            !h.x.is_zero() && !h.s.is_zero(),
            "higher-entity x and s must be positive"
        );
    }
    let mut y = u;
    loop {
        if y > cap {
            return None; // Fig. 2 step f: avoid the infinite loop.
        }
        let mut next = u;
        for h in higher {
            next += h.s * y.div_ceil_duration(h.x);
        }
        if next == y {
            return Some(y);
        }
        debug_assert!(next > y, "the Fig. 2 iteration is monotone");
        y = next;
    }
}

/// The largest rate admissible at a given priority position (the paper's
/// Eq. 9 rearranged): `R_max = eta_min / y`, in bytes/second.
///
/// # Panics
///
/// Panics if `y` is zero or `eta_min` is not positive.
pub fn max_admissible_rate(eta_min: f64, y: SimDuration) -> f64 {
    assert!(
        eta_min.is_finite() && eta_min > 0.0,
        "eta_min must be positive, got {eta_min}"
    );
    assert!(!y.is_zero(), "y must be positive");
    eta_min / y.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    const U: SimDuration = SimDuration::from_micros(3_750);

    #[test]
    fn paper_values() {
        let x = us(16_364);
        let e = HigherEntity { x, s: U };
        assert_eq!(y_max(U, &[], x), Some(us(3_750)));
        assert_eq!(y_max(U, &[e], x), Some(us(7_500)));
        assert_eq!(y_max(U, &[e, e], x), Some(us(11_250)));
    }

    #[test]
    fn paper_rmax_is_12800() {
        let r = max_admissible_rate(144.0, us(11_250));
        assert!((r - 12_800.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn infeasible_when_y_exceeds_x() {
        // Tight own interval: even U alone does not fit.
        assert_eq!(y_max(U, &[], us(2_000)), None);
        // Higher-priority load pushes y past x.
        let busy = HigherEntity { x: us(4_000), s: U };
        assert_eq!(y_max(U, &[busy, busy], us(12_000)), None);
    }

    #[test]
    fn boundary_y_equals_x_is_feasible() {
        // y converges exactly to x_i: Eq. 9 holds with equality.
        let e = HigherEntity {
            x: us(16_364),
            s: U,
        };
        assert_eq!(y_max(U, &[e], us(7_500)), Some(us(7_500)));
    }

    #[test]
    fn multiple_iterations_needed() {
        // Small higher-priority interval: the first estimate wakes more
        // higher-priority polls, which wake more, until the fixpoint.
        let e = HigherEntity {
            x: us(5_000),
            s: us(1_250),
        };
        // y0 = 3750 -> ceil(3750/5000)=1 -> y1 = 5000
        // -> ceil(5000/5000)=1 -> y2 = 5000: fixpoint.
        assert_eq!(y_max(U, &[e], us(20_000)), Some(us(5_000)));
        // Two of them:
        // y0=3750 -> 2*1250+3750 = 6250 -> ceil(6250/5000)=2 ->
        // 2*2500+3750 = 8750 -> ceil(8750/5000)=2 -> fixpoint 8750.
        assert_eq!(y_max(U, &[e, e], us(20_000)), Some(us(8_750)));
    }

    #[test]
    fn y_is_monotone_in_the_higher_set() {
        let x = us(50_000);
        let e = HigherEntity {
            x: us(10_000),
            s: us(2_500),
        };
        let mut last = SimDuration::ZERO;
        for k in 0..4 {
            let higher = vec![e; k];
            let y = y_max(U, &higher, x).expect("feasible");
            assert!(y >= last, "y must grow with more higher-priority flows");
            last = y;
        }
    }

    #[test]
    fn divergent_load_is_rejected_not_looped() {
        // Higher-priority utilisation >= 1: s/x = 1.25 -> no fixpoint.
        let hog = HigherEntity {
            x: us(1_000),
            s: us(1_250),
        };
        assert_eq!(y_max(U, &[hog], us(1_000_000)), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_x_rejected() {
        let _ = y_max(U, &[], SimDuration::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btgs_des::DetRng;

    /// When `y_max` returns a value it must (a) satisfy Eq. 9
    /// (`y <= x_i`), (b) be a true fixed point of the Fig. 2 iteration,
    /// and (c) be at least `U`.
    #[test]
    fn fixpoint_invariants() {
        let mut rng = DetRng::seed_from_u64(0x1AF1);
        for _ in 0..512 {
            let u = SimDuration::from_micros(rng.range_inclusive(625, 9_999));
            let x_i = SimDuration::from_micros(rng.range_inclusive(625, 199_999));
            let n_higher = rng.below(6) as usize;
            let hs: Vec<HigherEntity> = (0..n_higher)
                .map(|_| HigherEntity {
                    x: SimDuration::from_micros(rng.range_inclusive(625, 99_999)),
                    s: SimDuration::from_micros(rng.range_inclusive(625, 6_249)),
                })
                .collect();
            if let Some(y) = y_max(u, &hs, x_i) {
                assert!(y <= x_i, "Eq. 9 violated");
                assert!(y >= u, "y below the uninterruptible-exchange floor");
                let mut recomputed = u;
                for h in &hs {
                    recomputed += h.s * y.div_ceil_duration(h.x);
                }
                assert_eq!(recomputed, y, "not a fixed point");
            }
        }
    }
}
