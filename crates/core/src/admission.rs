//! Admission control with piggybacking (the paper's Fig. 3) and priority
//! assignment.
//!
//! Each GS flow is granted a fluid rate `R_i`, polled every
//! `x_i = eta_min_i / R_i`, and assigned a priority; lower-priority flows
//! wait for higher ones, which Fig. 2 turns into the per-flow `y_i`. A flow
//! set is admissible iff a priority order exists in which every flow
//! satisfies `y_i <= x_i` (Eq. 9).
//!
//! Two refinements from the paper:
//!
//! * **Piggybacking** (Fig. 3 step d): two oppositely-directed GS flows on
//!   the same slave share polls — every poll of the slave can carry GS data
//!   both ways — so only the more demanding request (smaller `x`) is
//!   accounted, and both flows share one priority.
//! * **Priority reassignment** (Fig. 3 step e): priorities are not
//!   first-come-first-served; the routine searches for *some* feasible
//!   assignment, trying candidates for each priority level from the lowest
//!   level up — which is exactly Audsley's optimal priority assignment, so
//!   a flow set is rejected only if **no** priority order works.

use crate::efficiency::min_poll_efficiency;
use crate::timing::{piconet_u, poll_interval, segment_exchange_time, SegmentTimeModel};
use crate::ymax::{y_max, HigherEntity};
use btgs_baseband::{AmAddr, Direction, PacketType};
use btgs_des::SimDuration;
use btgs_gs::{delay_bound, ErrorTerms, TokenBucketSpec};
use btgs_piconet::SarPolicy;
use btgs_traffic::FlowId;
use core::fmt;

/// A Guaranteed Service reservation request for one flow.
#[derive(Clone, Debug, PartialEq)]
pub struct GsRequest {
    /// Flow identifier (unique among GS flows).
    pub id: FlowId,
    /// The slave the flow terminates at.
    pub slave: AmAddr,
    /// Transfer direction.
    pub direction: Direction,
    /// The flow's token-bucket TSpec.
    pub tspec: TokenBucketSpec,
    /// The requested fluid-model service rate `R` in bytes/second
    /// (must be at least the token rate).
    pub rate: f64,
}

impl GsRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is below the TSpec's token rate or not finite.
    pub fn new(
        id: FlowId,
        slave: AmAddr,
        direction: Direction,
        tspec: TokenBucketSpec,
        rate: f64,
    ) -> GsRequest {
        assert!(
            rate.is_finite() && rate >= tspec.token_rate(),
            "requested rate {rate} must be finite and >= token rate {}",
            tspec.token_rate()
        );
        GsRequest {
            id,
            slave,
            direction,
            tspec,
            rate,
        }
    }
}

/// Parameters of the admission computation.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Baseband packet types GS flows may use.
    pub allowed_types: Vec<PacketType>,
    /// Segmentation policy in force.
    pub sar: SarPolicy,
    /// How per-entity segment times are accounted (ablation: the paper uses
    /// [`SegmentTimeModel::Conservative`]).
    pub segment_time: SegmentTimeModel,
    /// Whether oppositely-directed flows on one slave share polls
    /// (the paper's Fig. 3 improvement; `false` reproduces the naive
    /// routine for the ablation bench).
    pub piggyback: bool,
}

impl AdmissionConfig {
    /// The paper's evaluation configuration: DH1+DH3, max-first
    /// segmentation, conservative segment times, piggybacking on.
    pub fn paper() -> AdmissionConfig {
        AdmissionConfig {
            allowed_types: vec![PacketType::Dh1, PacketType::Dh3],
            sar: SarPolicy::MaxFirst,
            segment_time: SegmentTimeModel::Conservative,
            piggyback: true,
        }
    }

    /// The piconet-wide maximum exchange time `U` implied by the allowed
    /// packet types.
    pub fn u(&self) -> SimDuration {
        piconet_u(&self.allowed_types)
    }
}

/// One polled entity of the admitted schedule: a slave together with the one
/// or two (piggybacked) GS flows its polls serve.
#[derive(Clone, Debug, PartialEq)]
pub struct EntityPlan {
    /// The polled slave.
    pub slave: AmAddr,
    /// Priority: 1 is highest; planned polls execute in priority order.
    pub priority: u32,
    /// Poll interval `x` (of the accounting flow).
    pub x: SimDuration,
    /// Maximum poll delay `y` at this priority.
    pub y: SimDuration,
    /// Segment-exchange time `s` charged to lower priorities.
    pub s: SimDuration,
    /// The flow whose request drives the poll plan (smallest `x`).
    pub accounting_flow: FlowId,
    /// Direction of the accounting flow.
    pub accounting_direction: Direction,
    /// Granted rate of the accounting flow (bytes/s).
    pub rate: f64,
    /// Minimum poll efficiency of the accounting flow (bytes/poll).
    pub eta_min: f64,
    /// All flows served by this entity's polls (1 or 2).
    pub flow_ids: Vec<FlowId>,
    /// `true` if the entity's polls can be skipped when the master knows
    /// there is no data — only possible when every flow of the entity is
    /// master-to-slave (the paper's improvement (c)).
    pub can_skip: bool,
    /// `true` if any flow of the entity is master-to-slave.
    pub has_downlink: bool,
    /// `true` if any flow of the entity is slave-to-master.
    pub has_uplink: bool,
}

/// The per-flow grant of an admitted schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowGrant {
    /// The flow.
    pub id: FlowId,
    /// Index of the entity serving it (into [`AdmissionOutcome::entities`]).
    pub entity: usize,
    /// The flow's own minimum poll efficiency (its exported `C` term).
    pub eta_min: f64,
    /// The exported error terms: `C = eta_min`, `D = y` of the entity.
    pub terms: ErrorTerms,
    /// The end-to-end delay bound this grant guarantees (Eq. 1 with the
    /// granted rate and the exported terms).
    pub bound: SimDuration,
}

/// A feasible schedule for a set of GS requests.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct AdmissionOutcome {
    /// Polled entities, sorted by priority (highest first).
    pub entities: Vec<EntityPlan>,
    /// Per-flow grants, in request order.
    pub flows: Vec<FlowGrant>,
}

impl AdmissionOutcome {
    /// The grant of a flow, if present.
    pub fn grant(&self, id: FlowId) -> Option<&FlowGrant> {
        self.flows.iter().find(|g| g.id == id)
    }

    /// The entity serving a flow, if present.
    pub fn entity_of(&self, id: FlowId) -> Option<&EntityPlan> {
        self.grant(id).map(|g| &self.entities[g.entity])
    }
}

/// Why a request set was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionError {
    /// The request set itself is malformed.
    BadRequest(String),
    /// No priority assignment satisfies Eq. 9 for every flow; the named
    /// flow belongs to an entity that could not be placed at the lowest
    /// remaining priority level.
    Infeasible {
        /// The accounting flow of the unplaceable entity.
        flow: FlowId,
        /// The priority level (1 = highest) that could not be filled.
        level: u32,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::BadRequest(msg) => write!(f, "bad GS request set: {msg}"),
            AdmissionError::Infeasible { flow, level } => write!(
                f,
                "no feasible priority assignment: {flow} cannot hold priority level {level}"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Internal: an entity before priority assignment.
struct Candidate {
    slave: AmAddr,
    accounting: usize, // index into requests
    flows: Vec<usize>,
    x: SimDuration,
    s: SimDuration,
    eta_min: f64,
    /// Position of the entity's earliest request — the "initial priority
    /// value" used for the paper's descending-order search in step e.
    initial_order: usize,
}

/// Evaluates a complete set of GS requests (the paper runs this routine on
/// every new request, over the already-accepted flows plus the new one).
///
/// # Errors
///
/// * [`AdmissionError::BadRequest`] for duplicate ids or two same-direction
///   GS flows on one slave;
/// * [`AdmissionError::Infeasible`] when no priority assignment satisfies
///   Eq. 9 for every entity.
///
/// # Examples
///
/// The paper's evaluation set — four 64 kbps flows, flows 2 and 3
/// piggybacked on S2 — yields priorities with `y = {3.75, 7.5, 11.25} ms`:
///
/// ```
/// use btgs_core::{admit, AdmissionConfig, GsRequest};
/// use btgs_baseband::{AmAddr, Direction};
/// use btgs_gs::TokenBucketSpec;
/// use btgs_traffic::FlowId;
///
/// let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
/// let s = |n| AmAddr::new(n).unwrap();
/// let reqs = vec![
///     GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 8800.0),
///     GsRequest::new(FlowId(2), s(2), Direction::MasterToSlave, tspec, 8800.0),
///     GsRequest::new(FlowId(3), s(2), Direction::SlaveToMaster, tspec, 8800.0),
///     GsRequest::new(FlowId(4), s(3), Direction::SlaveToMaster, tspec, 8800.0),
/// ];
/// let outcome = admit(&reqs, &AdmissionConfig::paper()).unwrap();
/// assert_eq!(outcome.entities.len(), 3); // flows 2+3 share an entity
/// assert_eq!(outcome.entities[2].y.as_micros(), 11_250);
/// # Ok::<(), btgs_traffic::InvalidTSpec>(())
/// ```
pub fn admit(
    requests: &[GsRequest],
    config: &AdmissionConfig,
) -> Result<AdmissionOutcome, AdmissionError> {
    validate(requests)?;
    if requests.is_empty() {
        return Ok(AdmissionOutcome::default());
    }
    let u = config.u();
    let per_flow_eta: Vec<f64> = requests
        .iter()
        .map(|r| {
            min_poll_efficiency(
                &config.sar,
                r.tspec.min_policed_unit(),
                r.tspec.max_packet(),
                &config.allowed_types,
            )
        })
        .collect();
    let per_flow_x: Vec<SimDuration> = requests
        .iter()
        .zip(&per_flow_eta)
        .map(|(r, eta)| poll_interval(*eta, r.rate))
        .collect();

    // Fig. 3 step d: pair oppositely-directed flows on the same slave; the
    // one with the larger x piggybacks on the other.
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut consumed = vec![false; requests.len()];
    for i in 0..requests.len() {
        if consumed[i] {
            continue;
        }
        consumed[i] = true;
        let mut flows = vec![i];
        let mut accounting = i;
        if config.piggyback {
            if let Some(j) = (i + 1..requests.len()).find(|&j| {
                !consumed[j]
                    && requests[j].slave == requests[i].slave
                    && requests[j].direction == requests[i].direction.reverse()
            }) {
                consumed[j] = true;
                flows.push(j);
                if per_flow_x[j] < per_flow_x[i] {
                    accounting = j;
                }
            }
        }
        let has_downlink = flows
            .iter()
            .any(|&k| requests[k].direction == Direction::MasterToSlave);
        let has_uplink = flows
            .iter()
            .any(|&k| requests[k].direction == Direction::SlaveToMaster);
        candidates.push(Candidate {
            slave: requests[i].slave,
            accounting,
            flows,
            x: per_flow_x[accounting],
            s: segment_exchange_time(
                config.segment_time,
                &config.allowed_types,
                has_downlink,
                has_uplink,
            ),
            eta_min: per_flow_eta[accounting],
            initial_order: i,
        });
    }

    // Fig. 3 step e as Audsley's algorithm: fill priority levels from the
    // lowest (largest number) upward; for each level, search the still
    // unassigned entities in descending initial priority value.
    let n = candidates.len();
    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut priority_of = vec![0u32; n];
    for level in (1..=n as u32).rev() {
        // Descending initial order = later-arrived requests first.
        let mut order: Vec<usize> = unassigned.clone();
        order.sort_by_key(|&c| std::cmp::Reverse(candidates[c].initial_order));
        let mut placed = None;
        for &c in &order {
            let higher: Vec<HigherEntity> = unassigned
                .iter()
                .filter(|&&k| k != c)
                .map(|&k| HigherEntity {
                    x: candidates[k].x,
                    s: candidates[k].s,
                })
                .collect();
            if y_max(u, &higher, candidates[c].x).is_some() {
                placed = Some(c);
                break;
            }
        }
        match placed {
            Some(c) => {
                priority_of[c] = level;
                unassigned.retain(|&k| k != c);
            }
            None => {
                // Report the entity that arrived last among the unplaceable.
                let worst = *order.first().expect("levels remain, so entities remain");
                return Err(AdmissionError::Infeasible {
                    flow: requests[candidates[worst].accounting].id,
                    level,
                });
            }
        }
    }

    // Final y of each entity against the entities actually above it.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&c| priority_of[c]);
    let mut entities = Vec::with_capacity(n);
    let mut entity_index_of_candidate = vec![0usize; n];
    for (pos, &c) in order.iter().enumerate() {
        let higher: Vec<HigherEntity> = order[..pos]
            .iter()
            .map(|&k| HigherEntity {
                x: candidates[k].x,
                s: candidates[k].s,
            })
            .collect();
        let y = y_max(u, &higher, candidates[c].x)
            .expect("assignment was verified feasible level by level");
        let cand = &candidates[c];
        entity_index_of_candidate[c] = pos;
        entities.push(EntityPlan {
            slave: cand.slave,
            priority: priority_of[c],
            x: cand.x,
            y,
            s: cand.s,
            accounting_flow: requests[cand.accounting].id,
            accounting_direction: requests[cand.accounting].direction,
            rate: requests[cand.accounting].rate,
            eta_min: cand.eta_min,
            flow_ids: cand.flows.iter().map(|&k| requests[k].id).collect(),
            can_skip: cand
                .flows
                .iter()
                .all(|&k| requests[k].direction == Direction::MasterToSlave),
            has_downlink: cand
                .flows
                .iter()
                .any(|&k| requests[k].direction == Direction::MasterToSlave),
            has_uplink: cand
                .flows
                .iter()
                .any(|&k| requests[k].direction == Direction::SlaveToMaster),
        });
    }

    let mut flows = Vec::with_capacity(requests.len());
    for (i, r) in requests.iter().enumerate() {
        let cand_idx = candidates
            .iter()
            .position(|c| c.flows.contains(&i))
            .expect("every request belongs to an entity");
        let entity = entity_index_of_candidate[cand_idx];
        let terms = ErrorTerms::new(per_flow_eta[i], entities[entity].y);
        let bound = delay_bound(&r.tspec, r.rate, terms)
            .map_err(|e| AdmissionError::BadRequest(format!("flow {}: {e}", r.id)))?;
        flows.push(FlowGrant {
            id: r.id,
            entity,
            eta_min: per_flow_eta[i],
            terms,
            bound,
        });
    }
    Ok(AdmissionOutcome { entities, flows })
}

fn validate(requests: &[GsRequest]) -> Result<(), AdmissionError> {
    for (i, a) in requests.iter().enumerate() {
        for b in &requests[i + 1..] {
            if a.id == b.id {
                return Err(AdmissionError::BadRequest(format!(
                    "duplicate flow id {}",
                    a.id
                )));
            }
            if a.slave == b.slave && a.direction == b.direction {
                return Err(AdmissionError::BadRequest(format!(
                    "flows {} and {} are both {} GS flows at {}",
                    a.id, b.id, a.direction, a.slave
                )));
            }
        }
    }
    Ok(())
}

/// A stateful admission controller: accepted flows persist, each new request
/// re-runs the Fig. 3 routine over the whole set, and a rejection leaves the
/// accepted set untouched (Fig. 3 steps a/g: store and restore priorities).
///
/// The accepted set is kept in **canonical (ascending flow-id) order**, so
/// the controller's schedule is a pure function of the accepted *set*: the
/// feasibility test is order-independent anyway (Audsley's search admits a
/// set iff *any* priority order works), and canonical ordering extends that
/// to the produced schedule itself. In particular, [`release`] followed by
/// [`try_admit`] of the same request restores byte-identical state — the
/// round-trip property chain admission's rollback relies on.
///
/// [`release`]: AdmissionController::release
/// [`try_admit`]: AdmissionController::try_admit
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    config: Option<AdmissionConfig>,
    accepted: Vec<GsRequest>,
    outcome: AdmissionOutcome,
}

impl AdmissionController {
    /// Creates a controller with the given configuration.
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            config: Some(config),
            accepted: Vec::new(),
            outcome: AdmissionOutcome::default(),
        }
    }

    /// The currently accepted requests, in canonical (flow-id) order.
    pub fn accepted(&self) -> &[GsRequest] {
        &self.accepted
    }

    /// The current schedule.
    pub fn outcome(&self) -> &AdmissionOutcome {
        &self.outcome
    }

    /// Tries to admit a new flow. On success the flow joins the accepted
    /// set (possibly reshuffling everyone's priorities); on failure the
    /// previous schedule remains in force.
    ///
    /// # Errors
    ///
    /// Returns the [`AdmissionError`] of the combined set.
    pub fn try_admit(&mut self, request: GsRequest) -> Result<&AdmissionOutcome, AdmissionError> {
        let config = self.config.as_ref().expect("constructed with a config");
        let mut all = self.accepted.clone();
        // Canonical insertion position: the schedule must depend on the
        // accepted set only, not on the admission history (see the type
        // docs). `admit` rejects duplicate ids, so ties cannot survive.
        let pos = all.partition_point(|r| r.id < request.id);
        all.insert(pos, request);
        let outcome = admit(&all, config)?;
        self.accepted = all;
        self.outcome = outcome;
        Ok(&self.outcome)
    }

    /// Removes an accepted flow and recomputes the schedule.
    ///
    /// # Panics
    ///
    /// Panics if the flow is not currently accepted (removing an unknown
    /// reservation is always a caller bug).
    pub fn release(&mut self, id: FlowId) -> &AdmissionOutcome {
        let pos = self
            .accepted
            .iter()
            .position(|r| r.id == id)
            .unwrap_or_else(|| panic!("flow {id} is not accepted"));
        self.accepted.remove(pos);
        let config = self.config.as_ref().expect("constructed with a config");
        self.outcome =
            admit(&self.accepted, config).expect("a subset of a feasible set is feasible");
        &self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn tspec() -> TokenBucketSpec {
        TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap()
    }

    fn paper_requests() -> Vec<GsRequest> {
        vec![
            GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec(), 8800.0),
            GsRequest::new(FlowId(2), s(2), Direction::MasterToSlave, tspec(), 8800.0),
            GsRequest::new(FlowId(3), s(2), Direction::SlaveToMaster, tspec(), 8800.0),
            GsRequest::new(FlowId(4), s(3), Direction::SlaveToMaster, tspec(), 8800.0),
        ]
    }

    #[test]
    fn paper_scenario_schedule() {
        let out = admit(&paper_requests(), &AdmissionConfig::paper()).unwrap();
        assert_eq!(out.entities.len(), 3);
        // Priorities follow insertion order here (all symmetric): the last
        // arrival takes the lowest priority.
        assert_eq!(out.entities[0].slave, s(1));
        assert_eq!(out.entities[1].slave, s(2));
        assert_eq!(out.entities[2].slave, s(3));
        assert_eq!(out.entities[0].y, SimDuration::from_micros(3_750));
        assert_eq!(out.entities[1].y, SimDuration::from_micros(7_500));
        assert_eq!(out.entities[2].y, SimDuration::from_micros(11_250));
        // x = 144/8800 s for every entity.
        for e in &out.entities {
            assert_eq!(e.x.as_nanos(), 16_363_636);
            assert_eq!(e.eta_min, 144.0);
            assert_eq!(e.s, SimDuration::from_micros(3_750));
        }
        // Flows 2 and 3 share the S2 entity; flow 2's entity serves both.
        let e2 = out.entity_of(FlowId(2)).unwrap();
        let e3 = out.entity_of(FlowId(3)).unwrap();
        assert_eq!(e2, e3);
        assert_eq!(e2.flow_ids.len(), 2);
        assert!(e2.has_downlink && e2.has_uplink);
        assert!(!e2.can_skip, "bidirectional entity cannot skip polls");
        // Unidirectional uplink entities cannot skip either.
        assert!(!out.entity_of(FlowId(1)).unwrap().can_skip);
    }

    #[test]
    fn paper_exported_terms_and_bounds() {
        let out = admit(&paper_requests(), &AdmissionConfig::paper()).unwrap();
        for g in &out.flows {
            assert_eq!(g.eta_min, 144.0, "{}", g.id);
            assert_eq!(g.terms.c_bytes(), 144.0);
        }
        // Flow 4 (lowest priority): D = 11.25 ms, bound at R = r is the
        // paper's 47.6 ms "never exceeded" value.
        let g4 = out.grant(FlowId(4)).unwrap();
        assert_eq!(g4.terms.d(), SimDuration::from_micros(11_250));
        assert_eq!(g4.bound.as_micros(), 47_613);
        // Flow 1 (highest): D = 3.75 ms.
        assert_eq!(
            out.grant(FlowId(1)).unwrap().terms.d(),
            SimDuration::from_micros(3_750)
        );
    }

    #[test]
    fn rmax_boundary_admits_and_beyond_rejects() {
        // At the paper's R_max = 12.8 kB/s for the lowest-priority flow,
        // y = 11.25 ms = x exactly: feasible.
        let mut reqs = paper_requests();
        reqs[3].rate = 12_800.0;
        assert!(admit(&reqs, &AdmissionConfig::paper()).is_ok());
        // All four at a rate that pushes x below anyone's feasible y: the
        // set becomes inadmissible.
        for r in &mut reqs {
            r.rate = 39_000.0; // x = 3.69 ms < U
        }
        let err = admit(&reqs, &AdmissionConfig::paper()).unwrap_err();
        assert!(matches!(err, AdmissionError::Infeasible { .. }));
    }

    #[test]
    fn audsley_reassignment_saves_mixed_sets() {
        // One demanding flow (needs high priority) arriving last: naive
        // arrival-order priorities would reject it; reassignment admits it.
        let relaxed = GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec(), 8800.0);
        let demanding =
            GsRequest::new(FlowId(2), s(3), Direction::SlaveToMaster, tspec(), 20_000.0);
        // x_demanding = 144/20000 = 7.2 ms: only feasible at priority 1
        // (y = U = 3.75 <= 7.2), never at 2 (y = 7.5 > 7.2). In arrival
        // order it would hold priority 2 and be rejected.
        let out = admit(
            &[relaxed.clone(), demanding.clone()],
            &AdmissionConfig::paper(),
        )
        .unwrap();
        assert_eq!(
            out.entity_of(FlowId(2)).unwrap().priority,
            1,
            "reassigned to the top"
        );
        let relaxed_entity = out.entity_of(FlowId(1)).unwrap();
        assert_eq!(relaxed_entity.priority, 2);
        // The relaxed flow's y reflects the demanding flow above it:
        // fixpoint of U + ceil(y/7.2ms)*3.75ms = 11.25 ms.
        assert_eq!(relaxed_entity.y, SimDuration::from_micros(11_250));
    }

    #[test]
    fn piggybacking_admits_more_flows() {
        // Four slaves with bidirectional pairs at a demanding rate: with
        // piggybacking (4 entities, y up to 15 ms <= x = 16 ms) it fits;
        // without (8 entities, y up to 30 ms) it does not.
        let rate = 9_000.0; // x = 16 ms
        let mut reqs = Vec::new();
        for n in 1..=4u8 {
            reqs.push(GsRequest::new(
                FlowId(2 * n as u32 - 1),
                s(n),
                Direction::MasterToSlave,
                tspec(),
                rate,
            ));
            reqs.push(GsRequest::new(
                FlowId(2 * n as u32),
                s(n),
                Direction::SlaveToMaster,
                tspec(),
                rate,
            ));
        }
        let with = admit(&reqs, &AdmissionConfig::paper());
        assert!(with.is_ok(), "{with:?}");
        assert_eq!(with.unwrap().entities.len(), 4);

        let mut naive_cfg = AdmissionConfig::paper();
        naive_cfg.piggyback = false;
        let without = admit(&reqs, &naive_cfg);
        assert!(matches!(without, Err(AdmissionError::Infeasible { .. })));
    }

    #[test]
    fn accounting_flow_is_the_faster_one() {
        let slow = GsRequest::new(FlowId(1), s(1), Direction::MasterToSlave, tspec(), 8800.0);
        let fast = GsRequest::new(FlowId(2), s(1), Direction::SlaveToMaster, tspec(), 12_800.0);
        let out = admit(&[slow, fast], &AdmissionConfig::paper()).unwrap();
        assert_eq!(out.entities.len(), 1);
        assert_eq!(out.entities[0].accounting_flow, FlowId(2));
        assert_eq!(out.entities[0].x, SimDuration::from_micros(11_250));
    }

    #[test]
    fn downlink_only_entity_can_skip() {
        let req = GsRequest::new(FlowId(1), s(1), Direction::MasterToSlave, tspec(), 8800.0);
        let out = admit(&[req], &AdmissionConfig::paper()).unwrap();
        assert!(out.entities[0].can_skip);
        assert!(out.entities[0].has_downlink);
        assert!(!out.entities[0].has_uplink);
    }

    #[test]
    fn exact_segment_time_lowers_y() {
        let reqs = paper_requests();
        let mut cfg = AdmissionConfig::paper();
        cfg.segment_time = SegmentTimeModel::Exact;
        let out = admit(&reqs, &cfg).unwrap();
        // Entity 1 (S1, uplink only) charges POLL+DH3 = 2.5 ms to lower
        // priorities; entity 3's y drops from 11.25 ms to
        // U + 2.5 + 3.75 = 10 ms.
        assert_eq!(out.entities[2].y, SimDuration::from_micros(10_000));
    }

    #[test]
    fn validation_errors() {
        let a = GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec(), 8800.0);
        let dup = a.clone();
        assert!(matches!(
            admit(&[a.clone(), dup], &AdmissionConfig::paper()),
            Err(AdmissionError::BadRequest(_))
        ));
        let clash = GsRequest::new(FlowId(2), s(1), Direction::SlaveToMaster, tspec(), 8800.0);
        assert!(matches!(
            admit(&[a, clash], &AdmissionConfig::paper()),
            Err(AdmissionError::BadRequest(_))
        ));
    }

    #[test]
    fn empty_set_is_trivially_admitted() {
        let out = admit(&[], &AdmissionConfig::paper()).unwrap();
        assert!(out.entities.is_empty());
        assert!(out.flows.is_empty());
    }

    #[test]
    fn controller_keeps_state_on_rejection() {
        let mut ctl = AdmissionController::new(AdmissionConfig::paper());
        for (i, req) in paper_requests().into_iter().enumerate() {
            ctl.try_admit(req)
                .unwrap_or_else(|e| panic!("flow {i}: {e}"));
        }
        assert_eq!(ctl.accepted().len(), 4);
        let before = ctl.outcome().clone();
        // A hopeless request: rate beyond anything the piconet can poll.
        let hopeless = GsRequest::new(
            FlowId(99),
            s(7),
            Direction::SlaveToMaster,
            tspec(),
            50_000.0,
        );
        assert!(ctl.try_admit(hopeless).is_err());
        assert_eq!(ctl.accepted().len(), 4, "rejection must not change state");
        assert_eq!(*ctl.outcome(), before);
    }

    #[test]
    fn controller_release_recomputes() {
        let mut ctl = AdmissionController::new(AdmissionConfig::paper());
        for req in paper_requests() {
            ctl.try_admit(req).unwrap();
        }
        let out = ctl.release(FlowId(1));
        assert_eq!(out.entities.len(), 2);
        assert_eq!(ctl.accepted().len(), 3);
    }

    #[test]
    #[should_panic(expected = "not accepted")]
    fn releasing_unknown_flow_panics() {
        let mut ctl = AdmissionController::new(AdmissionConfig::paper());
        ctl.release(FlowId(1));
    }

    #[test]
    fn release_then_readmit_restores_state_exactly() {
        // Releasing a flow and re-admitting the identical request must
        // restore byte-identical controller state, whichever flow is
        // cycled — the round-trip chain rollback relies on.
        let mut ctl = AdmissionController::new(AdmissionConfig::paper());
        for req in paper_requests() {
            ctl.try_admit(req).unwrap();
        }
        for victim in paper_requests() {
            let accepted_before = ctl.accepted().to_vec();
            let outcome_before = ctl.outcome().clone();
            ctl.release(victim.id);
            assert_ne!(ctl.accepted().len(), accepted_before.len());
            ctl.try_admit(victim.clone())
                .expect("re-admitting a released flow of a feasible set");
            assert_eq!(ctl.accepted(), accepted_before.as_slice());
            assert_eq!(*ctl.outcome(), outcome_before);
        }
    }

    #[test]
    fn controller_outcome_is_independent_of_admission_order() {
        // The canonical ordering makes the schedule a pure function of the
        // accepted set: admitting the paper flows in any order yields the
        // same outcome.
        let reqs = paper_requests();
        let mut reference = AdmissionController::new(AdmissionConfig::paper());
        for req in reqs.clone() {
            reference.try_admit(req).unwrap();
        }
        for order in [[3usize, 1, 0, 2], [2, 0, 3, 1], [1, 3, 2, 0]] {
            let mut ctl = AdmissionController::new(AdmissionConfig::paper());
            for &i in &order {
                ctl.try_admit(reqs[i].clone()).unwrap();
            }
            assert_eq!(ctl.accepted(), reference.accepted());
            assert_eq!(ctl.outcome(), reference.outcome());
        }
    }
}
