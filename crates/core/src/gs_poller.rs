//! The Guaranteed Service pollers (§3.1, §3.2, and the PFP implementation
//! evaluated in §4).
//!
//! One engine covers all three flavours:
//!
//! * [`GsPoller::fixed`] — §3.1: polls planned on a rigid `x_i` grid;
//! * [`GsPoller::variable`] — §3.2: the grid plus improvements (a)–(c);
//! * [`GsPoller::pfp`] — the paper's evaluation vehicle: the variable
//!   interval poller for GS entities, with the leftover slots handed to an
//!   inner best-effort poller (PFP-BE from `btgs-pollers`).
//!
//! Due GS polls always win over best-effort service and execute in priority
//! order — the property the `y_i` computation of Fig. 2 relies on.

use crate::admission::AdmissionOutcome;
use crate::plan::{Improvements, PollOutcome, PollPlan};
use btgs_baseband::{AmAddr, Direction, LogicalChannel};
use btgs_des::{SimDuration, SimTime};
use btgs_piconet::{ExchangeReport, FlowIdx, MasterView, PollDecision, Poller, SegmentOutcome};
use btgs_traffic::FlowId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct EntityState {
    slave: AmAddr,
    accounting_flow: FlowId,
    /// Dense index of `accounting_flow` in the piconet's flow table
    /// (static per run; cached by [`GsPoller::sync`]). `None` when the
    /// flow is not configured — the skip loop then sees no downlink data.
    accounting_idx: Option<FlowIdx>,
    accounting_direction: Direction,
    can_skip: bool,
    /// The entity's segment-exchange time `s`: a GS poll is only issued
    /// when this much of a part-time slave's presence window remains, so
    /// every executed poll can move the full η_min the admission
    /// accounting promises (a shorter remainder would silently truncate
    /// the exchange to smaller packets).
    s: SimDuration,
    plan: PollPlan,
    pending_planned: Option<SimTime>,
}

/// Shared counters exposed by a [`GsPoller`] (readable after the simulation
/// consumed the poller box).
#[derive(Clone, Debug, Default)]
pub struct GsPollerStats {
    skipped: Arc<AtomicU64>,
    executed: Arc<AtomicU64>,
}

impl GsPollerStats {
    /// GS polls skipped by improvement (c).
    pub fn skipped_polls(&self) -> u64 {
        // ord: Relaxed — diagnostic tally read after the run; the thread
        // join that ends the run orders it.
        self.skipped.load(Ordering::Relaxed)
    }

    /// GS polls issued.
    pub fn executed_polls(&self) -> u64 {
        // ord: Relaxed — same post-join diagnostic read as above.
        self.executed.load(Ordering::Relaxed)
    }
}

/// The paper's Guaranteed Service poller.
///
/// Construct one from an [`AdmissionOutcome`]; the poller then plans polls
/// for every admitted entity and serves best-effort traffic (through an
/// optional inner poller) whenever no GS poll is due.
///
/// # Examples
///
/// ```
/// use btgs_core::{admit, AdmissionConfig, GsPoller, GsRequest};
/// use btgs_baseband::{AmAddr, Direction};
/// use btgs_gs::TokenBucketSpec;
/// use btgs_traffic::FlowId;
/// use btgs_des::SimTime;
///
/// let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
/// let req = GsRequest::new(
///     FlowId(1),
///     AmAddr::new(1).unwrap(),
///     Direction::SlaveToMaster,
///     tspec,
///     8800.0,
/// );
/// let outcome = admit(&[req], &AdmissionConfig::paper()).unwrap();
/// let poller = GsPoller::variable(&outcome, SimTime::ZERO);
/// # Ok::<(), btgs_traffic::InvalidTSpec>(())
/// ```
pub struct GsPoller {
    entities: Vec<EntityState>,
    /// `slave address - 1 -> index into entities`, so exchange feedback
    /// needs no linear search.
    entity_by_slave: [Option<usize>; AmAddr::MAX_SLAVES],
    be: Option<Box<dyn Poller>>,
    improvements: Improvements,
    stats: GsPollerStats,
    name: &'static str,
    /// Flow count of the view when [`GsPoller::sync`] last resolved the
    /// entities' accounting-flow indices. The flow set of a run is static,
    /// so a matching count means the cache is valid.
    synced_flows: usize,
}

impl GsPoller {
    /// The fixed-interval poller of §3.1.
    ///
    /// # Panics
    ///
    /// Panics if two entities of `outcome` share a slave (piggybacking must
    /// be resolved by admission before polling).
    pub fn fixed(outcome: &AdmissionOutcome, start: SimTime) -> GsPoller {
        GsPoller::with_improvements(outcome, start, Improvements::NONE).named("gs-fixed")
    }

    /// The variable-interval poller of §3.2 (all three improvements).
    ///
    /// # Panics
    ///
    /// See [`GsPoller::fixed`].
    pub fn variable(outcome: &AdmissionOutcome, start: SimTime) -> GsPoller {
        GsPoller::with_improvements(outcome, start, Improvements::ALL).named("gs-variable")
    }

    /// The PFP implementation evaluated in the paper's §4: the variable
    /// interval poller with leftover slots delegated to `be`.
    ///
    /// # Panics
    ///
    /// See [`GsPoller::fixed`].
    pub fn pfp(outcome: &AdmissionOutcome, start: SimTime, be: Box<dyn Poller>) -> GsPoller {
        GsPoller::with_improvements(outcome, start, Improvements::ALL)
            .with_best_effort(be)
            .named("pfp-gs")
    }

    /// A poller with an explicit improvement selection (the ablation
    /// surface of the bench suite).
    ///
    /// # Panics
    ///
    /// Panics if two entities of `outcome` share a slave.
    pub fn with_improvements(
        outcome: &AdmissionOutcome,
        start: SimTime,
        improvements: Improvements,
    ) -> GsPoller {
        let mut entities: Vec<EntityState> = Vec::with_capacity(outcome.entities.len());
        let mut entity_by_slave = [None; AmAddr::MAX_SLAVES];
        for e in &outcome.entities {
            let slot = (e.slave.get() - 1) as usize;
            assert!(
                entity_by_slave[slot].is_none(),
                "entity slaves must be unique; admit with piggybacking enabled"
            );
            entity_by_slave[slot] = Some(entities.len());
            entities.push(EntityState {
                slave: e.slave,
                accounting_flow: e.accounting_flow,
                accounting_idx: None,
                accounting_direction: e.accounting_direction,
                can_skip: e.can_skip,
                s: e.s,
                plan: PollPlan::new(e.x, e.rate, improvements, start),
                pending_planned: None,
            });
        }
        // `outcome.entities` is priority-sorted; keep that order.
        GsPoller {
            entities,
            entity_by_slave,
            be: None,
            improvements,
            stats: GsPollerStats::default(),
            name: "gs-custom",
            synced_flows: usize::MAX,
        }
    }

    /// Resolves each entity's accounting flow to its dense table index, so
    /// the per-decide skip loop tests the downlink queue directly instead
    /// of re-hashing the flow id and snapshotting a full view every wake.
    fn sync(&mut self, view: &MasterView<'_>) {
        if self.synced_flows == view.flows().len() {
            return; // the flow set of a run is static
        }
        for e in &mut self.entities {
            e.accounting_idx = view.table().idx_of(e.accounting_flow);
        }
        self.synced_flows = view.flows().len();
    }

    /// Attaches an inner best-effort poller (builder style).
    #[must_use]
    pub fn with_best_effort(mut self, be: Box<dyn Poller>) -> GsPoller {
        self.be = Some(be);
        self
    }

    fn named(mut self, name: &'static str) -> GsPoller {
        self.name = name;
        self
    }

    /// A handle to the poller's counters that stays readable after the
    /// simulation has consumed the poller.
    pub fn stats(&self) -> GsPollerStats {
        self.stats.clone()
    }

    /// The earliest instant a planned GS poll can actually execute: a
    /// bridge entity's plan is clamped to the next instant its slave is
    /// present *with room for the entity's full segment exchange* (a
    /// no-op for always-present slaves).
    fn next_gs_plan(&self, view: &MasterView<'_>) -> Option<SimTime> {
        self.entities
            .iter()
            .map(|e| {
                e.plan
                    .next_poll()
                    .max(view.next_present_fitting(e.slave, e.s))
            })
            .min()
    }
}

impl Poller for GsPoller {
    fn decide(&mut self, now: SimTime, view: &MasterView<'_>) -> PollDecision {
        self.sync(view);
        // Improvement (c): skip due polls of downlink-only entities whose
        // queue the master knows to be empty.
        if self.improvements.skip_empty_downlink {
            for e in &mut self.entities {
                if !e.can_skip {
                    continue;
                }
                let idx = e.accounting_idx;
                while e.plan.is_due(now) && !idx.is_some_and(|i| view.downlink_has_data_at(i, now))
                {
                    e.plan.skip();
                    // ord: Relaxed — monotonic diagnostic counter; no
                    // other memory rides on it.
                    self.stats.skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Due GS polls execute in priority order (entities are stored
        // highest priority first). A due entity whose bridge slave is off
        // in another piconet — or present without room for its full
        // segment exchange before departure (a poll issued into a shorter
        // remainder is truncated below the η_min the admission promised) —
        // cannot be addressed: lower priorities run, and the deferred poll
        // fires the instant the bridge can host a full exchange again (via
        // the presence-clamped plan minimum below).
        if let Some(e) = self
            .entities
            .iter_mut()
            .find(|e| e.plan.is_due(now) && view.fits_exchange(e.slave, e.s))
        {
            e.pending_planned = Some(e.plan.next_poll());
            // ord: Relaxed — monotonic diagnostic counter, as above.
            self.stats.executed.fetch_add(1, Ordering::Relaxed);
            return PollDecision::Poll {
                slave: e.slave,
                channel: LogicalChannel::GuaranteedService,
            };
        }
        // No GS work: hand the slot to best effort, but never past the next
        // planned GS poll. The plan minimum is a pure read, so it is only
        // computed on the idle paths — a BE poll needs no cap.
        let be_decision = match &mut self.be {
            Some(be) => be.decide(now, view),
            None => PollDecision::Sleep,
        };
        match be_decision {
            PollDecision::Poll { slave, channel } => PollDecision::Poll { slave, channel },
            PollDecision::Idle { until } => match self.next_gs_plan(view) {
                Some(gs) => PollDecision::Idle {
                    until: until.min(gs),
                },
                None => PollDecision::Idle { until },
            },
            PollDecision::Sleep => match self.next_gs_plan(view) {
                Some(gs) => PollDecision::Idle { until: gs },
                None => PollDecision::Sleep,
            },
        }
    }

    fn on_exchange(&mut self, report: &ExchangeReport) {
        if report.channel == LogicalChannel::GuaranteedService {
            let entity = self.entity_by_slave[(report.slave.get() - 1) as usize];
            if let Some(e) = entity.map(|i| &mut self.entities[i]) {
                let acct = match e.accounting_direction {
                    Direction::MasterToSlave => &report.down,
                    Direction::SlaveToMaster => &report.up,
                };
                let outcome = match acct {
                    SegmentOutcome::Data {
                        flow,
                        segment,
                        delivered,
                        ..
                    } if *flow == e.accounting_flow => {
                        if segment.is_last && *delivered {
                            PollOutcome::LastSegment {
                                packet_size: segment.packet_size,
                                first_segment: segment.is_first,
                            }
                        } else {
                            PollOutcome::MidSegment {
                                // A lost first segment is retransmitted; the
                                // packet's first *successful* plan anchor is
                                // set on the first transmission either way.
                                first_segment: segment.is_first,
                            }
                        }
                    }
                    _ => PollOutcome::Unsuccessful,
                };
                let planned = e.pending_planned.take().unwrap_or(report.start);
                e.plan.on_poll(planned, report.start, outcome);
            }
        }
        if let Some(be) = &mut self.be {
            be.on_exchange(report);
        }
    }

    fn on_downlink_arrival(&mut self, flow: FlowId, now: SimTime) {
        if let Some(be) = &mut self.be {
            be.on_downlink_arrival(flow, now);
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{admit, AdmissionConfig, GsRequest};
    use btgs_gs::TokenBucketSpec;
    use btgs_piconet::{FlowQueue, FlowSpec, FlowTable, SegmentPlan};
    use btgs_traffic::AppPacket;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn tspec() -> TokenBucketSpec {
        TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap()
    }

    fn outcome_two_uplinks() -> AdmissionOutcome {
        admit(
            &[
                GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec(), 8800.0),
                GsRequest::new(FlowId(2), s(2), Direction::SlaveToMaster, tspec(), 8800.0),
            ],
            &AdmissionConfig::paper(),
        )
        .unwrap()
    }

    fn gs_data_report(
        slave: AmAddr,
        flow: FlowId,
        start: SimTime,
        is_last: bool,
        is_first: bool,
        packet_size: u32,
    ) -> ExchangeReport {
        ExchangeReport {
            start,
            end: start + btgs_baseband::slots(4),
            slave,
            channel: LogicalChannel::GuaranteedService,
            down: SegmentOutcome::Control {
                ty: btgs_baseband::PacketType::Poll,
            },
            up: SegmentOutcome::Data {
                flow,
                segment: SegmentPlan {
                    ty: btgs_baseband::PacketType::Dh3,
                    bytes: packet_size.min(183),
                    is_last,
                    is_first,
                    packet_seq: 0,
                    packet_size,
                    packet_arrival: SimTime::ZERO,
                },
                delivered: true,
                retransmission: false,
            },
        }
    }

    fn gs_empty_report(slave: AmAddr, start: SimTime) -> ExchangeReport {
        ExchangeReport {
            start,
            end: start + btgs_baseband::slots(2),
            slave,
            channel: LogicalChannel::GuaranteedService,
            down: SegmentOutcome::Control {
                ty: btgs_baseband::PacketType::Poll,
            },
            up: SegmentOutcome::Control {
                ty: btgs_baseband::PacketType::Null,
            },
        }
    }

    #[test]
    fn due_polls_run_in_priority_order() {
        let out = outcome_two_uplinks();
        let mut poller = GsPoller::variable(&out, SimTime::ZERO);
        let flows = [
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(2),
                s(2),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
        ];
        let queues = vec![None, None];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        // Both due at t = 0; S1 has priority 1.
        match poller.decide(SimTime::ZERO, &view) {
            PollDecision::Poll { slave, channel } => {
                assert_eq!(slave, s(1));
                assert_eq!(channel, LogicalChannel::GuaranteedService);
            }
            other => panic!("{other:?}"),
        }
        // After S1's poll completes (unsuccessfully), S2 is next.
        poller.on_exchange(&gs_empty_report(s(1), SimTime::ZERO));
        match poller.decide(SimTime::from_micros(1250), &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idles_until_next_plan_when_nothing_due() {
        let out = outcome_two_uplinks();
        let mut poller = GsPoller::variable(&out, SimTime::ZERO);
        let flows = [
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(2),
                s(2),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
        ];
        let queues = vec![None, None];
        // Execute both due polls.
        poller.on_exchange(&gs_empty_report(s(1), SimTime::ZERO));
        poller.on_exchange(&gs_empty_report(s(2), SimTime::from_micros(1250)));
        let t = SimTime::from_micros(2500);
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(t, &table, &queues);
        match poller.decide(t, &view) {
            PollDecision::Idle { until } => {
                // Improvement (b): next = actual + x = 0 + 16.36 ms.
                assert_eq!(until.as_nanos(), 16_363_636);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variable_poller_uses_improvement_a() {
        let out = outcome_two_uplinks();
        let mut poller = GsPoller::variable(&out, SimTime::ZERO);
        // S1's poll at plan 0 returns a 176-byte last segment.
        let flows: [FlowSpec; 0] = [];
        let queues: Vec<Option<FlowQueue>> = vec![];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let _ = poller.decide(SimTime::ZERO, &view); // capture planned = 0
        poller.on_exchange(&gs_data_report(
            s(1),
            FlowId(1),
            SimTime::ZERO,
            true,
            true,
            176,
        ));
        // Next plan = 176 / 8800 s = 20 ms (> planned + x = 16.36 ms).
        assert_eq!(
            poller.entities[0].plan.next_poll(),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn fixed_poller_ignores_packet_size() {
        let out = outcome_two_uplinks();
        let mut poller = GsPoller::fixed(&out, SimTime::ZERO);
        let flows: [FlowSpec; 0] = [];
        let queues: Vec<Option<FlowQueue>> = vec![];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        let _ = poller.decide(SimTime::ZERO, &view);
        poller.on_exchange(&gs_data_report(
            s(1),
            FlowId(1),
            SimTime::ZERO,
            true,
            true,
            176,
        ));
        assert_eq!(
            poller.entities[0].plan.next_poll().as_nanos(),
            16_363_636,
            "fixed interval regardless of packet size"
        );
    }

    #[test]
    fn skip_empty_downlink_entity() {
        let out = admit(
            &[GsRequest::new(
                FlowId(1),
                s(1),
                Direction::MasterToSlave,
                tspec(),
                8800.0,
            )],
            &AdmissionConfig::paper(),
        )
        .unwrap();
        let mut poller = GsPoller::variable(&out, SimTime::ZERO);
        let stats = poller.stats();
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::GuaranteedService,
        )];
        // Empty downlink queue: the due poll is skipped, the poller idles.
        let queues = vec![Some(FlowQueue::new())];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        match poller.decide(SimTime::ZERO, &view) {
            PollDecision::Idle { until } => assert_eq!(until.as_nanos(), 16_363_636),
            other => panic!("{other:?}"),
        }
        assert_eq!(stats.skipped_polls(), 1);
        assert_eq!(stats.executed_polls(), 0);
        // With data present, the poll happens.
        let mut q = FlowQueue::new();
        q.push(AppPacket::new(0, FlowId(1), 160, SimTime::from_millis(17)));
        let queues = vec![Some(q)];
        let t = SimTime::from_millis(17);
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(t, &table, &queues);
        match poller.decide(t, &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
            other => panic!("{other:?}"),
        }
        assert_eq!(stats.executed_polls(), 1);
    }

    #[test]
    fn fixed_poller_never_skips() {
        let out = admit(
            &[GsRequest::new(
                FlowId(1),
                s(1),
                Direction::MasterToSlave,
                tspec(),
                8800.0,
            )],
            &AdmissionConfig::paper(),
        )
        .unwrap();
        let mut poller = GsPoller::fixed(&out, SimTime::ZERO);
        let flows = [FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::GuaranteedService,
        )];
        let queues = vec![Some(FlowQueue::new())];
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        // Fixed poller polls even with a known-empty queue.
        match poller.decide(SimTime::ZERO, &view) {
            PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn be_decisions_capped_by_next_gs_plan() {
        use btgs_pollers::RoundRobinPoller;
        let out = outcome_two_uplinks();
        let mut poller = GsPoller::variable(&out, SimTime::ZERO)
            .with_best_effort(Box::new(RoundRobinPoller::new()));
        // Drain the due GS polls first.
        poller.on_exchange(&gs_empty_report(s(1), SimTime::ZERO));
        poller.on_exchange(&gs_empty_report(s(2), SimTime::from_micros(1250)));
        // A BE slave exists: the inner round robin polls it.
        let flows = [
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(9),
                s(6),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
        ];
        let queues = vec![None, None];
        let t = SimTime::from_micros(2500);
        let table = FlowTable::new(flows.to_vec()).unwrap();
        let view = MasterView::new(t, &table, &queues);
        match poller.decide(t, &view) {
            PollDecision::Poll { slave, channel } => {
                assert_eq!(slave, s(6));
                assert_eq!(channel, LogicalChannel::BestEffort);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn name_reflects_flavour() {
        let out = outcome_two_uplinks();
        assert_eq!(GsPoller::fixed(&out, SimTime::ZERO).name(), "gs-fixed");
        assert_eq!(
            GsPoller::variable(&out, SimTime::ZERO).name(),
            "gs-variable"
        );
        let pfp = GsPoller::pfp(
            &out,
            SimTime::ZERO,
            Box::new(btgs_pollers::PfpBePoller::new(
                btgs_des::SimDuration::from_millis(20),
            )),
        );
        assert_eq!(pfp.name(), "pfp-gs");
    }
}
