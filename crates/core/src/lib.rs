//! # btgs-core — delay guarantees in Bluetooth piconets
//!
//! The primary contribution of *"Providing Delay Guarantees in Bluetooth"*
//! (Ait Yaiz & Heijenk, ICDCSW'03), reproduced as a library:
//!
//! * **Poll efficiency** ([`min_poll_efficiency`], Eq. 4) — the fewest
//!   payload bytes a poll is guaranteed to move, given the flow's packet
//!   size range and segmentation policy.
//! * **Poll interval** ([`poll_interval`], Eq. 5) — `x = eta_min / R`.
//! * **Maximum poll delay** ([`y_max`], Fig. 2) — the fixed point of the
//!   higher-priority drain recurrence.
//! * **Error-term export** (Eqs. 6–7) — `C = eta_min`, `D = y`, plugged
//!   into RFC 2212's Eq. 1 via `btgs-gs`.
//! * **Admission control** ([`admit`], Fig. 3) — piggyback-aware entity
//!   formation plus Audsley-style priority reassignment enforcing Eq. 9.
//! * **Chain admission** ([`ScatternetAdmissionController`]) — multi-hop
//!   GS admission: the single-piconet test runs in every traversed piconet
//!   atomically, and per-hop bounds compose with worst-case bridge
//!   residences into a provable end-to-end bound.
//! * **The pollers** ([`GsPoller`]) — fixed interval (§3.1), variable
//!   interval with improvements (a)–(c) (§3.2), and the PFP configuration
//!   evaluated in §4.
//! * **The evaluation** ([`PaperScenario`], [`sweep_fig5`]) — the Fig. 4
//!   piconet and the Fig. 5 throughput-vs-delay-requirement sweep.
//! * **The scatternet scenario** ([`ScatternetScenario`]) — the paper's
//!   future-work workload: 2–3 chained Fig. 4 piconets with one bridged
//!   GS flow, reporting per-hop, end-to-end and bridge-residence delays.
//! * **The harness** ([`ExperimentRunner`], [`ScenarioGrid`]) — fans
//!   poller × piconet-count × seed × requirement grids across threads
//!   with bit-identical results at any thread count.
//!
//! # Examples
//!
//! Admit the paper's four GS flows and inspect the schedule:
//!
//! ```
//! use btgs_core::{admit, AdmissionConfig, GsRequest};
//! use btgs_baseband::{AmAddr, Direction};
//! use btgs_gs::TokenBucketSpec;
//! use btgs_traffic::FlowId;
//!
//! let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
//! let s = |n| AmAddr::new(n).unwrap();
//! let requests = vec![
//!     GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 8800.0),
//!     GsRequest::new(FlowId(2), s(2), Direction::MasterToSlave, tspec, 8800.0),
//!     GsRequest::new(FlowId(3), s(2), Direction::SlaveToMaster, tspec, 8800.0),
//!     GsRequest::new(FlowId(4), s(3), Direction::SlaveToMaster, tspec, 8800.0),
//! ];
//! let schedule = admit(&requests, &AdmissionConfig::paper()).unwrap();
//! // Flows 2 and 3 piggyback: three polled entities, y = 3.75/7.5/11.25 ms.
//! assert_eq!(schedule.entities.len(), 3);
//! assert_eq!(schedule.entities[2].y.as_micros(), 11_250);
//! # Ok::<(), btgs_traffic::InvalidTSpec>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod analysis;
mod chain_admission;
mod efficiency;
mod experiment;
mod gs_poller;
mod plan;
mod runner;
mod scatternet_scenario;
mod scenario;
mod sink;
mod timing;
mod ymax;

pub use admission::{
    admit, AdmissionConfig, AdmissionController, AdmissionError, AdmissionOutcome, EntityPlan,
    FlowGrant, GsRequest,
};
pub use analysis::{be_slot_demands, gs_slot_estimate, predicted_be_throughput_kbps};
pub use chain_admission::{
    ChainAdmissionError, ChainGrant, ChainHopSpec, ChainRequest, HopGrant,
    ScatternetAdmissionController,
};
pub use efficiency::{min_poll_efficiency, poll_efficiency};
pub use experiment::{fig5_requirements, run_point, sweep_fig5, SweepPoint};
pub use gs_poller::{GsPoller, GsPollerStats};
pub use plan::{Improvements, PollOutcome, PollPlan};
pub use runner::{
    comparison_pollers, CellOutcome, CellResult, ExperimentRunner, GridCell, GridReport,
    ScatternetCellResult, ScenarioGrid,
};
pub use scatternet_scenario::{
    chain_id_base, rev_chain_id_base, sanitizer_corpus, ScatternetScenario,
    ScatternetScenarioParams, Topology, BRIDGE_IN_SLAVE, BRIDGE_OUT_SLAVE, CHAIN_ID_BASE,
    PICONET_ID_STRIDE, REV_CHAIN_ID_BASE,
};
pub use scenario::{
    paper_tspec, BeSourceMix, GsFlowPlan, PaperScenario, PaperScenarioParams, PollerKind,
    BE_ONOFF_MEAN, BE_PACKET_SIZE, BE_RATES_KBPS, GS_INTERVAL, GS_PACKET_RANGE,
};
pub use sink::{CellSink, CollectSink, MultiSink};
pub use timing::{
    max_data_slots, piconet_u, poll_interval, segment_exchange_time, SegmentTimeModel,
};
pub use ymax::{max_admissible_rate, y_fixpoint, y_max, HigherEntity};
