//! Streaming consumption of grid-cell results.
//!
//! [`ExperimentRunner`](crate::ExperimentRunner) used to hold every
//! [`CellResult`] of a grid in one `Vec` — fine for the paper's 32-cell
//! evaluation, a wall for the million-cell sweeps the ROADMAP aims at.
//! The [`CellSink`] trait inverts that: the runner *streams* results out
//! as cells complete, and what is retained is the sink's choice. The
//! in-memory path survives as [`CollectSink`]; `btgs-grid` adds an online
//! aggregator whose memory is bounded by the number of summary series and
//! a JSONL spill sink for full-fidelity archiving, and its multi-process
//! runner feeds the same sinks from worker pipes.
//!
//! # Ordering contract
//!
//! Cells complete in an arbitrary order (thread schedules in-process,
//! shard interleaving across processes). A sink receives each result
//! exactly once, tagged with its **grid index**, and must produce output
//! invariant to the delivery order — either by being commutative (the
//! aggregator) or by reordering on the index (this collector). The
//! completion-order property tests shuffle deliveries to enforce this.

use crate::runner::{CellResult, GridReport};

/// A consumer of streamed grid-cell results.
pub trait CellSink: Send {
    /// Observes the result of the cell at `index` in grid order. Called
    /// exactly once per cell, in completion order.
    fn accept(&mut self, index: usize, result: &CellResult);

    /// Like [`CellSink::accept`], but passes ownership; sinks that retain
    /// whole results override this to avoid a deep clone.
    fn accept_owned(&mut self, index: usize, result: CellResult) {
        self.accept(index, &result);
    }
}

/// The all-in-memory sink: retains every result and reassembles them in
/// grid order, whatever order they completed in.
#[derive(Debug, Default)]
pub struct CollectSink {
    slots: Vec<Option<CellResult>>,
    received: usize,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// Results received so far.
    pub fn len(&self) -> usize {
        self.received
    }

    /// `true` if no results were received yet.
    pub fn is_empty(&self) -> bool {
        self.received == 0
    }

    /// Stores one owned result under its grid index.
    ///
    /// # Panics
    ///
    /// Panics if the index was already filled — every cell must be
    /// delivered exactly once.
    fn store(&mut self, index: usize, result: CellResult) {
        if self.slots.len() <= index {
            self.slots.resize_with(index + 1, || None);
        }
        assert!(
            self.slots[index].replace(result).is_none(),
            "cell {index} delivered twice"
        );
        self.received += 1;
    }

    /// The merged report, in grid order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `0..max_delivered` was never delivered.
    pub fn into_report(self) -> GridReport {
        let cells: Vec<CellResult> = self
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("cell {i} was never delivered")))
            .collect();
        GridReport { cells }
    }
}

impl CellSink for CollectSink {
    fn accept(&mut self, index: usize, result: &CellResult) {
        self.store(index, result.clone());
    }

    fn accept_owned(&mut self, index: usize, result: CellResult) {
        self.store(index, result);
    }
}

/// Fans every result out to several sinks (e.g. collect + aggregate +
/// spill in one pass).
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn CellSink>,
}

impl<'a> MultiSink<'a> {
    /// Combines the given sinks; each receives every result, in delivery
    /// order.
    pub fn new(sinks: Vec<&'a mut dyn CellSink>) -> MultiSink<'a> {
        MultiSink { sinks }
    }
}

impl CellSink for MultiSink<'_> {
    fn accept(&mut self, index: usize, result: &CellResult) {
        for sink in &mut self.sinks {
            sink.accept(index, result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{GridCell, ScenarioGrid};
    use crate::scenario::{BeSourceMix, PollerKind};
    use btgs_des::{SimDuration, SimTime};

    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid {
            pollers: vec![PollerKind::PfpGs],
            piconets: vec![1],
            seeds: vec![1, 2, 3],
            topologies: vec![crate::Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(40)],
            chain_deadlines: vec![None],
            bidirectional: false,
            bridge_cycle: SimDuration::from_millis(20),
            horizon: SimTime::from_secs(1),
            warmup: SimDuration::from_millis(200),
            include_be: false,
            be_load_scale: vec![1.0],
            be_source_mix: BeSourceMix::Cbr,
            telemetry: false,
        }
    }

    #[test]
    fn collect_reorders_out_of_order_deliveries() {
        let cells = tiny_grid().cells();
        let results: Vec<_> = cells.iter().map(GridCell::run).collect();
        let mut sink = CollectSink::new();
        assert!(sink.is_empty());
        // Deliver in reverse completion order.
        for (i, r) in results.iter().enumerate().rev() {
            sink.accept(i, r);
        }
        assert_eq!(sink.len(), 3);
        let report = sink.into_report();
        for (cell, result) in cells.iter().zip(&report.cells) {
            assert_eq!(*cell, result.cell);
        }
    }

    #[test]
    #[should_panic(expected = "delivered twice")]
    fn double_delivery_is_rejected() {
        let cell = tiny_grid().cells()[0];
        let result = cell.run();
        let mut sink = CollectSink::new();
        sink.accept(0, &result);
        sink.accept(0, &result);
    }

    #[test]
    #[should_panic(expected = "never delivered")]
    fn gaps_are_rejected_at_merge_time() {
        let cell = tiny_grid().cells()[0];
        let mut sink = CollectSink::new();
        sink.accept_owned(2, cell.run());
        let _ = sink.into_report();
    }

    #[test]
    fn multi_sink_fans_out() {
        let cell = tiny_grid().cells()[0];
        let result = cell.run();
        let mut a = CollectSink::new();
        let mut b = CollectSink::new();
        {
            let mut multi = MultiSink::new(vec![&mut a, &mut b]);
            multi.accept(0, &result);
        }
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(
            a.into_report().digest(),
            b.into_report().digest(),
            "both sinks saw the same result"
        );
    }
}
