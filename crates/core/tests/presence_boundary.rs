//! Regression tests pinning the bridge-departure boundary semantics of
//! the presence-aware pollers.
//!
//! The contract, identical for every poller and enforced by the
//! simulator's exchange cap:
//!
//! * the presence window is **end-exclusive**: an exchange *ending
//!   exactly on* the departure boundary fits; one starting *at* the
//!   boundary does not;
//! * a **GS** poll is only issued when the entity's full segment-exchange
//!   time `s` still fits before departure — a shorter remainder would
//!   silently truncate the exchange below the η_min the admission
//!   accounting promises per poll (the bug this file pins: the fit test
//!   must use the exchange *end*, not merely presence at the start slot);
//! * a **best-effort** poll may use any remainder that fits at least
//!   POLL + NULL (two slots) — BE carries no per-poll guarantee, so
//!   scraps of window are fair game.

use btgs_baseband::{AmAddr, Direction, LogicalChannel, PresenceWindow};
use btgs_core::{admit, AdmissionConfig, GsPoller, GsRequest};
use btgs_des::{SimDuration, SimTime};
use btgs_gs::TokenBucketSpec;
use btgs_piconet::{
    FlowQueue, FlowSpec, FlowTable, MasterView, PollDecision, Poller, PresenceMask,
};
use btgs_pollers::PfpBePoller;
use btgs_traffic::{AppPacket, FlowId};

fn s(n: u8) -> AmAddr {
    AmAddr::new(n).unwrap()
}

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

/// Bridge present during the first 10 ms of every 20 ms cycle.
fn bridge_mask(slave: AmAddr) -> PresenceMask {
    let mut mask = PresenceMask::new();
    mask.set(
        slave,
        PresenceWindow::new(SimDuration::from_millis(20), SimDuration::ZERO, us(10_000)).unwrap(),
    )
    .unwrap();
    mask
}

#[test]
fn window_boundary_is_end_exclusive_for_the_exchange_cap() {
    let mask = bridge_mask(s(1));
    // A 6-slot (3.75 ms) exchange starting 3.75 ms before departure ends
    // exactly on the boundary: allowed.
    assert!(mask.fits(s(1), SimTime::from_micros(6_250), us(3_750)));
    // One slot pair later it no longer fits.
    assert!(!mask.fits(s(1), SimTime::from_micros(7_500), us(3_750)));
    // At the departure instant itself nothing fits (absent).
    assert!(!mask.fits(s(1), SimTime::from_micros(10_000), us(1_250)));
    // Full-time slaves always fit.
    assert!(mask.fits(s(2), SimTime::from_micros(10_000), us(3_750)));
    // next_fitting lands on the last start instant that still fits, then
    // wraps to the next cycle.
    assert_eq!(
        mask.next_fitting(s(1), SimTime::from_micros(6_250), us(3_750)),
        SimTime::from_micros(6_250)
    );
    assert_eq!(
        mask.next_fitting(s(1), SimTime::from_micros(7_500), us(3_750)),
        SimTime::from_micros(20_000)
    );
}

/// A GS poller over one bridge entity; the paper's DH1+DH3 configuration
/// gives the entity `s = U = 3.75 ms`.
fn gs_poller_for_bridge() -> (GsPoller, FlowTable) {
    let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap();
    let req = GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 8_800.0);
    let outcome = admit(&[req], &AdmissionConfig::paper()).unwrap();
    assert_eq!(outcome.entities[0].s, us(3_750));
    let poller = GsPoller::variable(&outcome, SimTime::ZERO);
    let table = FlowTable::new(vec![FlowSpec::new(
        FlowId(1),
        s(1),
        Direction::SlaveToMaster,
        LogicalChannel::GuaranteedService,
    )])
    .unwrap();
    (poller, table)
}

#[test]
fn gs_poll_requires_the_full_exchange_to_fit_before_departure() {
    let (mut poller, table) = gs_poller_for_bridge();
    let queues = vec![None];
    let mask = bridge_mask(s(1));

    // 3.75 ms before departure: a full DH3+DH3 exchange still fits (it
    // ends exactly on the boundary) — the due poll is issued.
    let t = SimTime::from_micros(6_250);
    let view = MasterView::with_presence(t, &table, &queues, &mask);
    match poller.decide(t, &view) {
        PollDecision::Poll { slave, channel } => {
            assert_eq!(slave, s(1));
            assert_eq!(channel, LogicalChannel::GuaranteedService);
        }
        other => panic!("exchange ending on the boundary must be allowed: {other:?}"),
    }

    // 2.5 ms before departure the slave is still *present*, but a full
    // exchange no longer fits: the poll defers to the next window instead
    // of issuing a truncated exchange.
    let (mut poller, table) = gs_poller_for_bridge();
    let t = SimTime::from_micros(7_500);
    let view = MasterView::with_presence(t, &table, &queues, &mask);
    assert!(
        view.is_present(s(1)),
        "the boundary case: present but tight"
    );
    match poller.decide(t, &view) {
        PollDecision::Idle { until } => {
            assert_eq!(
                until,
                SimTime::from_micros(20_000),
                "deferred to the next window start"
            );
        }
        other => panic!("a truncating GS poll must be deferred: {other:?}"),
    }

    // At the departure boundary itself the slave is absent; same verdict.
    let (mut poller, table) = gs_poller_for_bridge();
    let t = SimTime::from_micros(10_000);
    let view = MasterView::with_presence(t, &table, &queues, &mask);
    assert!(!view.is_present(s(1)));
    match poller.decide(t, &view) {
        PollDecision::Idle { until } => assert_eq!(until, SimTime::from_micros(20_000)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn be_poll_uses_any_remainder_but_not_the_boundary_instant() {
    let table = FlowTable::new(vec![FlowSpec::new(
        FlowId(1),
        s(1),
        Direction::MasterToSlave,
        LogicalChannel::BestEffort,
    )])
    .unwrap();
    let mut q = FlowQueue::new();
    q.push(AppPacket::new(0, FlowId(1), 100, SimTime::ZERO));
    let queues = vec![Some(q)];
    let mask = bridge_mask(s(1));

    // 2.5 ms before departure — where a GS poll already defers — the BE
    // poller still polls: POLL + DH1 fits, and best effort has no
    // per-poll efficiency guarantee to protect.
    let t = SimTime::from_micros(7_500);
    let view = MasterView::with_presence(t, &table, &queues, &mask);
    let mut pfp = PfpBePoller::new(SimDuration::from_millis(20));
    match pfp.decide(t, &view) {
        PollDecision::Poll { slave, channel } => {
            assert_eq!(slave, s(1));
            assert_eq!(channel, LogicalChannel::BestEffort);
        }
        other => panic!("BE may use window scraps: {other:?}"),
    }

    // At the boundary instant the slave is absent: no poll, and the idle
    // target is the next window.
    let t = SimTime::from_micros(10_000);
    let view = MasterView::with_presence(t, &table, &queues, &mask);
    let mut pfp = PfpBePoller::new(SimDuration::from_millis(20));
    match pfp.decide(t, &view) {
        PollDecision::Poll { .. } => panic!("polled an absent bridge"),
        PollDecision::Idle { .. } | PollDecision::Sleep => {}
    }
}

/// End to end through the simulator: a packet whose only service
/// opportunity ends exactly on the departure boundary is delivered, and
/// its delivery timestamp *is* the boundary.
#[test]
fn exchange_ending_exactly_on_the_boundary_delivers() {
    use btgs_baseband::{IdealChannel, PacketType};
    use btgs_des::DetRng;
    use btgs_piconet::{PiconetConfig, PiconetSim};
    use btgs_traffic::CbrSource;

    // One BE uplink flow on a bridge present [0, 2.5 ms) of every 20 ms:
    // the window fits exactly two POLL+DH1 exchanges (4 slots); the
    // second ends exactly on the boundary.
    let config = PiconetConfig::new(vec![PacketType::Dh1])
        .with_flow(FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ))
        .with_presence(
            s(1),
            PresenceWindow::new(SimDuration::from_millis(20), SimDuration::ZERO, us(2_500))
                .unwrap(),
        );
    let mut sim = PiconetSim::new(
        config,
        Box::new(btgs_piconet::RoundRobinForTest::default()),
        Box::new(IdealChannel),
    )
    .unwrap();
    // Two 27-byte packets at t = 0: both need one DH1 each; the first
    // exchange spans [0, 1.25 ms), the second [1.25, 2.5 ms) — ending
    // exactly at departure.
    sim.add_source(Box::new(
        CbrSource::new(
            FlowId(1),
            SimDuration::from_micros(100),
            27,
            27,
            DetRng::seed_from_u64(1),
        )
        .with_packet_limit(2),
    ))
    .unwrap();
    let report = sim.run(SimTime::from_millis(30)).unwrap();
    let flow = report.flow(FlowId(1));
    assert_eq!(flow.delivered_packets, 2, "both exchanges fit the window");
    // The second delivery lands exactly on the departure boundary.
    assert_eq!(flow.delay.max().unwrap(), us(2_500) - us(100));
}

/// A window shorter than the entity's full exchange can never fit it: the
/// GS poller must degrade to polling while present (the sim truncates the
/// exchange at the departure cap) instead of idling "until now" forever —
/// the 1 ns re-wake busy loop this pins against.
#[test]
fn window_shorter_than_the_exchange_degrades_to_truncated_polls() {
    let (mut poller, table) = gs_poller_for_bridge();
    let queues = vec![None];
    // Dwell 2.5 ms < s = 3.75 ms.
    let mut mask = PresenceMask::new();
    mask.set(
        s(1),
        PresenceWindow::new(SimDuration::from_millis(20), SimDuration::ZERO, us(2_500)).unwrap(),
    )
    .unwrap();

    // Inside the window the due poll must be issued (truncated by the
    // departure cap), not deferred to an instant that never comes.
    let t = SimTime::from_micros(1_250);
    let view = MasterView::with_presence(t, &table, &queues, &mask);
    match poller.decide(t, &view) {
        PollDecision::Poll { slave, .. } => assert_eq!(slave, s(1)),
        other => panic!("an unfittable window must degrade to presence: {other:?}"),
    }

    // Outside it, the idle target is the next window start — strictly in
    // the future, so the wake loop always progresses.
    let (mut poller, table) = gs_poller_for_bridge();
    let t = SimTime::from_micros(5_000);
    let view = MasterView::with_presence(t, &table, &queues, &mask);
    match poller.decide(t, &view) {
        PollDecision::Idle { until } => {
            assert_eq!(until, SimTime::from_micros(20_000));
            assert!(until > t);
        }
        other => panic!("{other:?}"),
    }
}
