//! Packet delay statistics.

use btgs_des::SimDuration;
use core::fmt;
use std::cell::{Cell, RefCell};

/// Collects per-packet delay samples and answers summary queries.
///
/// Samples are kept in full (a 530 s paper run produces 25 000 samples per
/// flow — trivially small), so percentiles are exact rather than
/// approximated.
///
/// Order-statistic queries ([`quantile`](DelayStats::quantile),
/// [`violations_of`](DelayStats::violations_of), the `Display` p95) share a
/// lazily sorted view of the sample buffer, maintained behind interior
/// mutability: the first such query after new samples sorts once in place;
/// every further query is a binary search or an index — no cloning, no
/// hidden per-call allocation. Sample insertion order is never observable
/// through the public API, so re-ordering is safe.
///
/// # Examples
///
/// ```
/// use btgs_metrics::DelayStats;
/// use btgs_des::SimDuration;
///
/// let mut stats = DelayStats::new();
/// for ms in [10, 20, 30, 40] {
///     stats.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(stats.count(), 4);
/// assert_eq!(stats.max().unwrap(), SimDuration::from_millis(40));
/// assert_eq!(stats.mean().unwrap(), SimDuration::from_millis(25));
/// assert_eq!(stats.quantile(0.5).unwrap(), SimDuration::from_millis(20));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DelayStats {
    samples_ns: RefCell<Vec<u64>>,
    sorted: Cell<bool>,
    sum_ns: u128,
}

impl DelayStats {
    /// Creates an empty collector.
    pub fn new() -> DelayStats {
        DelayStats::default()
    }

    /// Records one delay sample.
    pub fn record(&mut self, delay: SimDuration) {
        self.samples_ns.get_mut().push(delay.as_nanos());
        self.sum_ns += delay.as_nanos() as u128;
        self.sorted.set(false);
    }

    /// Pre-sizes the sample buffer for at least `additional` further
    /// samples, so recording inside an allocation-free window does not
    /// grow the buffer.
    pub fn reserve(&mut self, additional: usize) {
        self.samples_ns.get_mut().reserve(additional);
    }

    /// Sorts the sample buffer in place unless it is already sorted.
    fn ensure_sorted(&self) {
        if !self.sorted.get() {
            // analyze: allow(unstable-sort): u64 samples sorted by value —
            // equal keys are bit-identical, so their relative order cannot
            // reach any percentile or report byte.
            self.samples_ns.borrow_mut().sort_unstable();
            self.sorted.set(true);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples_ns.borrow().len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.borrow().is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        let samples = self.samples_ns.borrow();
        if self.sorted.get() {
            samples.first().map(|&ns| SimDuration::from_nanos(ns))
        } else {
            samples.iter().min().map(|&ns| SimDuration::from_nanos(ns))
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        let samples = self.samples_ns.borrow();
        if self.sorted.get() {
            samples.last().map(|&ns| SimDuration::from_nanos(ns))
        } else {
            samples.iter().max().map(|&ns| SimDuration::from_nanos(ns))
        }
    }

    /// Exact sum of all samples, in nanoseconds. The scatternet tests use
    /// this to assert the end-to-end identity (e2e = Σ hop delays +
    /// Σ residence) without truncation error.
    pub fn sum_nanos(&self) -> u128 {
        self.sum_ns
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<SimDuration> {
        let n = self.count();
        if n == 0 {
            None
        } else {
            Some(SimDuration::from_nanos((self.sum_ns / n as u128) as u64))
        }
    }

    /// Exact `q`-quantile (nearest-rank method), `q` in `[0, 1]`.
    ///
    /// Sorts lazily on first use (via the shared sorted cache); repeated
    /// quantile queries are O(1).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let samples = self.samples_ns.borrow();
        let n = samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(SimDuration::from_nanos(samples[rank - 1]))
    }

    /// Number of samples strictly greater than `bound`.
    ///
    /// Runs on the sorted view: one binary search
    /// ([`partition_point`](slice::partition_point)) instead of a linear
    /// scan.
    pub fn violations_of(&self, bound: SimDuration) -> usize {
        self.ensure_sorted();
        let samples = self.samples_ns.borrow();
        let b = bound.as_nanos();
        samples.len() - samples.partition_point(|&ns| ns <= b)
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &DelayStats) {
        self.samples_ns
            .get_mut()
            .extend_from_slice(&other.samples_ns.borrow());
        self.sum_ns += other.sum_ns;
        self.sorted.set(false);
    }

    /// Calls `f` with every recorded sample (in nanoseconds) in storage
    /// order, without cloning the buffer or allocating — the streaming
    /// aggregators bin samples into fixed histograms through this.
    pub fn for_each_nanos(&self, mut f: impl FnMut(u64)) {
        for &ns in self.samples_ns.borrow().iter() {
            f(ns);
        }
    }

    /// A copy of the raw sample buffer in nanoseconds, in storage order.
    ///
    /// Storage order is an implementation detail (order-statistic queries
    /// may have sorted the buffer in place); no public query depends on it,
    /// so serializing and re-loading samples through this accessor
    /// preserves every observable statistic exactly.
    pub fn samples_nanos(&self) -> Vec<u64> {
        self.samples_ns.borrow().clone()
    }

    /// Rebuilds a collector from raw nanosecond samples (the inverse of
    /// [`DelayStats::samples_nanos`]); the exact sum is recomputed.
    pub fn from_nanos_samples(samples: Vec<u64>) -> DelayStats {
        let sum_ns = samples.iter().map(|&ns| ns as u128).sum();
        DelayStats {
            samples_ns: RefCell::new(samples),
            sorted: Cell::new(false),
            sum_ns,
        }
    }
}

/// A bounded-size, exactly mergeable delay digest: count, sum, min, max.
///
/// Unlike [`DelayStats`] it keeps **no samples**, so its memory footprint
/// is a handful of words regardless of how many delays it has seen — the
/// streaming grid aggregator pools millions of cell samples through these
/// without growing. All four components are commutative and associative,
/// so merging per-shard summaries in **any completion order** yields the
/// same digest, and [`DelaySummary::mean`] uses the same integer
/// arithmetic as [`DelayStats::mean`] (truncating `u128` division), so a
/// summary observed from a stats collector reports the identical mean.
///
/// # Examples
///
/// ```
/// use btgs_metrics::{DelayStats, DelaySummary};
/// use btgs_des::SimDuration;
///
/// let mut stats = DelayStats::new();
/// stats.record(SimDuration::from_millis(10));
/// stats.record(SimDuration::from_millis(30));
/// let mut summary = DelaySummary::new();
/// summary.observe(&stats);
/// assert_eq!(summary.mean(), stats.mean());
/// assert_eq!(summary.max(), stats.max());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DelaySummary {
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl DelaySummary {
    /// Creates an empty summary.
    pub fn new() -> DelaySummary {
        DelaySummary::default()
    }

    /// Records one delay sample.
    pub fn record(&mut self, delay: SimDuration) {
        let ns = delay.as_nanos();
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns += ns as u128;
    }

    /// Folds a whole sample collector into this summary (allocation-free).
    pub fn observe(&mut self, stats: &DelayStats) {
        if stats.is_empty() {
            return;
        }
        let min = stats.min().expect("non-empty").as_nanos();
        let max = stats.max().expect("non-empty").as_nanos();
        if self.count == 0 {
            self.min_ns = min;
            self.max_ns = max;
        } else {
            self.min_ns = self.min_ns.min(min);
            self.max_ns = self.max_ns.max(max);
        }
        self.count += stats.count() as u64;
        self.sum_ns += stats.sum_nanos();
    }

    /// Merges another summary into this one. Exact: the result is
    /// identical to having recorded both sample streams into one summary,
    /// in any order.
    pub fn merge(&mut self, other: &DelaySummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Number of samples summarised.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples were summarised.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples, in nanoseconds.
    pub fn sum_nanos(&self) -> u128 {
        self.sum_ns
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.min_ns))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.max_ns))
    }

    /// Arithmetic mean, with [`DelayStats::mean`]'s exact integer
    /// arithmetic.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64))
    }
}

impl fmt::Display for DelaySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no samples");
        }
        write!(
            f,
            "n={} min={} mean={} max={}",
            self.count,
            self.min().expect("non-empty"),
            self.mean().expect("non-empty"),
            self.max().expect("non-empty"),
        )
    }
}

impl fmt::Display for DelayStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no samples");
        }
        // p95 goes through the shared sorted cache: the buffer is sorted (in
        // place) at most once, not cloned per format call.
        write!(
            f,
            "n={} min={} mean={} p95={} max={}",
            self.count(),
            self.min().expect("non-empty"),
            self.mean().expect("non-empty"),
            self.quantile(0.95).expect("non-empty"),
            self.max().expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_stats() {
        let s = DelayStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    fn summary_statistics() {
        let mut s = DelayStats::new();
        for v in [5, 1, 9, 3, 7] {
            s.record(ms(v));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(ms(1)));
        assert_eq!(s.max(), Some(ms(9)));
        assert_eq!(s.mean(), Some(ms(5)));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = DelayStats::new();
        for v in 1..=100u64 {
            s.record(ms(v));
        }
        assert_eq!(s.quantile(0.0), Some(ms(1)));
        assert_eq!(s.quantile(0.01), Some(ms(1)));
        assert_eq!(s.quantile(0.5), Some(ms(50)));
        assert_eq!(s.quantile(0.95), Some(ms(95)));
        assert_eq!(s.quantile(1.0), Some(ms(100)));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_range_checked() {
        let mut s = DelayStats::new();
        s.record(ms(1));
        let _ = s.quantile(1.5);
    }

    #[test]
    fn violations_are_strict() {
        let mut s = DelayStats::new();
        for v in [10, 20, 30] {
            s.record(ms(v));
        }
        assert_eq!(
            s.violations_of(ms(30)),
            0,
            "bound itself is not a violation"
        );
        assert_eq!(s.violations_of(ms(29)), 1);
        assert_eq!(s.violations_of(ms(9)), 3);
    }

    #[test]
    fn violations_use_the_sorted_cache() {
        let mut s = DelayStats::new();
        for v in [40, 10, 30, 20] {
            s.record(ms(v));
        }
        // First order-statistic query sorts once…
        assert_eq!(s.violations_of(ms(25)), 2);
        // …further queries and quantiles reuse the sorted view.
        assert_eq!(s.quantile(0.5), Some(ms(20)));
        assert_eq!(s.violations_of(ms(5)), 4);
        assert_eq!(s.violations_of(ms(40)), 0);
        // Recording invalidates and re-sorts lazily.
        s.record(ms(50));
        assert_eq!(s.violations_of(ms(45)), 1);
        assert_eq!(s.min(), Some(ms(10)));
        assert_eq!(s.max(), Some(ms(50)));
    }

    #[test]
    fn display_uses_shared_cache() {
        let mut s = DelayStats::new();
        for v in 1..=100u64 {
            s.record(ms(v));
        }
        let rendered = s.to_string();
        assert!(rendered.contains("p95=95ms"), "{rendered}");
        // The same object keeps answering consistently afterwards.
        assert_eq!(s.quantile(0.95), Some(ms(95)));
    }

    #[test]
    fn merge_combines() {
        let mut a = DelayStats::new();
        a.record(ms(1));
        let mut b = DelayStats::new();
        b.record(ms(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(ms(2)));
    }

    #[test]
    fn samples_round_trip_preserves_statistics() {
        let mut s = DelayStats::new();
        for v in [40, 10, 30, 20] {
            s.record(ms(v));
        }
        // Force a sort so storage order differs from insertion order.
        assert_eq!(s.quantile(0.5), Some(ms(20)));
        let rebuilt = DelayStats::from_nanos_samples(s.samples_nanos());
        assert_eq!(rebuilt.count(), s.count());
        assert_eq!(rebuilt.sum_nanos(), s.sum_nanos());
        assert_eq!(rebuilt.min(), s.min());
        assert_eq!(rebuilt.max(), s.max());
        assert_eq!(rebuilt.quantile(0.95), s.quantile(0.95));
        assert_eq!(rebuilt.violations_of(ms(25)), s.violations_of(ms(25)));
        // for_each_nanos visits every sample exactly once.
        let mut sum = 0u128;
        rebuilt.for_each_nanos(|ns| sum += ns as u128);
        assert_eq!(sum, rebuilt.sum_nanos());
    }

    #[test]
    fn summary_matches_stats_and_merges_order_invariantly() {
        let mut all = DelayStats::new();
        let mut a = DelayStats::new();
        let mut b = DelayStats::new();
        for v in [7, 3, 11] {
            all.record(ms(v));
            a.record(ms(v));
        }
        for v in [5, 23, 1] {
            all.record(ms(v));
            b.record(ms(v));
        }
        let mut sa = DelaySummary::new();
        sa.observe(&a);
        let mut sb = DelaySummary::new();
        sb.observe(&b);

        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        assert_eq!(ab, ba, "merge must be order-invariant");
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.sum_nanos(), all.sum_nanos());
        assert_eq!(ab.min(), all.min());
        assert_eq!(ab.max(), all.max());
        assert_eq!(ab.mean(), all.mean());

        // record() agrees with observe().
        let mut rec = DelaySummary::new();
        all.for_each_nanos(|ns| rec.record(SimDuration::from_nanos(ns)));
        assert_eq!(rec, ab);

        // Empty merges are identities.
        let empty = DelaySummary::new();
        assert!(empty.is_empty());
        assert_eq!(empty.min(), None);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.to_string(), "no samples");
        let mut e = empty;
        e.merge(&ab);
        assert_eq!(e, ab);
        let mut f = ab;
        f.merge(&empty);
        assert_eq!(f, ab);
        assert!(ab.to_string().contains("n=6"));
    }

    #[test]
    fn recording_after_quantile_stays_correct() {
        let mut s = DelayStats::new();
        s.record(ms(10));
        assert_eq!(s.quantile(1.0), Some(ms(10)));
        s.record(ms(5));
        assert_eq!(s.quantile(0.0), Some(ms(5)));
        assert_eq!(s.quantile(1.0), Some(ms(10)));
    }
}
