//! Packet delay statistics.

use btgs_des::SimDuration;
use core::fmt;

/// Collects per-packet delay samples and answers summary queries.
///
/// Samples are kept in full (a 530 s paper run produces 25 000 samples per
/// flow — trivially small), so percentiles are exact rather than
/// approximated.
///
/// # Examples
///
/// ```
/// use btgs_metrics::DelayStats;
/// use btgs_des::SimDuration;
///
/// let mut stats = DelayStats::new();
/// for ms in [10, 20, 30, 40] {
///     stats.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(stats.count(), 4);
/// assert_eq!(stats.max().unwrap(), SimDuration::from_millis(40));
/// assert_eq!(stats.mean().unwrap(), SimDuration::from_millis(25));
/// assert_eq!(stats.quantile(0.5).unwrap(), SimDuration::from_millis(20));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DelayStats {
    samples_ns: Vec<u64>,
    sorted: bool,
    sum_ns: u128,
}

impl DelayStats {
    /// Creates an empty collector.
    pub fn new() -> DelayStats {
        DelayStats::default()
    }

    /// Records one delay sample.
    pub fn record(&mut self, delay: SimDuration) {
        self.samples_ns.push(delay.as_nanos());
        self.sum_ns += delay.as_nanos() as u128;
        self.sorted = false;
    }

    /// Pre-sizes the sample buffer for at least `additional` further
    /// samples, so recording inside an allocation-free window does not
    /// grow the buffer.
    pub fn reserve(&mut self, additional: usize) {
        self.samples_ns.reserve(additional);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples_ns
            .iter()
            .min()
            .map(|&ns| SimDuration::from_nanos(ns))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples_ns
            .iter()
            .max()
            .map(|&ns| SimDuration::from_nanos(ns))
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples_ns.is_empty() {
            None
        } else {
            Some(SimDuration::from_nanos(
                (self.sum_ns / self.samples_ns.len() as u128) as u64,
            ))
        }
    }

    /// Exact `q`-quantile (nearest-rank method), `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.samples_ns.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples_ns.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(SimDuration::from_nanos(self.samples_ns[rank - 1]))
    }

    /// Number of samples strictly greater than `bound`.
    pub fn violations_of(&self, bound: SimDuration) -> usize {
        let b = bound.as_nanos();
        self.samples_ns.iter().filter(|&&ns| ns > b).count()
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &DelayStats) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.sum_ns += other.sum_ns;
        self.sorted = false;
    }
}

impl fmt::Display for DelayStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no samples");
        }
        let mut copy = self.clone();
        write!(
            f,
            "n={} min={} mean={} p95={} max={}",
            self.count(),
            self.min().expect("non-empty"),
            self.mean().expect("non-empty"),
            copy.quantile(0.95).expect("non-empty"),
            self.max().expect("non-empty"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_stats() {
        let mut s = DelayStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.to_string(), "no samples");
    }

    #[test]
    fn summary_statistics() {
        let mut s = DelayStats::new();
        for v in [5, 1, 9, 3, 7] {
            s.record(ms(v));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), Some(ms(1)));
        assert_eq!(s.max(), Some(ms(9)));
        assert_eq!(s.mean(), Some(ms(5)));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = DelayStats::new();
        for v in 1..=100u64 {
            s.record(ms(v));
        }
        assert_eq!(s.quantile(0.0), Some(ms(1)));
        assert_eq!(s.quantile(0.01), Some(ms(1)));
        assert_eq!(s.quantile(0.5), Some(ms(50)));
        assert_eq!(s.quantile(0.95), Some(ms(95)));
        assert_eq!(s.quantile(1.0), Some(ms(100)));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_range_checked() {
        let mut s = DelayStats::new();
        s.record(ms(1));
        let _ = s.quantile(1.5);
    }

    #[test]
    fn violations_are_strict() {
        let mut s = DelayStats::new();
        for v in [10, 20, 30] {
            s.record(ms(v));
        }
        assert_eq!(
            s.violations_of(ms(30)),
            0,
            "bound itself is not a violation"
        );
        assert_eq!(s.violations_of(ms(29)), 1);
        assert_eq!(s.violations_of(ms(9)), 3);
    }

    #[test]
    fn merge_combines() {
        let mut a = DelayStats::new();
        a.record(ms(1));
        let mut b = DelayStats::new();
        b.record(ms(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(ms(2)));
    }

    #[test]
    fn recording_after_quantile_stays_correct() {
        let mut s = DelayStats::new();
        s.record(ms(10));
        assert_eq!(s.quantile(1.0), Some(ms(10)));
        s.record(ms(5));
        assert_eq!(s.quantile(0.0), Some(ms(5)));
        assert_eq!(s.quantile(1.0), Some(ms(10)));
    }
}
