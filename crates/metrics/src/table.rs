//! Plain-text table rendering for experiment output.
//!
//! Every bench binary prints its table/figure through this module so the
//! reproduction artifacts in `EXPERIMENTS.md` share one format.

use core::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use btgs_metrics::Table;
///
/// let mut t = Table::new(vec!["flow", "rate [kbps]"]);
/// t.row(vec!["1".into(), "64.0".into()]);
/// t.row(vec!["2".into(), "128.0".into()]);
/// let s = t.render();
/// assert!(s.contains("flow"));
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_display<D: core::fmt::Display>(&mut self, cells: Vec<D>) -> &mut Table {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{h:<w$}{sep}", w = widths[i]);
        }
        for (i, &w) in widths.iter().enumerate() {
            let sep = if i + 1 == cols { "\n" } else { "  " };
            let _ = write!(out, "{:-<w$}{sep}", "", w = w);
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{cell:<w$}{sep}", w = widths[i]);
            }
        }
        out
    }
}

/// Formats a float with the given number of decimals (helper for table
/// cells).
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a  "));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("xxx"));
        // Columns align: the second column starts at the same offset.
        let col = lines[0].find("bb").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn row_display_and_len() {
        let mut t = Table::new(vec!["n"]);
        assert!(t.is_empty());
        t.row_display(vec![42]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("42"));
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(64.0, 1), "64.0");
    }
}
