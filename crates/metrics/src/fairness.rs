//! Fairness measures and the max-min fair allocation.

/// Jain's fairness index: `(sum x)^2 / (n * sum x^2)`.
///
/// Equal allocations score 1.0; the index degrades toward `1/n` as one
/// participant dominates.
///
/// # Examples
///
/// ```
/// use btgs_metrics::jain_index;
///
/// assert_eq!(jain_index(&[10.0, 10.0, 10.0]), 1.0);
/// assert!(jain_index(&[30.0, 0.0, 0.0]) < 0.34);
/// ```
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (allocations.len() as f64 * sum_sq)
}

/// Computes the max-min fair ("water-filling") allocation of `capacity`
/// among participants with the given `demands`.
///
/// Each participant receives `min(demand, fair share)`, where the fair share
/// is raised until the capacity is exhausted or every demand is met.
/// This is the division the paper's PFP performs on the bandwidth left over
/// by the Guaranteed Service schedule ("the remaining bandwidth is fairly
/// divided among the BE flows, which explains why some BE flows achieve
/// their maximum throughput as opposed to other BE flows").
///
/// # Examples
///
/// ```
/// use btgs_metrics::max_min_fair;
///
/// // Plenty of capacity: everyone gets their demand.
/// assert_eq!(max_min_fair(100.0, &[10.0, 20.0]), vec![10.0, 20.0]);
/// // Scarce capacity: small demand satisfied, the rest split evenly.
/// assert_eq!(max_min_fair(50.0, &[10.0, 40.0, 40.0]), vec![10.0, 20.0, 20.0]);
/// ```
///
/// # Panics
///
/// Panics if `capacity` is negative or any demand is negative/non-finite.
pub fn max_min_fair(capacity: f64, demands: &[f64]) -> Vec<f64> {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    for &d in demands {
        assert!(
            d.is_finite() && d >= 0.0,
            "demands must be finite and non-negative"
        );
    }
    let mut alloc = vec![0.0; demands.len()];
    let mut remaining = capacity;
    let mut unsatisfied: Vec<usize> = (0..demands.len()).collect();
    while !unsatisfied.is_empty() && remaining > 1e-12 {
        let share = remaining / unsatisfied.len() as f64;
        // Participants whose residual demand is below the share are capped
        // at their demand; their leftover is redistributed next round.
        let mut newly_satisfied = Vec::new();
        for &i in &unsatisfied {
            let residual = demands[i] - alloc[i];
            if residual <= share + 1e-12 {
                alloc[i] = demands[i];
                remaining -= residual;
                newly_satisfied.push(i);
            }
        }
        if newly_satisfied.is_empty() {
            // Everyone can absorb a full share.
            for &i in &unsatisfied {
                alloc[i] += share;
            }
            remaining = 0.0;
        } else {
            unsatisfied.retain(|i| !newly_satisfied.contains(i));
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[5.0]), 1.0);
        let idx = jain_index(&[1.0, 2.0, 3.0]);
        assert!(idx > 0.0 && idx < 1.0);
        // Totally unfair: index -> 1/n.
        let unfair = jain_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((unfair - 0.25).abs() < 1e-12);
    }

    #[test]
    fn water_filling_satisfies_everyone_with_slack() {
        let a = max_min_fair(1000.0, &[100.0, 200.0, 300.0]);
        assert_eq!(a, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn water_filling_shares_evenly_under_pressure() {
        let a = max_min_fair(90.0, &[100.0, 100.0, 100.0]);
        assert_eq!(a, vec![30.0, 30.0, 30.0]);
    }

    #[test]
    fn paper_fig5_shape() {
        // BE slave demands at max rates (slots/s, cf. DESIGN.md): the
        // smallest-demand slave saturates first as capacity shrinks.
        let demands = [177.3, 201.1, 225.0, 248.9];
        let a = max_min_fair(732.0, &demands);
        // S4 keeps its max; the others split the remainder evenly.
        assert!((a[0] - 177.3).abs() < 1e-9);
        let expected = (732.0 - 177.3) / 3.0;
        for v in &a[1..] {
            assert!((v - expected).abs() < 1e-9);
        }
        // Tighter capacity: nobody satisfied, perfectly even split.
        let b = max_min_fair(600.0, &demands);
        for v in &b {
            assert!((v - 150.0).abs() < 1e-9);
        }
    }

    #[test]
    fn allocation_never_exceeds_demand_or_capacity() {
        let demands = [5.0, 15.0, 25.0, 35.0];
        for cap in [0.0, 10.0, 40.0, 79.9, 80.0, 200.0] {
            let a = max_min_fair(cap, &demands);
            let total: f64 = a.iter().sum();
            assert!(total <= cap + 1e-9, "cap {cap}: total {total}");
            for (x, d) in a.iter().zip(demands) {
                assert!(*x <= d + 1e-9);
                assert!(*x >= 0.0);
            }
        }
    }

    #[test]
    fn zero_demand_participants_get_zero() {
        let a = max_min_fair(30.0, &[0.0, 50.0]);
        assert_eq!(a[0], 0.0);
        assert!((a[1] - 30.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btgs_des::DetRng;

    /// Water-filling must (a) never exceed capacity, (b) never exceed a
    /// demand, and (c) leave no capacity unused while someone is
    /// unsatisfied.
    #[test]
    fn max_min_fair_invariants() {
        let mut rng = DetRng::seed_from_u64(0xFA1);
        for _ in 0..512 {
            let capacity = rng.next_f64() * 10_000.0;
            let n = rng.below(12) as usize;
            let demands: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1_000.0).collect();
            let a = max_min_fair(capacity, &demands);
            let total: f64 = a.iter().sum();
            assert!(total <= capacity + 1e-6);
            let mut any_unsatisfied = false;
            for (x, d) in a.iter().zip(&demands) {
                assert!(*x <= d + 1e-6);
                assert!(*x >= -1e-12);
                if d - x > 1e-6 {
                    any_unsatisfied = true;
                }
            }
            if any_unsatisfied {
                let demand_total: f64 = demands.iter().sum();
                let used = total.min(demand_total);
                assert!(
                    (used - capacity.min(demand_total)).abs() < 1e-6,
                    "capacity left unused while demand unmet: used {used}, cap {capacity}"
                );
            }
            // Fairness: any two unsatisfied participants receive equal shares.
            for i in 0..a.len() {
                for j in 0..a.len() {
                    let i_unsat = demands[i] - a[i] > 1e-6;
                    let j_unsat = demands[j] - a[j] > 1e-6;
                    if i_unsat && j_unsat {
                        assert!((a[i] - a[j]).abs() < 1e-6);
                    }
                }
            }
        }
    }
}
