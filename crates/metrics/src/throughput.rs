//! Throughput measurement.

use btgs_des::{SimDuration, SimTime};
use core::fmt;

/// Accumulates delivered bytes and converts them to rates over a measurement
/// window.
///
/// # Examples
///
/// ```
/// use btgs_metrics::ThroughputMeter;
/// use btgs_des::SimTime;
///
/// let mut m = ThroughputMeter::new();
/// m.record(SimTime::from_millis(20), 176);
/// m.record(SimTime::from_millis(40), 176);
/// // 352 bytes over a 1-second window:
/// assert_eq!(m.bytes(), 352);
/// let rate = m.rate_bps(SimTime::from_secs(1));
/// assert!((rate - 352.0 * 8.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    packets: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
    window_start: SimTime,
}

impl ThroughputMeter {
    /// Creates a meter whose window starts at time zero.
    pub fn new() -> ThroughputMeter {
        ThroughputMeter::default()
    }

    /// Creates a meter whose window starts at `start` (deliveries before
    /// `start` should not be recorded; useful for warm-up exclusion).
    pub fn starting_at(start: SimTime) -> ThroughputMeter {
        ThroughputMeter {
            window_start: start,
            ..ThroughputMeter::default()
        }
    }

    /// Records the delivery of `bytes` at instant `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        self.bytes += bytes;
        self.packets += 1;
        if self.first.is_none() {
            self.first = Some(t);
        }
        self.last = Some(t);
    }

    /// Total bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets delivered.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// First delivery instant.
    pub fn first_delivery(&self) -> Option<SimTime> {
        self.first
    }

    /// Last delivery instant.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.last
    }

    /// Mean rate in **bits** per second over `[window_start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `end` does not lie after the window start.
    pub fn rate_bps(&self, end: SimTime) -> f64 {
        let span = end
            .checked_duration_since(self.window_start)
            .expect("window end precedes window start");
        assert!(!span.is_zero(), "measurement window must be non-empty");
        self.bytes as f64 * 8.0 / span.as_secs_f64()
    }

    /// Mean rate in **kilobits** per second over `[window_start, end]`.
    pub fn rate_kbps(&self, end: SimTime) -> f64 {
        self.rate_bps(end) / 1000.0
    }
}

impl fmt::Display for ThroughputMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B in {} packets", self.bytes, self.packets)
    }
}

/// A binned throughput series: delivered bytes aggregated into fixed-width
/// time bins, for plotting throughput over time.
#[derive(Clone, Debug)]
pub struct BinnedThroughput {
    bin_width: SimDuration,
    bins: Vec<u64>,
}

impl BinnedThroughput {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration) -> BinnedThroughput {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        BinnedThroughput {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Records `bytes` delivered at `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        let idx = (t.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes;
    }

    /// The per-bin byte counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Per-bin rates in kilobits per second.
    pub fn rates_kbps(&self) -> Vec<f64> {
        let w = self.bin_width.as_secs_f64();
        self.bins
            .iter()
            .map(|&b| b as f64 * 8.0 / w / 1000.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut m = ThroughputMeter::new();
        assert_eq!(m.bytes(), 0);
        m.record(SimTime::from_millis(1), 100);
        m.record(SimTime::from_millis(2), 50);
        assert_eq!(m.bytes(), 150);
        assert_eq!(m.packets(), 2);
        assert_eq!(m.first_delivery(), Some(SimTime::from_millis(1)));
        assert_eq!(m.last_delivery(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn rate_uses_window() {
        let mut m = ThroughputMeter::starting_at(SimTime::from_secs(1));
        m.record(SimTime::from_secs(2), 1000);
        // 1000 B over 2 s window (1s..3s) = 4000 bps.
        assert_eq!(m.rate_bps(SimTime::from_secs(3)), 4000.0);
        assert_eq!(m.rate_kbps(SimTime::from_secs(3)), 4.0);
    }

    #[test]
    fn paper_rate_sanity() {
        // A 64 kbps GS flow: 160 B mean every 20 ms over 10 s.
        let mut m = ThroughputMeter::new();
        for k in 0..500u64 {
            m.record(SimTime::from_millis(20 * k), 160);
        }
        let rate = m.rate_kbps(SimTime::from_secs(10));
        assert!((rate - 64.0).abs() < 1e-9, "{rate}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_panics() {
        let m = ThroughputMeter::new();
        let _ = m.rate_bps(SimTime::ZERO);
    }

    #[test]
    fn binned_series() {
        let mut b = BinnedThroughput::new(SimDuration::from_secs(1));
        b.record(SimTime::from_millis(100), 125);
        b.record(SimTime::from_millis(900), 125);
        b.record(SimTime::from_millis(1500), 250);
        assert_eq!(b.bins(), &[250, 250]);
        let rates = b.rates_kbps();
        assert_eq!(rates, vec![2.0, 2.0]);
    }

    #[test]
    fn binned_gap_filling() {
        let mut b = BinnedThroughput::new(SimDuration::from_secs(1));
        b.record(SimTime::from_secs(3), 10);
        assert_eq!(b.bins(), &[0, 0, 0, 10]);
    }
}
