//! Labelled (x, y) series for parameter sweeps.

use crate::table::Table;

/// A set of named y-series sharing one x-axis — the shape of every figure a
/// parameter sweep produces (e.g. the paper's Fig. 5: x = delay requirement,
/// one y-series of throughput per slave).
///
/// # Examples
///
/// ```
/// use btgs_metrics::SweepSeries;
///
/// let mut s = SweepSeries::new("Dreq [ms]");
/// s.add_series("S1");
/// s.add_series("S2");
/// s.push_x(28.0, &[64.0, 83.0]);
/// s.push_x(46.0, &[64.0, 83.2]);
/// assert_eq!(s.series("S1").unwrap(), &[64.0, 64.0]);
/// println!("{}", s.to_table().render());
/// ```
#[derive(Clone, Debug)]
pub struct SweepSeries {
    x_label: String,
    xs: Vec<f64>,
    names: Vec<String>,
    ys: Vec<Vec<f64>>,
}

impl SweepSeries {
    /// Creates an empty sweep with the given x-axis label.
    pub fn new<S: Into<String>>(x_label: S) -> SweepSeries {
        SweepSeries {
            x_label: x_label.into(),
            xs: Vec::new(),
            names: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Registers a named series. Must be called before the first `push_x`.
    ///
    /// # Panics
    ///
    /// Panics if data points were already pushed.
    pub fn add_series<S: Into<String>>(&mut self, name: S) -> &mut SweepSeries {
        assert!(
            self.xs.is_empty(),
            "register all series before pushing data"
        );
        self.names.push(name.into());
        self.ys.push(Vec::new());
        self
    }

    /// Appends one x value and the corresponding y of every series.
    ///
    /// # Panics
    ///
    /// Panics if `ys.len()` differs from the number of registered series.
    pub fn push_x(&mut self, x: f64, ys: &[f64]) {
        assert_eq!(
            ys.len(),
            self.names.len(),
            "expected {} y-values, got {}",
            self.names.len(),
            ys.len()
        );
        self.xs.push(x);
        for (col, &y) in self.ys.iter_mut().zip(ys) {
            col.push(y);
        }
    }

    /// The x values.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y values of the named series, if it exists.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.ys[idx])
    }

    /// Series names in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Renders the sweep as a table: one row per x value, one column per
    /// series.
    pub fn to_table(&self) -> Table {
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.names.iter().cloned());
        let mut t = Table::new(headers);
        for (i, &x) in self.xs.iter().enumerate() {
            let mut row = vec![format!("{x:.3}")];
            row.extend(self.ys.iter().map(|col| format!("{:.2}", col[i])));
            t.row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_reads_back() {
        let mut s = SweepSeries::new("x");
        s.add_series("a").add_series("b");
        s.push_x(1.0, &[10.0, 20.0]);
        s.push_x(2.0, &[11.0, 21.0]);
        assert_eq!(s.xs(), &[1.0, 2.0]);
        assert_eq!(s.series("a").unwrap(), &[10.0, 11.0]);
        assert_eq!(s.series("b").unwrap(), &[20.0, 21.0]);
        assert!(s.series("c").is_none());
        assert_eq!(s.names().len(), 2);
    }

    #[test]
    #[should_panic(expected = "before pushing data")]
    fn late_registration_panics() {
        let mut s = SweepSeries::new("x");
        s.add_series("a");
        s.push_x(1.0, &[1.0]);
        s.add_series("b");
    }

    #[test]
    #[should_panic(expected = "expected 1 y-values")]
    fn wrong_width_panics() {
        let mut s = SweepSeries::new("x");
        s.add_series("a");
        s.push_x(1.0, &[1.0, 2.0]);
    }

    #[test]
    fn table_rendering() {
        let mut s = SweepSeries::new("Dreq");
        s.add_series("S1");
        s.push_x(0.028, &[64.0]);
        let rendered = s.to_table().render();
        assert!(rendered.contains("Dreq"));
        assert!(rendered.contains("S1"));
        assert!(rendered.contains("0.028"));
        assert!(rendered.contains("64.00"));
    }
}
