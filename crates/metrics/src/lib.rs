//! # btgs-metrics — measurement substrate
//!
//! Statistics used by the `btgs` reproduction of *"Providing Delay
//! Guarantees in Bluetooth"* (Ait Yaiz & Heijenk, ICDCSW'03):
//!
//! * [`DelayStats`] — exact per-packet delay summaries (min/mean/quantiles/
//!   max) plus bound-violation counting, the paper's §4.2 validation metric.
//! * [`DelaySummary`] — bounded-size, exactly mergeable delay digests for
//!   streaming aggregation over arbitrarily many grid cells.
//! * [`ThroughputMeter`] / [`BinnedThroughput`] — per-flow and per-slave
//!   throughput, the y-axis of the paper's Fig. 5.
//! * [`jain_index`] / [`max_min_fair`] — fairness measures for the
//!   best-effort bandwidth division performed by PFP.
//! * [`Histogram`] — delay distributions for the extension benches.
//! * [`Table`] / [`SweepSeries`] — plain-text rendering of every table and
//!   figure the bench harness regenerates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod fairness;
mod histogram;
mod series;
mod table;
mod throughput;

pub use delay::{DelayStats, DelaySummary};
pub use fairness::{jain_index, max_min_fair};
pub use histogram::{Histogram, HistogramShapeMismatch, InvalidHistogram};
pub use series::SweepSeries;
pub use table::{fmt_f64, Table};
pub use throughput::{BinnedThroughput, ThroughputMeter};
