//! Fixed-bin histograms.

use core::fmt;

/// A histogram over `f64` values with uniform bins.
///
/// Values below the range are counted in an underflow bucket, values at or
/// above the upper edge in an overflow bucket, so no sample is ever lost.
///
/// # Examples
///
/// ```
/// use btgs_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.record(1.0);
/// h.record(3.0);
/// h.record(100.0);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.bin_counts()[0], 1); // [0,2)
/// assert_eq!(h.bin_counts()[1], 1); // [2,4)
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

/// Error constructing a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidHistogram;

impl fmt::Display for InvalidHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("histogram requires lo < hi (finite) and at least one bin")
    }
}

impl std::error::Error for InvalidHistogram {}

/// Error merging two [`Histogram`]s with different bin geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramShapeMismatch;

impl fmt::Display for HistogramShapeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("histograms must share range and bin count to merge")
    }
}

impl std::error::Error for HistogramShapeMismatch {}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is empty/non-finite or `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Histogram, InvalidHistogram> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi && bins > 0) {
            return Err(InvalidHistogram);
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records a value.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (v - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `(low, high)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Merges another histogram's counts into this one.
    ///
    /// Merging is exact and commutative (per-bin addition), so per-shard
    /// histograms combined in any completion order yield the same result —
    /// the property the streaming grid aggregator relies on. Both
    /// histograms must have identical bin geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if `other` has a different range or bin count.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), HistogramShapeMismatch> {
        if self.lo != other.lo || self.hi != other.hi || self.bins.len() != other.bins.len() {
            return Err(HistogramShapeMismatch);
        }
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        Ok(())
    }

    /// Renders a compact ASCII bar chart, one bin per line.
    pub fn ascii_chart(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:>10.4}, {hi:>10.4})  {c:>8}  {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 10).is_ok());
        assert!(Histogram::new(1.0, 1.0, 10).is_err());
        assert!(Histogram::new(2.0, 1.0, 10).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 1).is_err());
    }

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for v in [0.0, 0.5, 1.0, 9.99] {
            h.record(v);
        }
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[1], 1);
        assert_eq!(h.bin_counts()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(-0.1);
        h.record(1.0); // upper edge is exclusive
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn edges() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn merge_adds_counts_commutatively() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        for v in [1.0, 3.0, -1.0] {
            a.record(v);
        }
        for v in [3.5, 20.0] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab.bin_counts(), ba.bin_counts());
        assert_eq!(ab.underflow(), 1);
        assert_eq!(ab.overflow(), 1);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.bin_counts()[1], 2, "3.0 and 3.5 share bin [2,4)");

        // Shape mismatches are rejected.
        let mut narrow = Histogram::new(0.0, 5.0, 5).unwrap();
        assert_eq!(narrow.merge(&a), Err(HistogramShapeMismatch));
        let mut coarse = Histogram::new(0.0, 10.0, 2).unwrap();
        assert_eq!(coarse.merge(&a), Err(HistogramShapeMismatch));
        assert!(HistogramShapeMismatch.to_string().contains("bin count"));
    }

    #[test]
    fn ascii_chart_renders() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.record(0.5);
        h.record(0.6);
        h.record(1.5);
        let chart = h.ascii_chart(10);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains('#'));
    }
}
