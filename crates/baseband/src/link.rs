//! Link and logical-channel classification.

use core::fmt;

/// Direction of a flow within a piconet. Bluetooth is master-driven TDD:
/// master→slave traffic goes out in even slots, slave→master traffic is
/// returned in response to a poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Downlink: master transmits to the slave.
    MasterToSlave,
    /// Uplink: slave transmits to the master (only when polled).
    SlaveToMaster,
}

impl Direction {
    /// The opposite direction.
    pub const fn reverse(self) -> Direction {
        match self {
            Direction::MasterToSlave => Direction::SlaveToMaster,
            Direction::SlaveToMaster => Direction::MasterToSlave,
        }
    }

    /// `true` for master→slave.
    pub const fn is_downlink(self) -> bool {
        matches!(self, Direction::MasterToSlave)
    }

    /// `true` for slave→master.
    pub const fn is_uplink(self) -> bool {
        matches!(self, Direction::SlaveToMaster)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::MasterToSlave => f.write_str("M->S"),
            Direction::SlaveToMaster => f.write_str("S->M"),
        }
    }
}

/// Kind of baseband link between the master and a slave.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkType {
    /// Asynchronous Connection-Less: polled packet data.
    Acl,
    /// Synchronous Connection-Oriented: reserved-slot voice.
    Sco,
}

/// Logical traffic class carried over an ACL link.
///
/// The paper assumes logical channels that keep QoS (Guaranteed Service)
/// traffic and best-effort traffic in separate queues, such that a poll for
/// a GS flow can never result in BE data being transmitted, and vice versa.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogicalChannel {
    /// Guaranteed Service (QoS) traffic. Always has priority over BE.
    GuaranteedService,
    /// Best-effort traffic: served from the slots the QoS schedule leaves
    /// free.
    BestEffort,
}

impl LogicalChannel {
    /// `true` for the Guaranteed Service channel.
    pub const fn is_gs(self) -> bool {
        matches!(self, LogicalChannel::GuaranteedService)
    }
}

impl fmt::Display for LogicalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalChannel::GuaranteedService => f.write_str("GS"),
            LogicalChannel::BestEffort => f.write_str("BE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse_is_involutive() {
        for d in [Direction::MasterToSlave, Direction::SlaveToMaster] {
            assert_eq!(d.reverse().reverse(), d);
            assert_ne!(d.reverse(), d);
        }
        assert!(Direction::MasterToSlave.is_downlink());
        assert!(Direction::SlaveToMaster.is_uplink());
        assert!(!Direction::SlaveToMaster.is_downlink());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Direction::MasterToSlave.to_string(), "M->S");
        assert_eq!(Direction::SlaveToMaster.to_string(), "S->M");
        assert_eq!(LogicalChannel::GuaranteedService.to_string(), "GS");
        assert_eq!(LogicalChannel::BestEffort.to_string(), "BE");
    }

    #[test]
    fn channel_classification() {
        assert!(LogicalChannel::GuaranteedService.is_gs());
        assert!(!LogicalChannel::BestEffort.is_gs());
        assert!(LogicalChannel::GuaranteedService < LogicalChannel::BestEffort);
    }
}
