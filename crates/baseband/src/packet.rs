//! Baseband packet types.
//!
//! Capacities and slot occupancies follow the Bluetooth 1.0b/1.1 baseband
//! specification, which is what the paper's evaluation assumes (DH1 carries
//! up to 27 payload bytes, DH3 up to 183; the paper's segmentation policy
//! uses exactly these two types).

use crate::slot::slots;
use btgs_des::SimDuration;
use core::fmt;

/// A Bluetooth baseband packet type.
///
/// Only the properties relevant to MAC scheduling are modelled: payload
/// capacity, slot occupancy, FEC protection, and link kind (ACL vs. SCO).
///
/// # Examples
///
/// ```
/// use btgs_baseband::PacketType;
///
/// assert_eq!(PacketType::Dh3.payload_capacity(), 183);
/// assert_eq!(PacketType::Dh3.slots(), 3);
/// assert_eq!(PacketType::Poll.payload_capacity(), 0);
/// assert!(PacketType::Hv3.is_sco());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PacketType {
    /// Link-control poll packet (no payload; solicits a response).
    Poll,
    /// Empty response packet (no payload, no response required).
    Null,
    /// Medium-rate ACL data, 1 slot, 2/3 FEC, up to 17 bytes.
    Dm1,
    /// Medium-rate ACL data, 3 slots, 2/3 FEC, up to 121 bytes.
    Dm3,
    /// Medium-rate ACL data, 5 slots, 2/3 FEC, up to 224 bytes.
    Dm5,
    /// High-rate ACL data, 1 slot, no FEC, up to 27 bytes.
    Dh1,
    /// High-rate ACL data, 3 slots, no FEC, up to 183 bytes.
    Dh3,
    /// High-rate ACL data, 5 slots, no FEC, up to 339 bytes.
    Dh5,
    /// SCO voice, 1 slot, 1/3 FEC, 10 bytes every 2 slot pairs.
    Hv1,
    /// SCO voice, 1 slot, 2/3 FEC, 20 bytes every 4 slot pairs.
    Hv2,
    /// SCO voice, 1 slot, no FEC, 30 bytes every 6 slot pairs.
    Hv3,
}

impl PacketType {
    /// All ACL data-bearing packet types, in increasing capacity order.
    pub const ACL_DATA: [PacketType; 6] = [
        PacketType::Dm1,
        PacketType::Dh1,
        PacketType::Dm3,
        PacketType::Dm5,
        PacketType::Dh3,
        PacketType::Dh5,
    ];

    /// Maximum payload in bytes.
    pub const fn payload_capacity(self) -> usize {
        match self {
            PacketType::Poll | PacketType::Null => 0,
            PacketType::Dm1 => 17,
            PacketType::Dm3 => 121,
            PacketType::Dm5 => 224,
            PacketType::Dh1 => 27,
            PacketType::Dh3 => 183,
            PacketType::Dh5 => 339,
            PacketType::Hv1 => 10,
            PacketType::Hv2 => 20,
            PacketType::Hv3 => 30,
        }
    }

    /// Number of slots the packet occupies on air.
    pub const fn slots(self) -> u64 {
        match self {
            PacketType::Dm3 | PacketType::Dh3 => 3,
            PacketType::Dm5 | PacketType::Dh5 => 5,
            _ => 1,
        }
    }

    /// On-air duration.
    pub const fn duration(self) -> SimDuration {
        slots(self.slots())
    }

    /// `true` for the SCO (synchronous voice) types.
    pub const fn is_sco(self) -> bool {
        matches!(self, PacketType::Hv1 | PacketType::Hv2 | PacketType::Hv3)
    }

    /// `true` for ACL types that can carry data (excludes POLL/NULL/SCO).
    pub const fn is_acl_data(self) -> bool {
        matches!(
            self,
            PacketType::Dm1
                | PacketType::Dm3
                | PacketType::Dm5
                | PacketType::Dh1
                | PacketType::Dh3
                | PacketType::Dh5
        )
    }

    /// `true` if the payload is FEC protected (DM/HV1/HV2 types).
    pub const fn is_fec_protected(self) -> bool {
        matches!(
            self,
            PacketType::Dm1 | PacketType::Dm3 | PacketType::Dm5 | PacketType::Hv1 | PacketType::Hv2
        )
    }

    /// The SCO reservation interval `T_sco` in slots (HV1: 2, HV2: 4,
    /// HV3: 6), or `None` for non-SCO types.
    pub const fn sco_interval_slots(self) -> Option<u64> {
        match self {
            PacketType::Hv1 => Some(2),
            PacketType::Hv2 => Some(4),
            PacketType::Hv3 => Some(6),
            _ => None,
        }
    }

    /// Number of payload bits transmitted on air per payload byte carried,
    /// reflecting FEC expansion (×3 for 1/3 FEC, ×1.5 for 2/3 FEC).
    pub fn air_bits_per_payload_byte(self) -> f64 {
        match self {
            PacketType::Hv1 => 24.0,
            t if t.is_fec_protected() => 12.0,
            _ => 8.0,
        }
    }
}

impl fmt::Display for PacketType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PacketType::Poll => "POLL",
            PacketType::Null => "NULL",
            PacketType::Dm1 => "DM1",
            PacketType::Dm3 => "DM3",
            PacketType::Dm5 => "DM5",
            PacketType::Dh1 => "DH1",
            PacketType::Dh3 => "DH3",
            PacketType::Dh5 => "DH5",
            PacketType::Hv1 => "HV1",
            PacketType::Hv2 => "HV2",
            PacketType::Hv3 => "HV3",
        };
        f.write_str(name)
    }
}

/// Selects, from `allowed`, the smallest-capacity ACL data type that can
/// carry `bytes` in one packet, or `None` if none fits.
///
/// # Examples
///
/// ```
/// use btgs_baseband::{best_fit, PacketType};
///
/// let allowed = [PacketType::Dh1, PacketType::Dh3];
/// assert_eq!(best_fit(20, &allowed), Some(PacketType::Dh1));
/// assert_eq!(best_fit(144, &allowed), Some(PacketType::Dh3));
/// assert_eq!(best_fit(500, &allowed), None);
/// ```
pub fn best_fit(bytes: usize, allowed: &[PacketType]) -> Option<PacketType> {
    allowed
        .iter()
        .copied()
        .filter(|t| t.is_acl_data() && t.payload_capacity() >= bytes)
        .min_by_key(|t| (t.payload_capacity(), t.slots()))
}

/// The largest-capacity ACL data type in `allowed`, or `None` if `allowed`
/// contains no data type.
pub fn largest(allowed: &[PacketType]) -> Option<PacketType> {
    allowed
        .iter()
        .copied()
        .filter(|t| t.is_acl_data())
        .max_by_key(|t| (t.payload_capacity(), t.slots()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_the_spec() {
        assert_eq!(PacketType::Dm1.payload_capacity(), 17);
        assert_eq!(PacketType::Dm3.payload_capacity(), 121);
        assert_eq!(PacketType::Dm5.payload_capacity(), 224);
        assert_eq!(PacketType::Dh1.payload_capacity(), 27);
        assert_eq!(PacketType::Dh3.payload_capacity(), 183);
        assert_eq!(PacketType::Dh5.payload_capacity(), 339);
    }

    #[test]
    fn slot_occupancies() {
        assert_eq!(PacketType::Poll.slots(), 1);
        assert_eq!(PacketType::Null.slots(), 1);
        assert_eq!(PacketType::Dh1.slots(), 1);
        assert_eq!(PacketType::Dh3.slots(), 3);
        assert_eq!(PacketType::Dh5.slots(), 5);
        assert_eq!(PacketType::Hv3.slots(), 1);
        assert_eq!(PacketType::Dh3.duration().as_micros(), 1875);
    }

    #[test]
    fn classification() {
        assert!(PacketType::Hv1.is_sco());
        assert!(!PacketType::Dh1.is_sco());
        assert!(PacketType::Dh5.is_acl_data());
        assert!(!PacketType::Poll.is_acl_data());
        assert!(!PacketType::Null.is_acl_data());
        assert!(PacketType::Dm3.is_fec_protected());
        assert!(!PacketType::Dh3.is_fec_protected());
    }

    #[test]
    fn sco_intervals() {
        assert_eq!(PacketType::Hv1.sco_interval_slots(), Some(2));
        assert_eq!(PacketType::Hv2.sco_interval_slots(), Some(4));
        assert_eq!(PacketType::Hv3.sco_interval_slots(), Some(6));
        assert_eq!(PacketType::Dh1.sco_interval_slots(), None);
    }

    #[test]
    fn sco_types_sustain_64kbps() {
        // Each HV type carries exactly a 64 kbps voice stream.
        for t in [PacketType::Hv1, PacketType::Hv2, PacketType::Hv3] {
            let interval_slots = t.sco_interval_slots().unwrap();
            let bytes_per_second = t.payload_capacity() as f64 * (1600.0 / interval_slots as f64);
            assert!(
                (bytes_per_second - 8000.0).abs() < 1e-9,
                "{t}: {bytes_per_second}"
            );
        }
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let all = PacketType::ACL_DATA;
        assert_eq!(best_fit(10, &all), Some(PacketType::Dm1));
        assert_eq!(best_fit(27, &all), Some(PacketType::Dh1));
        assert_eq!(best_fit(28, &all), Some(PacketType::Dm3));
        assert_eq!(best_fit(339, &all), Some(PacketType::Dh5));
        assert_eq!(best_fit(340, &all), None);
        // The paper's allowed set.
        let paper = [PacketType::Dh1, PacketType::Dh3];
        assert_eq!(best_fit(0, &paper), Some(PacketType::Dh1));
        assert_eq!(best_fit(176, &paper), Some(PacketType::Dh3));
    }

    #[test]
    fn largest_picks_max_capacity() {
        assert_eq!(
            largest(&[PacketType::Dh1, PacketType::Dh3]),
            Some(PacketType::Dh3)
        );
        assert_eq!(largest(&PacketType::ACL_DATA), Some(PacketType::Dh5));
        assert_eq!(largest(&[PacketType::Poll]), None);
        assert_eq!(largest(&[]), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(PacketType::Dh3.to_string(), "DH3");
        assert_eq!(PacketType::Poll.to_string(), "POLL");
        assert_eq!(PacketType::Hv3.to_string(), "HV3");
    }
}
