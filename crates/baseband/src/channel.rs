//! Radio channel models.
//!
//! The paper's main evaluation assumes an **ideal** radio environment (no
//! transmission errors, no retransmissions). Its future-work section asks
//! for evaluation under a non-ideal radio; the [`BerChannel`] model supports
//! that extension bench: every baseband packet is lost independently with a
//! probability derived from a uniform bit error rate over the packet's
//! on-air bits.

use crate::packet::PacketType;
use btgs_des::DetRng;

/// Decides the fate of each transmitted baseband packet.
pub trait ChannelModel: Send {
    /// Returns `true` if a packet of type `ty` carrying `payload_bytes`
    /// payload bytes is delivered intact.
    fn deliver(&mut self, ty: PacketType, payload_bytes: usize) -> bool;
}

/// The ideal (error-free) channel of the paper's §3 assumptions.
///
/// # Examples
///
/// ```
/// use btgs_baseband::{ChannelModel, IdealChannel, PacketType};
///
/// let mut ch = IdealChannel;
/// assert!(ch.deliver(PacketType::Dh3, 176));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdealChannel;

impl ChannelModel for IdealChannel {
    fn deliver(&mut self, _ty: PacketType, _payload_bytes: usize) -> bool {
        true
    }
}

/// A uniform bit-error-rate channel.
///
/// A packet with `n` on-air bits survives with probability `(1-ber)^n`.
/// On-air bits include the access code and header (126 bits of overhead,
/// with the 1/3-FEC-protected 18-bit header counted post-FEC as corrected)
/// plus the FEC-expanded payload. FEC-protected payloads (DM/HV1/HV2)
/// are modelled with an effective 4× reduction in residual error rate,
/// a standard first-order approximation for (15,10) shortened Hamming
/// correction at low BER.
#[derive(Clone, Debug)]
pub struct BerChannel {
    ber: f64,
    rng: DetRng,
    transmitted: u64,
    lost: u64,
}

impl BerChannel {
    /// Creates a channel with the given bit error rate in `[0, 1)` and a
    /// deterministic RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not in `[0, 1)`.
    pub fn new(ber: f64, rng: DetRng) -> Self {
        assert!((0.0..1.0).contains(&ber), "BER must be in [0,1), got {ber}");
        BerChannel {
            ber,
            rng,
            transmitted: 0,
            lost: 0,
        }
    }

    /// The configured bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Packets pushed through this channel so far.
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Packets lost so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Probability that a packet of type `ty` with `payload_bytes` payload
    /// is delivered intact.
    pub fn delivery_probability(&self, ty: PacketType, payload_bytes: usize) -> f64 {
        // 72-bit access code + 54 on-air header bits. The header is 1/3-FEC
        // protected; treat it as fully corrected at the BERs of interest and
        // count the unprotected access code + payload.
        const OVERHEAD_BITS: f64 = 72.0;
        let effective_ber = if ty.is_fec_protected() {
            self.ber / 4.0
        } else {
            self.ber
        };
        let payload_bits = payload_bytes as f64 * 8.0;
        let bits = OVERHEAD_BITS + payload_bits;
        (1.0 - effective_ber).powf(bits)
    }
}

impl ChannelModel for BerChannel {
    fn deliver(&mut self, ty: PacketType, payload_bytes: usize) -> bool {
        self.transmitted += 1;
        let p = self.delivery_probability(ty, payload_bytes);
        let ok = self.rng.chance(p);
        if !ok {
            self.lost += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_always_delivers() {
        let mut ch = IdealChannel;
        for ty in PacketType::ACL_DATA {
            assert!(ch.deliver(ty, ty.payload_capacity()));
        }
        assert!(ch.deliver(PacketType::Poll, 0));
    }

    #[test]
    fn zero_ber_always_delivers() {
        let mut ch = BerChannel::new(0.0, DetRng::seed_from_u64(1));
        for _ in 0..1000 {
            assert!(ch.deliver(PacketType::Dh3, 183));
        }
        assert_eq!(ch.lost(), 0);
        assert_eq!(ch.transmitted(), 1000);
    }

    #[test]
    fn loss_rate_tracks_theory() {
        let ber = 1e-4;
        let mut ch = BerChannel::new(ber, DetRng::seed_from_u64(2));
        let n = 50_000;
        let mut delivered = 0u64;
        for _ in 0..n {
            if ch.deliver(PacketType::Dh3, 176) {
                delivered += 1;
            }
        }
        let p_theory = ch.delivery_probability(PacketType::Dh3, 176);
        let p_obs = delivered as f64 / n as f64;
        assert!(
            (p_obs - p_theory).abs() < 0.01,
            "observed {p_obs}, theory {p_theory}"
        );
        assert_eq!(ch.transmitted(), n);
        assert_eq!(ch.lost(), n - delivered);
    }

    #[test]
    fn bigger_packets_are_more_fragile() {
        let ch = BerChannel::new(1e-3, DetRng::seed_from_u64(3));
        let p_small = ch.delivery_probability(PacketType::Dh1, 27);
        let p_big = ch.delivery_probability(PacketType::Dh5, 339);
        assert!(p_small > p_big);
    }

    #[test]
    fn fec_helps() {
        let ch = BerChannel::new(1e-3, DetRng::seed_from_u64(4));
        let p_dm = ch.delivery_probability(PacketType::Dm1, 17);
        let p_dh = ch.delivery_probability(PacketType::Dh1, 17);
        assert!(p_dm > p_dh);
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn invalid_ber_panics() {
        let _ = BerChannel::new(1.5, DetRng::seed_from_u64(5));
    }
}
