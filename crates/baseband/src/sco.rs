//! SCO (Synchronous Connection-Oriented) link modelling.
//!
//! An SCO link reserves a slot pair every `T_sco` slots: the master sends an
//! HV packet in the reserved even slot and the slave answers with an HV
//! packet in the following odd slot, with no polling or ARQ. The paper's
//! conclusion compares its GS poller against an SCO channel: SCO achieves
//! tight delay bounds but burns its reservation whether or not voice data
//! benefits, and offers no retransmission.

use crate::packet::PacketType;
use crate::slot::{slots, SLOT_PAIR};
use btgs_des::{SimDuration, SimTime};
use core::fmt;

/// Configuration of one SCO link.
///
/// # Examples
///
/// ```
/// use btgs_baseband::{ScoLink, PacketType};
///
/// let sco = ScoLink::new(PacketType::Hv3, 0).unwrap();
/// assert_eq!(sco.interval().as_micros(), 3750);       // every 6 slots
/// assert_eq!(sco.bandwidth_bytes_per_sec(), 8000.0);  // 64 kbps voice
/// assert_eq!(sco.reserved_fraction(), 1.0 / 3.0);     // 2 of every 6 slots
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoLink {
    packet: PacketType,
    /// Offset of the link's reserved slot pair, in slot pairs, within the
    /// SCO interval (`D_sco` in the specification).
    offset_pairs: u64,
}

impl ScoLink {
    /// Creates an SCO link using the given HV packet type and slot-pair
    /// offset. Returns `None` if `packet` is not an SCO type or the offset
    /// does not fit inside the SCO interval.
    pub fn new(packet: PacketType, offset_pairs: u64) -> Option<ScoLink> {
        let interval_slots = packet.sco_interval_slots()?;
        if offset_pairs >= interval_slots / 2 {
            return None;
        }
        Some(ScoLink {
            packet,
            offset_pairs,
        })
    }

    /// The HV packet type used on this link.
    pub fn packet(self) -> PacketType {
        self.packet
    }

    /// The reservation interval `T_sco` as a duration.
    pub fn interval(self) -> SimDuration {
        slots(self.packet.sco_interval_slots().expect("SCO type"))
    }

    /// Net voice bandwidth carried (bytes per second, each direction).
    pub fn bandwidth_bytes_per_sec(self) -> f64 {
        let interval = self.interval().as_secs_f64();
        self.packet.payload_capacity() as f64 / interval
    }

    /// Fraction of all slots consumed by this link's reservations.
    pub fn reserved_fraction(self) -> f64 {
        2.0 / self.packet.sco_interval_slots().expect("SCO type") as f64
    }

    /// Start of the first reserved slot pair at or after `t`.
    pub fn next_reservation(self, t: SimTime) -> SimTime {
        let interval = self.interval();
        let offset = SLOT_PAIR * self.offset_pairs;
        // Reservations sit at k*interval + offset for k = 0,1,2,...
        if t.as_nanos() <= offset.as_nanos() {
            return SimTime::ZERO + offset;
        }
        let since_offset = t - (SimTime::ZERO + offset);
        let k = since_offset.div_ceil_duration(interval);
        SimTime::ZERO + offset + interval * k
    }

    /// `true` if an exchange occupying `[start, start + dur)` would overlap
    /// the link's next reservation.
    pub fn conflicts(self, start: SimTime, dur: SimDuration) -> bool {
        self.next_reservation(start) < start + dur
    }
}

impl fmt::Display for ScoLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SCO({} every {} slots, offset {})",
            self.packet,
            self.packet.sco_interval_slots().expect("SCO type"),
            self.offset_pairs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ScoLink::new(PacketType::Hv3, 0).is_some());
        assert!(ScoLink::new(PacketType::Hv3, 2).is_some());
        assert!(ScoLink::new(PacketType::Hv3, 3).is_none(), "offset too big");
        assert!(
            ScoLink::new(PacketType::Hv1, 1).is_none(),
            "HV1 fills every pair"
        );
        assert!(ScoLink::new(PacketType::Dh1, 0).is_none(), "not SCO");
    }

    #[test]
    fn hv_bandwidths_are_all_64kbps() {
        for t in [PacketType::Hv1, PacketType::Hv2, PacketType::Hv3] {
            let sco = ScoLink::new(t, 0).unwrap();
            assert_eq!(sco.bandwidth_bytes_per_sec(), 8000.0);
        }
    }

    #[test]
    fn reserved_fractions() {
        assert_eq!(
            ScoLink::new(PacketType::Hv1, 0)
                .unwrap()
                .reserved_fraction(),
            1.0
        );
        assert_eq!(
            ScoLink::new(PacketType::Hv2, 0)
                .unwrap()
                .reserved_fraction(),
            0.5
        );
        assert!(
            (ScoLink::new(PacketType::Hv3, 0)
                .unwrap()
                .reserved_fraction()
                - 1.0 / 3.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn next_reservation_walks_the_grid() {
        let sco = ScoLink::new(PacketType::Hv3, 0).unwrap(); // every 3.75 ms
        assert_eq!(sco.next_reservation(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(
            sco.next_reservation(SimTime::from_nanos(1)),
            SimTime::from_micros(3750)
        );
        assert_eq!(
            sco.next_reservation(SimTime::from_micros(3750)),
            SimTime::from_micros(3750)
        );
        assert_eq!(
            sco.next_reservation(SimTime::from_micros(3751)),
            SimTime::from_micros(7500)
        );
    }

    #[test]
    fn offset_shifts_the_grid() {
        let sco = ScoLink::new(PacketType::Hv3, 1).unwrap();
        assert_eq!(
            sco.next_reservation(SimTime::ZERO),
            SimTime::from_micros(1250)
        );
        assert_eq!(
            sco.next_reservation(SimTime::from_micros(1251)),
            SimTime::from_micros(5000)
        );
    }

    #[test]
    fn conflict_detection() {
        let sco = ScoLink::new(PacketType::Hv3, 0).unwrap();
        // Starting right after a reservation, a 4-slot exchange (2.5 ms)
        // finishes before the next reservation at 3.75 ms.
        let start = SimTime::from_micros(1250);
        assert!(!sco.conflicts(start, slots(4)));
        // A 6-slot exchange (3.75 ms) would run into it.
        assert!(sco.conflicts(start, slots(6)));
        // Starting exactly at a reservation always conflicts.
        assert!(sco.conflicts(SimTime::from_micros(3750), slots(1)));
    }
}
