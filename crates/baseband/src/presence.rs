//! Bridge presence: deterministic rendezvous schedules for scatternet
//! bridge slaves.
//!
//! A scatternet bridge is one radio time-sharing between piconets: while it
//! listens on piconet A's hopping sequence it is deaf to piconet B, so each
//! master must know *when* the bridge is reachable. This module models the
//! simplest deterministic rendezvous scheme — a periodic cycle with one
//! contiguous window per piconet — which is all the delay analysis needs:
//! the residence time of a relayed packet is the distance to the next
//! window start, a pure function of the schedule.
//!
//! Presence is evaluated with integer slot arithmetic only (no allocation,
//! no floating point), so pollers can consult it on their hot decision
//! path.

use crate::slot::SLOT_PAIR;
use btgs_des::{SimDuration, SimTime};
use core::fmt;

/// A periodic presence window: within every cycle of length `cycle`, the
/// device is present during `[offset, offset + len)` (and absent for the
/// rest of the cycle).
///
/// All three durations must be multiples of the master TX period
/// ([`SLOT_PAIR`]) so window edges coincide with poll decision points.
///
/// # Examples
///
/// ```
/// use btgs_baseband::PresenceWindow;
/// use btgs_des::{SimDuration, SimTime};
///
/// // In a 20 ms cycle, present during the first half.
/// let w = PresenceWindow::new(
///     SimDuration::from_millis(20),
///     SimDuration::ZERO,
///     SimDuration::from_millis(10),
/// ).unwrap();
/// assert!(w.contains(SimTime::from_millis(3)));
/// assert!(!w.contains(SimTime::from_millis(12)));
/// // Next reachable instant from inside the absence gap.
/// assert_eq!(w.next_present(SimTime::from_millis(12)), SimTime::from_millis(20));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PresenceWindow {
    cycle_ns: u64,
    offset_ns: u64,
    len_ns: u64,
}

/// Error raised for ill-formed presence windows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidPresenceWindow(pub String);

impl fmt::Display for InvalidPresenceWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid presence window: {}", self.0)
    }
}

impl std::error::Error for InvalidPresenceWindow {}

impl PresenceWindow {
    /// Creates a window of `len` starting `offset` into every `cycle`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < len`, `offset + len <= cycle`, and all
    /// three are multiples of [`SLOT_PAIR`].
    pub fn new(
        cycle: SimDuration,
        offset: SimDuration,
        len: SimDuration,
    ) -> Result<PresenceWindow, InvalidPresenceWindow> {
        let pair = SLOT_PAIR.as_nanos();
        for (name, v) in [("cycle", cycle), ("offset", offset), ("len", len)] {
            if v.as_nanos() % pair != 0 {
                return Err(InvalidPresenceWindow(format!(
                    "{name} {v} is not a multiple of the 1.25 ms slot pair"
                )));
            }
        }
        if len.is_zero() {
            return Err(InvalidPresenceWindow("window length is zero".into()));
        }
        if offset + len > cycle {
            return Err(InvalidPresenceWindow(format!(
                "window [{offset}, {offset}+{len}) overruns the {cycle} cycle"
            )));
        }
        Ok(PresenceWindow {
            cycle_ns: cycle.as_nanos(),
            offset_ns: offset.as_nanos(),
            len_ns: len.as_nanos(),
        })
    }

    /// The rendezvous cycle length.
    pub fn cycle(&self) -> SimDuration {
        SimDuration::from_nanos(self.cycle_ns)
    }

    /// The window start offset within the cycle.
    pub fn offset(&self) -> SimDuration {
        SimDuration::from_nanos(self.offset_ns)
    }

    /// The window length.
    pub fn len(&self) -> SimDuration {
        SimDuration::from_nanos(self.len_ns)
    }

    /// Always `false`: a valid window has positive length. Present for
    /// `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Phase of instant `t` within the cycle, in nanoseconds.
    #[inline]
    fn phase(&self, t: SimTime) -> u64 {
        t.as_nanos() % self.cycle_ns
    }

    /// `true` if the device is present at instant `t`.
    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        let p = self.phase(t);
        p >= self.offset_ns && p < self.offset_ns + self.len_ns
    }

    /// The earliest instant at or after `t` at which the device is present
    /// (`t` itself when already inside the window).
    #[inline]
    pub fn next_present(&self, t: SimTime) -> SimTime {
        let p = self.phase(t);
        if p >= self.offset_ns && p < self.offset_ns + self.len_ns {
            return t;
        }
        let wait = if p < self.offset_ns {
            self.offset_ns - p
        } else {
            self.cycle_ns - p + self.offset_ns
        };
        t + SimDuration::from_nanos(wait)
    }

    /// Time remaining in the current window at instant `t`, or zero when
    /// absent. An exchange with the bridge must fit into this remainder —
    /// one *ending exactly on the departure boundary* still fits (the
    /// window is end-exclusive, so the last symbol is on air while the
    /// device is still listening).
    #[inline]
    pub fn remaining(&self, t: SimTime) -> SimDuration {
        let p = self.phase(t);
        if p >= self.offset_ns && p < self.offset_ns + self.len_ns {
            SimDuration::from_nanos(self.offset_ns + self.len_ns - p)
        } else {
            SimDuration::ZERO
        }
    }

    /// The earliest instant at or after `t` at which the device is present
    /// **with at least `need` of window left** — the instant a transaction
    /// of duration `need` can start and still end at (or before) the
    /// departure boundary.
    ///
    /// When `need` exceeds the window length no instant ever qualifies;
    /// the function degrades to [`next_present`](PresenceWindow::next_present)
    /// (the best any caller can do — the transaction will be truncated by
    /// the departure cap). [`fits`](PresenceWindow::fits) degrades the
    /// same way, so a caller that waits for `next_fitting` and then
    /// re-checks `fits` never spins: the two agree on every instant.
    ///
    /// # Examples
    ///
    /// ```
    /// use btgs_baseband::PresenceWindow;
    /// use btgs_des::{SimDuration, SimTime};
    ///
    /// let w = PresenceWindow::new(
    ///     SimDuration::from_millis(20),
    ///     SimDuration::ZERO,
    ///     SimDuration::from_millis(10),
    /// ).unwrap();
    /// let need = SimDuration::from_micros(3_750);
    /// // 8 ms into the window: only 2 ms left, wait for the next cycle.
    /// assert_eq!(
    ///     w.next_fitting(SimTime::from_millis(8), need),
    ///     SimTime::from_millis(20),
    /// );
    /// // At 6.25 ms exactly `need` remains: starting now still fits.
    /// assert_eq!(
    ///     w.next_fitting(SimTime::from_micros(6_250), need),
    ///     SimTime::from_micros(6_250),
    /// );
    /// ```
    #[inline]
    pub fn next_fitting(&self, t: SimTime, need: SimDuration) -> SimTime {
        if need.as_nanos() > self.len_ns {
            return self.next_present(t);
        }
        let latest_start = self.offset_ns + self.len_ns - need.as_nanos();
        let p = self.phase(t);
        if p >= self.offset_ns && p <= latest_start {
            return t;
        }
        let wait = if p < self.offset_ns {
            self.offset_ns - p
        } else {
            self.cycle_ns - p + self.offset_ns
        };
        t + SimDuration::from_nanos(wait)
    }

    /// `true` if a transaction of duration `need` starting at `t` ends at
    /// or before the departure boundary. Must stay the point evaluation of
    /// [`next_fitting`](PresenceWindow::next_fitting) — including its
    /// degradation to bare presence when `need` exceeds the window length
    /// (such a transaction is truncated by the departure cap wherever it
    /// starts, and reporting `false` everywhere would let a
    /// wait-then-recheck caller spin forever).
    #[inline]
    pub fn fits(&self, t: SimTime, need: SimDuration) -> bool {
        if need.as_nanos() > self.len_ns {
            return self.contains(t);
        }
        self.remaining(t) >= need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn validation() {
        assert!(PresenceWindow::new(ms(20), ms(0), ms(10)).is_ok());
        // Zero length.
        assert!(PresenceWindow::new(ms(20), ms(0), ms(0)).is_err());
        // Overrun.
        assert!(PresenceWindow::new(ms(20), ms(15), ms(10)).is_err());
        // Off the slot-pair grid.
        assert!(PresenceWindow::new(
            SimDuration::from_micros(20_100),
            ms(0),
            SimDuration::from_micros(10_050)
        )
        .is_err());
    }

    #[test]
    fn containment_and_boundaries() {
        let w = PresenceWindow::new(ms(20), ms(5), ms(10)).unwrap();
        assert!(!w.contains(at(0)));
        assert!(w.contains(at(5)), "window start is inclusive");
        assert!(w.contains(at(14)));
        assert!(!w.contains(at(15)), "window end is exclusive");
        assert!(!w.contains(at(19)));
        // Periodicity.
        assert!(w.contains(at(25)));
        assert!(!w.contains(at(35)));
    }

    #[test]
    fn next_present_waits_for_the_window() {
        let w = PresenceWindow::new(ms(20), ms(5), ms(10)).unwrap();
        assert_eq!(w.next_present(at(0)), at(5));
        assert_eq!(w.next_present(at(5)), at(5), "already present");
        assert_eq!(w.next_present(at(9)), at(9));
        assert_eq!(w.next_present(at(15)), at(25), "wrap to the next cycle");
        assert_eq!(w.next_present(at(22)), at(25));
    }

    #[test]
    fn remaining_counts_down_inside_the_window() {
        let w = PresenceWindow::new(ms(20), ms(5), ms(10)).unwrap();
        assert_eq!(w.remaining(at(5)), ms(10));
        assert_eq!(w.remaining(at(12)), ms(3));
        assert_eq!(w.remaining(at(15)), ms(0));
        assert_eq!(w.remaining(at(0)), ms(0));
    }

    #[test]
    fn full_cycle_window_is_always_present() {
        let w = PresenceWindow::new(ms(20), ms(0), ms(20)).unwrap();
        for t in 0..60 {
            assert!(w.contains(at(t)));
            assert_eq!(w.next_present(at(t)), at(t));
        }
    }
}
