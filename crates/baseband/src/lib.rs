//! # btgs-baseband — Bluetooth baseband substrate
//!
//! Models the pieces of the Bluetooth 1.0b/1.1 baseband that intra-piconet
//! scheduling depends on, for the `btgs` reproduction of *"Providing Delay
//! Guarantees in Bluetooth"* (Ait Yaiz & Heijenk, ICDCSW'03):
//!
//! * [slot timing](crate::slot): 1600 slots/s of 625 µs; master transmits in
//!   even slots, the addressed slave answers in the odd slot after the
//!   downlink packet ends.
//! * [`PacketType`]: POLL/NULL, the DM/DH ACL data types with their exact
//!   payload capacities and slot occupancies, and the HV SCO voice types.
//! * [`AmAddr`]: the 3-bit active member address (up to 7 slaves).
//! * [`Direction`] / [`LogicalChannel`]: master-driven TDD directions and
//!   the QoS/best-effort logical channel split the paper assumes.
//! * [`ChannelModel`]: [`IdealChannel`] for the paper's §3 assumptions and
//!   [`BerChannel`] for the future-work, non-ideal-radio benches.
//! * [`ScoLink`]: reserved-slot voice links, used by the paper's
//!   SCO-vs-poller comparison.
//! * [`PiconetId`] / [`ScopedSlave`] / [`PresenceWindow`]: per-piconet
//!   address scoping and deterministic bridge rendezvous schedules for the
//!   scatternet layer (the paper's future-work direction).
//!
//! # Examples
//!
//! ```
//! use btgs_baseband::{best_fit, PacketType, slots};
//!
//! // The paper's evaluation allows DH1 and DH3. A 144-byte packet needs a
//! // single DH3 and its exchange (DH3 down + DH3 up) lasts 6 slots.
//! let allowed = [PacketType::Dh1, PacketType::Dh3];
//! assert_eq!(best_fit(144, &allowed), Some(PacketType::Dh3));
//! assert_eq!(slots(6).as_micros(), 3_750);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod channel;
mod link;
mod packet;
mod presence;
mod sco;
pub mod slot;

pub use address::{AmAddr, InvalidAmAddr, PiconetId, ScopedSlave};
pub use channel::{BerChannel, ChannelModel, IdealChannel};
pub use link::{Direction, LinkType, LogicalChannel};
pub use packet::{best_fit, largest, PacketType};
pub use presence::{InvalidPresenceWindow, PresenceWindow};
pub use sco::ScoLink;
pub use slot::{
    in_even_slot, next_master_tx_start, slot_index, slots, SLOT, SLOTS_PER_SECOND, SLOT_PAIR,
};
