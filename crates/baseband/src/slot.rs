//! Bluetooth slot timing.
//!
//! Bluetooth divides each second into 1600 time slots of 625 µs. The master
//! begins transmissions in even-numbered slots; the addressed slave responds
//! in the odd slot that follows the end of the master's packet. Packets
//! occupy 1, 3 or 5 slots, so a complete master↔slave exchange always spans
//! an even number of slots and the alternation is preserved automatically.

use btgs_des::{SimDuration, SimTime};

/// Duration of one Bluetooth time slot: 625 µs.
pub const SLOT: SimDuration = SimDuration::from_micros(625);

/// Duration of a master+slave slot pair: 1.25 ms.
pub const SLOT_PAIR: SimDuration = SimDuration::from_micros(1250);

/// Number of slots per second (1600).
pub const SLOTS_PER_SECOND: u64 = 1_600;

/// Returns the duration of `n` slots.
///
/// # Examples
///
/// ```
/// use btgs_baseband::slots;
/// assert_eq!(slots(6).as_micros(), 3750); // a DH3↔DH3 exchange
/// ```
pub const fn slots(n: u64) -> SimDuration {
    SimDuration::from_micros(625 * n)
}

/// The index of the slot containing instant `t` (slot 0 starts at time 0).
pub fn slot_index(t: SimTime) -> u64 {
    t.as_nanos() / SLOT.as_nanos()
}

/// `true` if `t` lies in an even-numbered slot (a master-to-slave slot).
pub fn in_even_slot(t: SimTime) -> bool {
    slot_index(t).is_multiple_of(2)
}

/// The first instant at or after `t` at which a master transmission may
/// begin, i.e. the next even slot boundary (including `t` itself when `t`
/// is exactly such a boundary).
///
/// # Examples
///
/// ```
/// use btgs_baseband::next_master_tx_start;
/// use btgs_des::SimTime;
///
/// // 1 ns into the simulation -> wait for slot 2 (the next even slot).
/// let t = next_master_tx_start(SimTime::from_nanos(1));
/// assert_eq!(t, SimTime::from_micros(1250));
/// // Exactly on an even boundary -> no wait.
/// assert_eq!(next_master_tx_start(t), t);
/// ```
pub fn next_master_tx_start(t: SimTime) -> SimTime {
    t.align_up(SLOT_PAIR)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SLOT * 2, SLOT_PAIR);
        assert_eq!(SLOT * SLOTS_PER_SECOND, SimDuration::from_secs(1));
        assert_eq!(slots(5), SimDuration::from_micros(3125));
        assert_eq!(slots(0), SimDuration::ZERO);
    }

    #[test]
    fn slot_indexing() {
        assert_eq!(slot_index(SimTime::ZERO), 0);
        assert_eq!(slot_index(SimTime::from_micros(624)), 0);
        assert_eq!(slot_index(SimTime::from_micros(625)), 1);
        assert_eq!(slot_index(SimTime::from_secs(1)), 1600);
    }

    #[test]
    fn parity() {
        assert!(in_even_slot(SimTime::ZERO));
        assert!(!in_even_slot(SimTime::from_micros(625)));
        assert!(in_even_slot(SimTime::from_micros(1250)));
    }

    #[test]
    fn master_tx_alignment() {
        assert_eq!(next_master_tx_start(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(
            next_master_tx_start(SimTime::from_micros(1)),
            SimTime::from_micros(1250)
        );
        assert_eq!(
            next_master_tx_start(SimTime::from_micros(625)),
            SimTime::from_micros(1250)
        );
        assert_eq!(
            next_master_tx_start(SimTime::from_micros(1250)),
            SimTime::from_micros(1250)
        );
        // An exchange of any legal packet pair ends on an even boundary.
        for down in [1u64, 3, 5] {
            for up in [1u64, 3, 5] {
                let end = SimTime::ZERO + slots(down) + slots(up);
                assert_eq!(next_master_tx_start(end), end, "{down}+{up}");
            }
        }
    }
}
