//! Device and member addressing.

use core::fmt;

/// Active member address: identifies one of up to seven active slaves within
/// a piconet (3-bit field in the baseband header; 0 is the broadcast
/// address, so slave addresses run 1..=7).
///
/// # Examples
///
/// ```
/// use btgs_baseband::AmAddr;
///
/// let s1 = AmAddr::new(1).unwrap();
/// assert_eq!(s1.get(), 1);
/// assert!(AmAddr::new(0).is_none());
/// assert!(AmAddr::new(8).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AmAddr(u8);

impl AmAddr {
    /// Maximum number of active slaves in a piconet.
    pub const MAX_SLAVES: usize = 7;

    /// Creates an address, returning `None` unless `1 <= addr <= 7`.
    pub const fn new(addr: u8) -> Option<AmAddr> {
        if addr >= 1 && addr <= 7 {
            Some(AmAddr(addr))
        } else {
            None
        }
    }

    /// The raw 3-bit address value (1..=7).
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Zero-based index (0..=6), convenient for array indexing.
    pub const fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Iterates over all seven possible slave addresses.
    pub fn all() -> impl Iterator<Item = AmAddr> {
        (1..=7).map(AmAddr)
    }
}

impl fmt::Debug for AmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AmAddr({})", self.0)
    }
}

impl fmt::Display for AmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl TryFrom<u8> for AmAddr {
    type Error = InvalidAmAddr;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        AmAddr::new(value).ok_or(InvalidAmAddr(value))
    }
}

/// Identifier of one piconet within a scatternet.
///
/// [`AmAddr`]s are scoped per piconet — the same 3-bit address names
/// different devices in different piconets — so scatternet-level routing
/// keys on the `(PiconetId, AmAddr)` pair (see [`ScopedSlave`]).
///
/// # Examples
///
/// ```
/// use btgs_baseband::{AmAddr, PiconetId, ScopedSlave};
///
/// let p0 = PiconetId(0);
/// let bridge = ScopedSlave::new(p0, AmAddr::new(7).unwrap());
/// assert_eq!(bridge.piconet, p0);
/// assert_eq!(bridge.to_string(), "P0/S7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PiconetId(pub u16);

impl PiconetId {
    /// Zero-based index, for addressing per-piconet arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PiconetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PiconetId({})", self.0)
    }
}

impl fmt::Display for PiconetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A slave address scoped to its piconet: the device identity a scatternet
/// routes on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScopedSlave {
    /// The piconet the address is valid in.
    pub piconet: PiconetId,
    /// The 3-bit active member address within that piconet.
    pub slave: AmAddr,
}

impl ScopedSlave {
    /// Creates a scoped slave address.
    pub const fn new(piconet: PiconetId, slave: AmAddr) -> ScopedSlave {
        ScopedSlave { piconet, slave }
    }
}

impl fmt::Display for ScopedSlave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.piconet, self.slave)
    }
}

/// Error returned when converting an out-of-range value to an [`AmAddr`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidAmAddr(pub u8);

impl fmt::Display for InvalidAmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid active member address {} (must be 1..=7)",
            self.0
        )
    }
}

impl std::error::Error for InvalidAmAddr {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        for a in 1..=7u8 {
            let addr = AmAddr::new(a).unwrap();
            assert_eq!(addr.get(), a);
            assert_eq!(addr.index(), (a - 1) as usize);
        }
        assert!(AmAddr::new(0).is_none());
        assert!(AmAddr::new(8).is_none());
        assert!(AmAddr::new(255).is_none());
    }

    #[test]
    fn try_from_reports_value() {
        assert_eq!(AmAddr::try_from(3).unwrap().get(), 3);
        let err = AmAddr::try_from(9).unwrap_err();
        assert_eq!(err, InvalidAmAddr(9));
        assert!(err.to_string().contains('9'));
    }

    #[test]
    fn all_yields_seven() {
        let v: Vec<AmAddr> = AmAddr::all().collect();
        assert_eq!(v.len(), 7);
        assert_eq!(v[0].get(), 1);
        assert_eq!(v[6].get(), 7);
    }

    #[test]
    fn display_and_debug() {
        let a = AmAddr::new(4).unwrap();
        assert_eq!(a.to_string(), "S4");
        assert_eq!(format!("{a:?}"), "AmAddr(4)");
    }
}
