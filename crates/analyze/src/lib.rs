//! # btgs-analyze — static analysis & concurrency checking
//!
//! Every PR in this workspace stakes its correctness on one invariant:
//! **reports are byte-identical** across pollers, seeds, thread counts,
//! island claim orders, queue backends and engine toggles. Nothing about
//! the type system prevents the next contributor from introducing a
//! `HashMap` iteration, an ambient clock, or a too-weak atomic ordering
//! that silently breaks it under rare schedules. This crate closes that
//! gap with two engines, both wired into CI as a tier-1 gate:
//!
//! * **Engine 1 — the determinism lint** ([`lint`]): a token-level Rust
//!   source scanner over the whole workspace enforcing repo law — no
//!   `HashMap`/`HashSet` containers on simulation/report paths without a
//!   justified waiver, no ambient time/randomness/environment reads
//!   outside the bench/CLI crates, `#![forbid(unsafe_code)]` in every sim
//!   crate (with btgs-bench's single audited exception), a machine-checked
//!   `// ord:` justification on every atomic `Ordering::*` use, and no
//!   truncating `as` casts on time/id newtype payloads. Waivers
//!   (`// analyze: allow(<rule>): <reason>`) are collected into a
//!   committed audit report ([`audit`]) the lint keeps fresh.
//!
//! * **Engine 2 — the atomics model checker** ([`model`]): a hand-rolled
//!   loom-style stateless explorer — bounded DFS over a vector-clocked
//!   memory with per-location modification orders and release/acquire
//!   visibility (sequential consistency per location plus stale-read
//!   windows) — running the **actual protocol logic** of the scatternet
//!   engine's `SpinBarrier` and atomic-cursor island claiming through the
//!   [`btgs_piconet::sync_protocol`] seam, at 2–4 modeled threads. It
//!   asserts no lost wakeup, no generation skip, publish visibility and
//!   claim-set partition under every explored schedule, and
//!   regression-proves it would catch the deliberately weakened variants.
//!
//! * **Engine 3 — the divergence bisector** ([`bisect`]): when two engine
//!   configurations that must be byte-identical ever disagree, `--bisect`
//!   runs both with full event traces over a shared corpus scenario and
//!   binary-searches the per-island rolling hashes to the *first
//!   diverging event*, printing a minimal aligned trace (island, time,
//!   event kind, hash prefix) instead of a useless whole-report diff.
//!
//! Run the static engines with `cargo run -p btgs-analyze -- --workspace`,
//! the bisector with `cargo run -p btgs-analyze -- --bisect chain --vs
//! threads=4`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod bisect;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod scenarios;
