//! The checked protocol scenarios.
//!
//! Each scenario drives the **actual** engine protocol functions —
//! [`barrier_wait`] and [`claim_next`] from
//! [`btgs_piconet::sync_protocol`] — against the model checker's memory,
//! so a pass certifies the code the scatternet engine runs, not a
//! transcription of it. The suite covers:
//!
//! * the [`SpinBarrier`](btgs_piconet) generation protocol at 2–4
//!   threads, over one or two rounds, asserting **no lost wakeup**
//!   (no schedule deadlocks), **no generation skip** (every crossing
//!   observes exactly entry + 1) and **publish visibility** (a value
//!   stored before any thread's crossing is read by every thread after
//!   it);
//! * the same barrier with the deliberately weakened
//!   [`BarrierOrderings::WEAK_SPIN`] / [`BarrierOrderings::WEAK_ARRIVE`]
//!   orderings, which the checker must *refute* — the regression tests
//!   pin those counterexamples so the checker can never silently lose
//!   its teeth;
//! * atomic-cursor island claiming ([`claim_next`]), asserting the claim
//!   sets **partition** `0..len` under every schedule, plus a
//!   deliberately racy load-then-store variant the checker must catch
//!   double-claiming;
//! * a miniature engine round (coordinator resets the cursor and
//!   publishes the round bound, workers cross the barrier, read the
//!   bound and claim) — the composition the real
//!   `run_phases_par` executes between two crossings;
//! * the staged-relay publish protocol
//!   ([`publish_staged`]/[`collect_staged`]): workers write a relay and
//!   raise their island's flag, the coordinator drains flagged islands
//!   after the crossing — plus the *early-collect* fixture (a
//!   coordinator that polls flags before the crossing, paired with
//!   [`StagedOrderings::WEAK_PUBLISH`]), which the checker must refute
//!   via a missed publish or stale staged data.

use crate::model::{check_scenario, ModelEnv, ModelReport, Scenario};
use btgs_piconet::sync_protocol::{
    barrier_wait, claim_next, collect_staged, publish_staged, BarrierOrderings, StagedOrderings,
    SyncCell,
};
use std::sync::atomic::Ordering;

/// Modeled location of the barrier's arrival count.
const COUNT: usize = 0;
/// Modeled location of the barrier's generation word.
const GEN: usize = 1;
/// First per-thread data location (one per thread follows).
const DATA: usize = 2;

/// The value thread `t` publishes before crossing in round `r`.
fn secret(r: u64, t: usize) -> u64 {
    100 * (r + 1) + t as u64
}

/// The barrier protocol under a choice of orderings.
pub struct BarrierScenario {
    /// Thread count (2–4).
    pub n: usize,
    /// Barrier crossings per thread (1–2; two rounds exercise the
    /// count-reset race between generations).
    pub rounds: u64,
    /// The orderings to run — [`BarrierOrderings::SOUND`] or a weakened
    /// fixture.
    pub ord: BarrierOrderings,
    /// Display label for the report.
    pub label: &'static str,
}

impl Scenario for BarrierScenario {
    fn name(&self) -> String {
        format!(
            "barrier[{}] n={} rounds={}",
            self.label, self.n, self.rounds
        )
    }

    fn threads(&self) -> usize {
        self.n
    }

    fn locations(&self) -> usize {
        DATA + self.n
    }

    fn run(&self, env: &ModelEnv<'_>) {
        let count = env.cell(COUNT);
        let generation = env.cell(GEN);
        let mine = env.cell(DATA + env.t);
        for r in 0..self.rounds {
            // Publish, then cross: a plain (relaxed-modeled) store the
            // barrier must make visible to everyone on the far side.
            // ord: modeled non-atomic publish — the barrier's job, not
            // the store's, is to order this.
            mine.store(secret(r, env.t), Ordering::Relaxed);
            let g = barrier_wait(env, &count, &generation, self.n as u64, &self.ord);
            env.record(g);
            for s in 0..self.n {
                if s != env.t {
                    // Adversarial stale read of the peer's publish:
                    // visibility must come from the crossing alone.
                    env.record(env.load_oldest(DATA + s));
                }
            }
        }
    }

    fn check(&self, records: &[Vec<u64>]) -> Result<(), String> {
        for (t, rec) in records.iter().enumerate() {
            let per_round = 1 + (self.n - 1);
            if rec.len() != per_round * self.rounds as usize {
                return Err(format!(
                    "t{t} recorded {} values, expected {} (incomplete crossing)",
                    rec.len(),
                    per_round * self.rounds as usize
                ));
            }
            for r in 0..self.rounds {
                let base = r as usize * per_round;
                let g = rec[base];
                if g != r + 1 {
                    return Err(format!(
                        "generation skip: t{t} cleared round {r} at generation {g}, \
                         expected {}",
                        r + 1
                    ));
                }
                let mut i = base + 1;
                for s in 0..self.n {
                    if s == t {
                        continue;
                    }
                    let got = rec[i];
                    // The crossing guarantees visibility of round r's
                    // publish; a *later* round's value is legal (the
                    // peer may already have raced ahead and overwritten
                    // its cell). Only older values betray a lost
                    // synchronisation.
                    let current_or_later = (r..self.rounds).any(|r2| got == secret(r2, s));
                    if !current_or_later {
                        return Err(format!(
                            "publish visibility: after round {r}, t{t} read t{s}'s \
                             cell as {got}, expected at least round {r}'s publish \
                             {} — the crossing did not synchronise",
                            secret(r, s)
                        ));
                    }
                    i += 1;
                }
            }
        }
        Ok(())
    }
}

/// Modeled location of the claim cursor.
const CURSOR: usize = 0;

/// Atomic-cursor island claiming: every thread drains [`claim_next`] and
/// records its claim set; the union must partition `0..len`.
pub struct ClaimScenario {
    /// Claimant thread count (2–3).
    pub threads: usize,
    /// Number of islands to claim.
    pub len: u64,
    /// `true` runs the deliberately racy load-then-store fixture instead
    /// of the real `fetch_add` protocol — the checker must find a
    /// double-claim.
    pub racy: bool,
}

/// The broken claim the checker must refute: a load-then-store
/// "increment" with a window between the read and the write.
fn claim_next_racy<C: SyncCell>(cursor: &C, len: u64) -> Option<u64> {
    // ord: deliberately racy fixture — the point is the non-atomic
    // read/write pair, not the orderings.
    let i = cursor.load(Ordering::Acquire);
    // ord: as above — racy fixture.
    cursor.store(i + 1, Ordering::Release);
    if i < len {
        Some(i)
    } else {
        None
    }
}

impl Scenario for ClaimScenario {
    fn name(&self) -> String {
        format!(
            "claim[{}] threads={} len={}",
            if self.racy {
                "racy-fixture"
            } else {
                "fetch_add"
            },
            self.threads,
            self.len
        )
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn locations(&self) -> usize {
        CURSOR + 1
    }

    fn run(&self, env: &ModelEnv<'_>) {
        let cursor = env.cell(CURSOR);
        loop {
            let claimed = if self.racy {
                claim_next_racy(&cursor, self.len)
            } else {
                // ord: Relaxed — the production ordering under test; see
                // the justification in sync_protocol::claim_next.
                claim_next(&cursor, self.len, Ordering::Relaxed)
            };
            match claimed {
                Some(i) => env.record(i),
                None => return,
            }
        }
    }

    fn check(&self, records: &[Vec<u64>]) -> Result<(), String> {
        let mut owners: Vec<Option<usize>> = vec![None; self.len as usize];
        for (t, rec) in records.iter().enumerate() {
            for &i in rec {
                let slot = owners
                    .get_mut(i as usize)
                    .ok_or_else(|| format!("t{t} claimed {i}, past len {}", self.len))?;
                if let Some(prev) = slot {
                    return Err(format!(
                        "double claim: island {i} claimed by both t{prev} and t{t}"
                    ));
                }
                *slot = Some(t);
            }
        }
        if let Some(unclaimed) = owners.iter().position(Option::is_none) {
            return Err(format!("island {unclaimed} was never claimed"));
        }
        Ok(())
    }
}

/// Modeled location of the round-bound word in [`EngineRoundScenario`]
/// (after the barrier's two words).
const BOUND: usize = 2;
/// Cursor location in the engine-round layout.
const ROUND_CURSOR: usize = 3;
/// The round bound the coordinator publishes.
const ROUND_BOUND: u64 = 7;

/// A miniature `run_phases_par` round: thread 0 is the coordinator — it
/// leaves the cursor dirty from a "previous round", resets it, publishes
/// the bound and crosses; workers cross, read the bound and claim. This
/// is the exact composition the engine relies on: the barrier crossing
/// must carry both the cursor reset and the bound to every worker.
pub struct EngineRoundScenario {
    /// Total threads including the coordinator (2–3).
    pub threads: usize,
    /// Islands to claim this round.
    pub len: u64,
}

impl Scenario for EngineRoundScenario {
    fn name(&self) -> String {
        format!("engine-round threads={} len={}", self.threads, self.len)
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn locations(&self) -> usize {
        ROUND_CURSOR + 1
    }

    fn run(&self, env: &ModelEnv<'_>) {
        let count = env.cell(COUNT);
        let generation = env.cell(GEN);
        let bound = env.cell(BOUND);
        let cursor = env.cell(ROUND_CURSOR);
        if env.t == 0 {
            // The stale cursor a previous round left behind.
            // ord: modeled coordinator-private bookkeeping store.
            cursor.store(999, Ordering::Relaxed);
            // ord: Release — the production orderings of the engine's
            // round publication (scatternet.rs run_phases_par).
            bound.store(ROUND_BOUND, Ordering::Release);
            // ord: Release — as above; the barrier crossing is what
            // actually carries it.
            cursor.store(0, Ordering::Release);
        }
        barrier_wait(
            env,
            &count,
            &generation,
            self.threads as u64,
            &BarrierOrderings::SOUND,
        );
        // ord: Acquire — the production ordering of the workers' bound
        // read (pairs with the coordinator's Release publish).
        env.record(bound.load(Ordering::Acquire));
        // ord: Relaxed — the production claim ordering under test.
        while let Some(i) = claim_next(&cursor, self.len, Ordering::Relaxed) {
            env.record(1000 + i);
        }
    }

    fn check(&self, records: &[Vec<u64>]) -> Result<(), String> {
        let mut owners: Vec<Option<usize>> = vec![None; self.len as usize];
        for (t, rec) in records.iter().enumerate() {
            let Some((&bound, claims)) = rec.split_first() else {
                return Err(format!("t{t} recorded nothing"));
            };
            if bound != ROUND_BOUND {
                return Err(format!(
                    "t{t} read round bound {bound}, expected {ROUND_BOUND} — the \
                     crossing lost the coordinator's publish"
                ));
            }
            for &c in claims {
                let i = c - 1000;
                let slot = owners
                    .get_mut(i as usize)
                    .ok_or_else(|| format!("t{t} claimed {i}, past len {}", self.len))?;
                if let Some(prev) = slot {
                    return Err(format!(
                        "double claim: island {i} claimed by both t{prev} and t{t} — \
                         the stale cursor leaked through the crossing"
                    ));
                }
                *slot = Some(t);
            }
        }
        if let Some(unclaimed) = owners.iter().position(Option::is_none) {
            return Err(format!("island {unclaimed} was never claimed"));
        }
        Ok(())
    }
}

/// First per-worker `(flag, data)` location pair in
/// [`StagedPublishScenario`] (after the barrier's two words).
const STAGED_BASE: usize = 2;

/// Modeled location of worker `w`'s staged flag (`w` in `1..n`).
fn staged_flag(worker: usize) -> usize {
    STAGED_BASE + 2 * (worker - 1)
}

/// Modeled location of worker `w`'s staged-relay data word.
fn staged_data(worker: usize) -> usize {
    STAGED_BASE + 2 * (worker - 1) + 1
}

/// The staged-relay publish protocol of `run_phases_par`: thread 0 is the
/// coordinator, threads `1..n` are workers. Each worker writes a relay
/// into its island's staging area (modeled as one data word), raises the
/// island's staged flag via [`publish_staged`], and crosses the barrier;
/// the coordinator drains every flagged island via [`collect_staged`]
/// after the crossing. The check asserts no publish is missed and no
/// collected relay is stale.
///
/// `early_collect` is the deliberately broken fixture: the coordinator
/// polls the flags *before* crossing — the tempting "skip the barrier"
/// optimisation. Paired with [`StagedOrderings::WEAK_PUBLISH`] the
/// checker must refute it (missed publish, or a raised flag with stale
/// data behind it).
pub struct StagedPublishScenario {
    /// Total threads including the coordinator (2–3).
    pub n: usize,
    /// The flag orderings — [`StagedOrderings::SOUND`] or the weakened
    /// fixture.
    pub ord: StagedOrderings,
    /// `true` collects before the barrier crossing instead of after.
    pub early_collect: bool,
    /// Display label for the report.
    pub label: &'static str,
}

impl StagedPublishScenario {
    fn collect_all(&self, env: &ModelEnv<'_>) {
        for w in 1..self.n {
            let flag = env.cell(staged_flag(w));
            if collect_staged(&flag, &self.ord) {
                env.record(1);
                // Adversarial stale read of the staged relay: the flag
                // handshake (or the crossing) must order the worker's
                // data write before this.
                env.record(env.load_oldest(staged_data(w)));
            } else {
                env.record(0);
                env.record(0);
            }
        }
    }
}

impl Scenario for StagedPublishScenario {
    fn name(&self) -> String {
        format!("staged-publish[{}] n={}", self.label, self.n)
    }

    fn threads(&self) -> usize {
        self.n
    }

    fn locations(&self) -> usize {
        STAGED_BASE + 2 * (self.n - 1)
    }

    fn run(&self, env: &ModelEnv<'_>) {
        let count = env.cell(COUNT);
        let generation = env.cell(GEN);
        if env.t == 0 {
            if self.early_collect {
                self.collect_all(env);
            }
            barrier_wait(
                env,
                &count,
                &generation,
                self.n as u64,
                &BarrierOrderings::SOUND,
            );
            if !self.early_collect {
                self.collect_all(env);
            }
        } else {
            let data = env.cell(staged_data(env.t));
            let flag = env.cell(staged_flag(env.t));
            // ord: modeled non-atomic relay write — ordering must come
            // from the flag handshake and/or the barrier crossing, not
            // from this store.
            data.store(secret(0, env.t), Ordering::Relaxed);
            publish_staged(&flag, &self.ord);
            barrier_wait(
                env,
                &count,
                &generation,
                self.n as u64,
                &BarrierOrderings::SOUND,
            );
        }
    }

    fn check(&self, records: &[Vec<u64>]) -> Result<(), String> {
        let rec = &records[0];
        let expected = 2 * (self.n - 1);
        if rec.len() != expected {
            return Err(format!(
                "coordinator recorded {} values, expected {expected}",
                rec.len()
            ));
        }
        for w in 1..self.n {
            let flag = rec[2 * (w - 1)];
            let data = rec[2 * (w - 1) + 1];
            if flag != 1 {
                return Err(format!(
                    "missed publish: coordinator collected worker t{w}'s staged \
                     flag as 0 — the relay would never be injected"
                ));
            }
            if data != secret(0, w) {
                return Err(format!(
                    "stale staged data: coordinator drained worker t{w}'s relay \
                     as {data}, expected {} — the flag was visible before the \
                     data behind it",
                    secret(0, w)
                ));
            }
        }
        Ok(())
    }
}

/// One suite entry: a report plus whether the scenario is a weakened
/// fixture the checker is *required* to refute.
pub struct SuiteEntry {
    /// The checker's report.
    pub report: ModelReport,
    /// `true` for deliberately broken fixtures: a counterexample is the
    /// passing outcome.
    pub expect_failure: bool,
    /// `true` when this configuration must be fully exhausted for the
    /// suite to count as a proof (larger configs may be budget-bounded).
    pub require_exhausted: bool,
}

impl SuiteEntry {
    /// Whether this entry's outcome is acceptable.
    pub fn ok(&self) -> bool {
        if self.expect_failure {
            self.report.failure.is_some()
        } else {
            self.report.passed() && (!self.require_exhausted || self.report.exhausted)
        }
    }
}

/// Runs the full protocol suite. `budget` bounds executions per scenario;
/// the defaults keep the whole suite under a minute on one vCPU.
pub fn run_suite(budget: u64) -> Vec<SuiteEntry> {
    let mut out = Vec::new();
    let mut push = |s: &dyn Scenario, expect_failure: bool, require_exhausted: bool, b: u64| {
        out.push(SuiteEntry {
            report: check_dyn(s, b),
            expect_failure,
            require_exhausted,
        });
    };

    // Sound barrier, exhaustively: 2 threads × 2 rounds (the count-reset
    // race between generations), 3 threads × 1 round.
    push(
        &BarrierScenario {
            n: 2,
            rounds: 2,
            ord: BarrierOrderings::SOUND,
            label: "sound",
        },
        false,
        true,
        budget,
    );
    push(
        &BarrierScenario {
            n: 3,
            rounds: 1,
            ord: BarrierOrderings::SOUND,
            label: "sound",
        },
        false,
        true,
        budget,
    );
    // 4 threads: bounded — the tree is large; the budget cap is reported
    // honestly via `exhausted`.
    push(
        &BarrierScenario {
            n: 4,
            rounds: 1,
            ord: BarrierOrderings::SOUND,
            label: "sound",
        },
        false,
        false,
        budget,
    );
    // The weakened fixtures: the checker must refute both.
    push(
        &BarrierScenario {
            n: 2,
            rounds: 1,
            ord: BarrierOrderings::WEAK_SPIN,
            label: "weak-spin",
        },
        true,
        false,
        budget,
    );
    push(
        &BarrierScenario {
            n: 2,
            rounds: 1,
            ord: BarrierOrderings::WEAK_ARRIVE,
            label: "weak-arrive",
        },
        true,
        false,
        budget,
    );
    // Claiming: real protocol exhaustively at 2 and 3 threads, racy
    // fixture refuted.
    push(
        &ClaimScenario {
            threads: 2,
            len: 3,
            racy: false,
        },
        false,
        true,
        budget,
    );
    push(
        &ClaimScenario {
            threads: 3,
            len: 4,
            racy: false,
        },
        false,
        true,
        budget,
    );
    push(
        &ClaimScenario {
            threads: 2,
            len: 2,
            racy: true,
        },
        true,
        false,
        budget,
    );
    // The composed engine round.
    push(
        &EngineRoundScenario { threads: 2, len: 3 },
        false,
        true,
        budget,
    );
    push(
        &EngineRoundScenario { threads: 3, len: 3 },
        false,
        false,
        budget,
    );
    // The staged-relay publish protocol: sound stage → barrier → drain
    // exhaustively at 2 and 3 threads; the early-collect + weak-publish
    // fixture must be refuted.
    push(
        &StagedPublishScenario {
            n: 2,
            ord: StagedOrderings::SOUND,
            early_collect: false,
            label: "sound",
        },
        false,
        true,
        budget,
    );
    push(
        &StagedPublishScenario {
            n: 3,
            ord: StagedOrderings::SOUND,
            early_collect: false,
            label: "sound",
        },
        false,
        true,
        budget,
    );
    push(
        &StagedPublishScenario {
            n: 2,
            ord: StagedOrderings::WEAK_PUBLISH,
            early_collect: true,
            label: "early-collect+weak-publish",
        },
        true,
        false,
        budget,
    );
    out
}

/// Object-safe shim: [`check_scenario`] is generic; the suite builder
/// iterates heterogeneous scenarios.
fn check_dyn(s: &dyn Scenario, budget: u64) -> ModelReport {
    struct Dyn<'a>(&'a dyn Scenario);
    impl Scenario for Dyn<'_> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn threads(&self) -> usize {
            self.0.threads()
        }
        fn locations(&self) -> usize {
            self.0.locations()
        }
        fn run(&self, env: &ModelEnv<'_>) {
            self.0.run(env)
        }
        fn check(&self, records: &[Vec<u64>]) -> Result<(), String> {
            self.0.check(records)
        }
    }
    check_scenario(&Dyn(s), budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_barrier_two_threads_exhaustive() {
        let report = check_scenario(
            &BarrierScenario {
                n: 2,
                rounds: 2,
                ord: BarrierOrderings::SOUND,
                label: "sound",
            },
            200_000,
        );
        assert!(report.passed(), "{:?}", report.failure);
        assert!(report.exhausted, "2×2 must be fully explored");
    }

    #[test]
    fn weak_spin_barrier_is_refuted() {
        let report = check_scenario(
            &BarrierScenario {
                n: 2,
                rounds: 1,
                ord: BarrierOrderings::WEAK_SPIN,
                label: "weak-spin",
            },
            200_000,
        );
        let failure = report.failure.expect("relaxed spin loads must be refuted");
        assert!(
            failure.reason.contains("publish visibility"),
            "unexpected counterexample: {}",
            failure.reason
        );
        assert!(
            !failure.trace.is_empty(),
            "counterexample must carry a trace"
        );
    }

    #[test]
    fn sound_staged_publish_two_threads_exhaustive() {
        let report = check_scenario(
            &StagedPublishScenario {
                n: 2,
                ord: StagedOrderings::SOUND,
                early_collect: false,
                label: "sound",
            },
            200_000,
        );
        assert!(report.passed(), "{:?}", report.failure);
        assert!(
            report.exhausted,
            "staged-publish n=2 must be fully explored"
        );
    }

    #[test]
    fn sound_staged_publish_three_threads_exhaustive() {
        let report = check_scenario(
            &StagedPublishScenario {
                n: 3,
                ord: StagedOrderings::SOUND,
                early_collect: false,
                label: "sound",
            },
            200_000,
        );
        assert!(report.passed(), "{:?}", report.failure);
        assert!(
            report.exhausted,
            "staged-publish n=3 must be fully explored"
        );
    }

    #[test]
    fn early_collect_weak_publish_is_refuted() {
        let report = check_scenario(
            &StagedPublishScenario {
                n: 2,
                ord: StagedOrderings::WEAK_PUBLISH,
                early_collect: true,
                label: "early-collect+weak-publish",
            },
            200_000,
        );
        let failure = report
            .failure
            .expect("collecting before the crossing must be refuted");
        assert!(
            failure.reason.contains("missed publish") || failure.reason.contains("stale staged"),
            "unexpected counterexample: {}",
            failure.reason
        );
    }

    #[test]
    fn racy_claim_is_refuted() {
        let report = check_scenario(
            &ClaimScenario {
                threads: 2,
                len: 2,
                racy: true,
            },
            200_000,
        );
        let failure = report
            .failure
            .expect("load-then-store claiming must be refuted");
        assert!(
            failure.reason.contains("double claim") || failure.reason.contains("never claimed"),
            "unexpected counterexample: {}",
            failure.reason
        );
    }
}
