//! A line-oriented Rust token classifier.
//!
//! The lint does not need a full parser — it needs to know, per line,
//! which characters are *code* and which are *comment*, with string and
//! character literal contents blanked out (so a rule token inside a string
//! never fires, and a waiver inside a string never waives). This module
//! provides exactly that: a small state machine over the raw source that
//! understands line comments, nested block comments, string literals
//! (including raw strings with `#` fences and byte strings), character
//! literals, and the `'lifetime` ambiguity.

/// One source line, split into its code and comment halves.
#[derive(Clone, Debug, Default)]
pub struct SourceLine {
    /// The line's code characters, with string/char literal contents
    /// replaced by spaces. Comment characters are absent.
    pub code: String,
    /// The line's comment text (contents of `//`, `///`, `//!` and block
    /// comments), concatenated when a line carries several.
    pub comment: String,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth rides along.
    BlockComment(u32),
    Str,
    /// Raw string with this many `#` fence characters.
    RawStr(u32),
    Char,
}

/// Splits `src` into per-line code/comment views.
pub fn split_lines(src: &str) -> Vec<SourceLine> {
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut cur = SourceLine::default();
    let mut state = State::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                        // Swallow doc-comment markers so `///` and `//!`
                        // read the same as `//`.
                        while matches!(chars.get(i), Some('/') | Some('!')) {
                            i += 1;
                        }
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    '"' => {
                        cur.code.push('"');
                        state = State::Str;
                        i += 1;
                        continue;
                    }
                    'r' | 'b' => {
                        // Raw / byte string starts: r", r#", br", b"...
                        // but NOT raw identifiers (r#ident).
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = (c == 'r' || chars.get(i + 1) == Some(&'r'))
                            && chars.get(j) == Some(&'"');
                        let is_plain_byte_str =
                            c == 'b' && hashes == 0 && chars.get(i + 1) == Some(&'"');
                        if is_raw && !ident_tail(chars.get(i.wrapping_sub(1)).copied(), i == 0) {
                            for _ in i..=j {
                                cur.code.push(' ');
                            }
                            cur.code.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                        if is_plain_byte_str
                            && !ident_tail(chars.get(i.wrapping_sub(1)).copied(), i == 0)
                        {
                            cur.code.push(' ');
                            cur.code.push('"');
                            state = State::Str;
                            i += 2;
                            continue;
                        }
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a char literal closes
                        // within a few characters; a lifetime never has a
                        // closing quote right after its identifier.
                        if chars.get(i + 1) == Some(&'\\')
                            || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''))
                        {
                            cur.code.push('\'');
                            state = State::Char;
                            i += 1;
                            continue;
                        }
                        cur.code.push('\'');
                        i += 1;
                        continue;
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        for _ in 0..hashes {
                            cur.code.push(' ');
                        }
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    cur.code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        cur.code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() || state != State::Code {
        lines.push(cur);
    }
    lines
}

/// `true` when the previous character continues an identifier, which makes
/// a following `r"`/`b"` part of a name (e.g. `var"` cannot occur, but
/// `attr` ∋ `r` followed by `"` inside macros could); `at_start` guards the
/// index-0 wraparound.
fn ident_tail(prev: Option<char>, at_start: bool) -> bool {
    if at_start {
        return false;
    }
    prev.is_some_and(|p| p.is_alphanumeric() || p == '_')
}

/// `true` if `code` contains `token` as a whole word (not embedded in a
/// longer identifier).
pub fn has_token(code: &str, token: &str) -> bool {
    find_token(code, token).is_some()
}

/// Byte offset of the first whole-word occurrence of `token` in `code`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_comments_split() {
        let src = "let x = \"HashMap::new()\"; // real HashMap note\nlet y = 1;\n";
        let lines = split_lines(src);
        assert_eq!(lines.len(), 2);
        assert!(!has_token(&lines[0].code, "HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert_eq!(lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) { let r = r#\"Instant::now()\"#; let c = 'x'; }\n";
        let lines = split_lines(src);
        assert!(!has_token(&lines[0].code, "Instant"));
        assert!(lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still */ b\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[0].comment.contains("two"));
    }

    #[test]
    fn token_word_boundaries() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("let MyHashMapLike = 1;", "HashMap"));
        assert!(has_token("HashMap::new()", "HashMap"));
    }
}
