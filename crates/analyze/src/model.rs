//! Engine 2 — the atomics model checker.
//!
//! A hand-rolled, dependency-free, loom-style *stateless* model checker:
//! it runs a small concurrent scenario to completion over and over, each
//! time steering every scheduling and memory-visibility decision down a
//! different branch of a bounded DFS, until the decision tree is exhausted
//! (or an execution budget is hit — reported honestly either way).
//!
//! ## What is modeled
//!
//! Memory is a set of word-sized locations, each with a *modification
//! order* (the list of stores in the order they executed — sequential
//! consistency per location) and per-store **vector clocks** implementing
//! release/acquire synchronisation with C++20-style release sequences
//! (read-modify-writes extend a release sequence; plain relaxed stores
//! break it). A load may read any store between its *coherence floor*
//! (the newest store already observed by the thread, or overwritten by a
//! store that happens-before the load) and the newest store — so
//! `Relaxed` loads see genuine stale-value windows, and a missing
//! `Acquire` manifests as a visible stale read rather than being papered
//! over by the host's strong (x86) hardware.
//!
//! ## How scenarios execute
//!
//! Scenario threads are **real OS threads running the real protocol
//! code** (`btgs_piconet::sync_protocol`) against [`ModelCell`]s: every
//! atomic access parks the thread on a turnstile (a mutex + condvars) and
//! the controller — the single test thread — grants one parked thread at
//! a time, consulting the DFS decision script for which thread runs and,
//! on loads with several readable stores, which store it reads. Spin
//! loops are modeled as [`SyncEnv::wait_until_changed`] *await points*:
//! an awaiting thread is only schedulable when a store with a different
//! value is readable, which soundly prunes the unbounded no-progress spin
//! iterations that would otherwise blow up the tree (re-reading the same
//! initial store is a no-op: barrier generations are strictly
//! increasing, so equal value ⇒ same store ⇒ nothing learned).
//!
//! A schedule where every unfinished thread sits at an await point with
//! nothing readable is a **lost wakeup** (deadlock) and is reported as a
//! counterexample with the full interleaving trace, as is any scenario
//! assertion failure. On either, remaining threads are *drained*: every
//! subsequent operation completes immediately against the newest store so
//! the real protocol code unwinds normally off its own control flow.

use btgs_piconet::sync_protocol::{SyncCell, SyncEnv};
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex};

/// A vector clock over scenario threads.
#[derive(Clone, Debug, Default, PartialEq)]
struct VClock(Vec<u64>);

impl VClock {
    fn zero(n: usize) -> VClock {
        VClock(vec![0; n])
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise ≤ — the happens-before test against an observer clock.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// One store in a location's modification order.
#[derive(Clone, Debug)]
struct Store {
    value: u64,
    /// The writer's clock at the store — the happens-before witness.
    writer_clock: VClock,
    /// What an acquire read of this store joins: the head release store's
    /// clock, carried through read-modify-writes (the release sequence),
    /// or zero if a relaxed store broke the sequence.
    release_clock: VClock,
}

/// Helpers naming the acquire/release halves once, so every ordering
/// test in the checker reads as intent.
// ord: classifier over `Ordering` values, not an atomic access — the
// checker treats SeqCst as AcqRel plus newest-store-only loads.
fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

// ord: classifier over `Ordering` values, not an atomic access.
fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// The modeled memory: per-location modification orders plus per-thread
/// clocks and coherence floors.
#[derive(Debug)]
struct Memory {
    locs: Vec<Vec<Store>>,
    clocks: Vec<VClock>,
    /// `seen[t][loc]`: newest modification-order index thread `t` has
    /// observed at `loc` — its read-coherence floor.
    seen: Vec<Vec<usize>>,
}

impl Memory {
    fn new(threads: usize, locations: usize) -> Memory {
        Memory {
            locs: (0..locations)
                .map(|_| {
                    vec![Store {
                        value: 0,
                        writer_clock: VClock::zero(threads),
                        release_clock: VClock::zero(threads),
                    }]
                })
                .collect(),
            clocks: vec![VClock::zero(threads); threads],
            seen: vec![vec![0; locations]; threads],
        }
    }

    /// Modification-order indices thread `t` may read at `loc`: from the
    /// coherence floor (already-seen ∨ happens-before-overwritten) to the
    /// newest store. SeqCst loads read only the newest (the checker's
    /// conservative SC approximation).
    fn candidates(&self, t: usize, loc: usize, order: Ordering) -> Vec<usize> {
        let stores = &self.locs[loc];
        let newest = stores.len() - 1;
        // ord: classifier — SeqCst loads take the conservative SC path.
        if order == Ordering::SeqCst {
            return vec![newest];
        }
        let mut floor = self.seen[t][loc];
        for (m, s) in stores.iter().enumerate().skip(floor + 1) {
            if s.writer_clock.le(&self.clocks[t]) {
                floor = m;
            }
        }
        (floor..=newest).collect()
    }

    /// Executes a load of modification-order index `k`.
    fn read_at(&mut self, t: usize, loc: usize, k: usize, order: Ordering) -> u64 {
        self.clocks[t].0[t] += 1;
        self.seen[t][loc] = self.seen[t][loc].max(k);
        let store = self.locs[loc][k].clone();
        if is_acquire(order) {
            self.clocks[t].join(&store.release_clock);
        }
        store.value
    }

    /// Executes a plain store (appends to the modification order; a
    /// relaxed store heads no release sequence).
    fn write(&mut self, t: usize, loc: usize, value: u64, order: Ordering) {
        self.clocks[t].0[t] += 1;
        let release_clock = if is_release(order) {
            self.clocks[t].clone()
        } else {
            VClock::zero(self.clocks.len())
        };
        self.locs[loc].push(Store {
            value,
            writer_clock: self.clocks[t].clone(),
            release_clock,
        });
        self.seen[t][loc] = self.locs[loc].len() - 1;
    }

    /// Executes a read-modify-write: reads the *newest* store (RMW
    /// atomicity), optionally acquires, appends the new value extending
    /// the location's release sequence.
    fn rmw_add(&mut self, t: usize, loc: usize, add: u64, order: Ordering) -> u64 {
        let newest = self.locs[loc].len() - 1;
        let prev = self.locs[loc][newest].clone();
        self.clocks[t].0[t] += 1;
        self.seen[t][loc] = newest;
        if is_acquire(order) {
            self.clocks[t].join(&prev.release_clock);
        }
        let mut release_clock = prev.release_clock.clone();
        if is_release(order) {
            release_clock.join(&self.clocks[t]);
        }
        self.locs[loc].push(Store {
            value: prev.value.wrapping_add(add),
            writer_clock: self.clocks[t].clone(),
            release_clock,
        });
        self.seen[t][loc] = self.locs[loc].len() - 1;
        prev.value
    }

    fn newest_value(&self, loc: usize) -> u64 {
        self.locs[loc].last().expect("locations never empty").value
    }
}

/// The operation a parked thread wants to perform.
#[derive(Clone, Copy, Debug)]
enum Op {
    Load(usize, Ordering),
    /// Adversarial relaxed load: reads the *oldest* store coherence
    /// allows, without a DFS branch — the pessimal choice for publish
    /// visibility checks (anything newer can only be more correct), and
    /// a large state-space reduction for scenarios that assert it.
    LoadStale(usize),
    Store(usize, u64, Ordering),
    RmwAdd(usize, u64, Ordering),
    /// Spin-wait: a load that only runs once a readable store differs
    /// from `.1`.
    Await(usize, u64, Ordering),
}

impl Op {
    fn loc(&self) -> usize {
        match *self {
            Op::Load(l, _)
            | Op::LoadStale(l)
            | Op::Store(l, _, _)
            | Op::RmwAdd(l, _, _)
            | Op::Await(l, _, _) => l,
        }
    }
}

/// One DFS decision: which alternative was taken, out of how many.
#[derive(Clone, Copy, Debug)]
struct Choice {
    taken: usize,
    total: usize,
}

/// The shared execution state behind the turnstile.
struct SchedState {
    mem: Memory,
    /// Per thread: the op it is parked on, when parked.
    parked: Vec<Option<Op>>,
    finished: Vec<bool>,
    granted: Option<usize>,
    abort: bool,
    /// Set at lost-wakeup detection: which threads were spin-waiting
    /// where (captured before abort-drain clears the park set).
    deadlock: Option<String>,
    /// The DFS decision script: a replayed prefix plus first-choice
    /// extensions recorded this execution.
    script: Vec<Choice>,
    pos: usize,
    trace: Vec<String>,
    records: Vec<Vec<u64>>,
}

impl SchedState {
    /// Takes the scripted decision at this point, or records and takes
    /// alternative 0. Forced moves (`total == 1`) are not recorded, which
    /// keeps the tree to genuine branch points.
    fn decide(&mut self, total: usize) -> usize {
        debug_assert!(total >= 1);
        if total == 1 {
            return 0;
        }
        let pos = self.pos;
        self.pos += 1;
        if pos < self.script.len() {
            self.script[pos].taken
        } else {
            self.script.push(Choice { taken: 0, total });
            0
        }
    }
}

/// The turnstile shared by the controller and the scenario threads.
pub struct Shared {
    state: Mutex<SchedState>,
    worker_cv: Condvar,
    ctrl_cv: Condvar,
    threads: usize,
}

/// A scenario thread's handle to the checker: yields at every atomic
/// access. `t` is the thread's index.
pub struct ModelEnv<'a> {
    shared: &'a Shared,
    /// This thread's index in the scenario.
    pub t: usize,
}

/// One modeled atomic word, as handed to the protocol code.
pub struct ModelCell<'a> {
    shared: &'a Shared,
    t: usize,
    loc: usize,
}

impl<'a> ModelEnv<'a> {
    /// A handle to modeled location `loc` for this thread.
    pub fn cell(&self, loc: usize) -> ModelCell<'a> {
        ModelCell {
            shared: self.shared,
            t: self.t,
            loc,
        }
    }

    /// Adversarial stale read of `loc`: a relaxed load of the *oldest*
    /// store coherence allows, taken without a DFS branch. Use for
    /// publish-visibility assertions — if the oldest readable store is
    /// the published value, every readable store is.
    pub fn load_oldest(&self, loc: usize) -> u64 {
        self.shared.step(self.t, Op::LoadStale(loc))
    }

    /// Appends `value` to this thread's observation log (consumed by
    /// [`Scenario::check`] after the execution).
    pub fn record(&self, value: u64) {
        let mut st = self.shared.state.lock().expect("checker state poisoned");
        let t = self.t;
        st.records[t].push(value);
    }
}

impl SyncCell for ModelCell<'_> {
    fn load(&self, order: Ordering) -> u64 {
        self.shared.step(self.t, Op::Load(self.loc, order))
    }

    fn store(&self, value: u64, order: Ordering) {
        self.shared.step(self.t, Op::Store(self.loc, value, order));
    }

    fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.shared.step(self.t, Op::RmwAdd(self.loc, value, order))
    }
}

impl<'a> SyncEnv for ModelEnv<'a> {
    type Cell = ModelCell<'a>;

    fn wait_until_changed(&self, cell: &ModelCell<'a>, old: u64, order: Ordering) -> u64 {
        self.shared.step(self.t, Op::Await(cell.loc, old, order))
    }
}

impl Shared {
    /// Parks thread `t` at `op`, waits for the controller's grant,
    /// executes the op against the modeled memory, and returns its value.
    /// Under abort-drain, executes immediately against the newest store.
    fn step(&self, t: usize, op: Op) -> u64 {
        let mut st = self.state.lock().expect("checker state poisoned");
        if st.abort {
            return drain_exec(&mut st, t, op);
        }
        // A stale read commutes with every other thread's operation: its
        // coherence floor depends only on the reading thread's own seen
        // set and clock, neither of which another thread can move. So it
        // is not a scheduling point — executing it immediately explores
        // the same outcomes with a much smaller tree.
        if matches!(op, Op::LoadStale(_)) {
            return exec(&mut st, t, op);
        }
        st.parked[t] = Some(op);
        self.ctrl_cv.notify_all();
        loop {
            if st.abort {
                st.parked[t] = None;
                return drain_exec(&mut st, t, op);
            }
            if st.granted == Some(t) {
                break;
            }
            st = self.worker_cv.wait(st).expect("checker state poisoned");
        }
        st.granted = None;
        st.parked[t] = None;
        let value = exec(&mut st, t, op);
        self.ctrl_cv.notify_all();
        value
    }

    fn mark_finished(&self, t: usize) {
        let mut st = self.state.lock().expect("checker state poisoned");
        st.finished[t] = true;
        self.ctrl_cv.notify_all();
    }
}

/// Executes a granted op, consuming read-choice decisions and recording
/// the trace.
fn exec(st: &mut SchedState, t: usize, op: Op) -> u64 {
    match op {
        Op::Load(loc, order) => {
            let cands = st.mem.candidates(t, loc, order);
            let pick = cands[st.decide(cands.len())];
            let newest = st.mem.locs[loc].len() - 1;
            let v = st.mem.read_at(t, loc, pick, order);
            st.trace.push(format!(
                "t{t} load       L{loc} {order:?} -> {v}{}",
                stale_tag(pick, newest)
            ));
            v
        }
        Op::LoadStale(loc) => {
            // ord: modeled relaxed read — the op's defined semantics.
            let cands = st.mem.candidates(t, loc, Ordering::Relaxed);
            let pick = cands[0];
            let newest = st.mem.locs[loc].len() - 1;
            // ord: as above — modeled relaxed read.
            let v = st.mem.read_at(t, loc, pick, Ordering::Relaxed);
            st.trace.push(format!(
                "t{t} load-stale L{loc} -> {v}{}",
                stale_tag(pick, newest)
            ));
            v
        }
        Op::Store(loc, value, order) => {
            st.mem.write(t, loc, value, order);
            st.trace
                .push(format!("t{t} store      L{loc} {order:?} <- {value}"));
            value
        }
        Op::RmwAdd(loc, add, order) => {
            let prev = st.mem.rmw_add(t, loc, add, order);
            st.trace.push(format!(
                "t{t} fetch_add  L{loc} {order:?} {prev} -> {}",
                prev.wrapping_add(add)
            ));
            prev
        }
        Op::Await(loc, old, order) => {
            let cands: Vec<usize> = st
                .mem
                .candidates(t, loc, order)
                .into_iter()
                .filter(|&k| st.mem.locs[loc][k].value != old)
                .collect();
            debug_assert!(!cands.is_empty(), "granted a disabled await");
            let pick = cands[st.decide(cands.len())];
            let newest = st.mem.locs[loc].len() - 1;
            let v = st.mem.read_at(t, loc, pick, order);
            st.trace.push(format!(
                "t{t} spin-read  L{loc} {order:?} {old} -> {v}{}",
                stale_tag(pick, newest)
            ));
            v
        }
    }
}

fn stale_tag(pick: usize, newest: usize) -> String {
    if pick < newest {
        format!("  [stale: store {pick} of {newest}]")
    } else {
        String::new()
    }
}

/// Executes an op during abort-drain: immediately, against the newest
/// store, consuming no decisions. Awaits return a differing value so spin
/// loops in the drained protocol code terminate.
fn drain_exec(st: &mut SchedState, t: usize, op: Op) -> u64 {
    match op {
        Op::Load(loc, _) | Op::LoadStale(loc) => st.mem.newest_value(loc),
        // ord: drain path — the modeled ordering no longer matters, the
        // execution is already condemned; Relaxed bookkeeping only.
        Op::Store(loc, value, _) => {
            st.mem.write(t, loc, value, Ordering::Relaxed);
            value
        }
        // ord: drain path, as above.
        Op::RmwAdd(loc, add, _) => st.mem.rmw_add(t, loc, add, Ordering::Relaxed),
        Op::Await(loc, old, _) => {
            let v = st.mem.newest_value(loc);
            if v != old {
                v
            } else {
                old.wrapping_add(1)
            }
        }
    }
}

/// A concurrent protocol scenario under check.
///
/// Implementations drive the *real* protocol functions from
/// [`btgs_piconet::sync_protocol`] against modeled cells; the checker
/// explores every bounded interleaving and read choice.
pub trait Scenario: Sync {
    /// Display name, used in reports and CI output.
    fn name(&self) -> String;
    /// Number of scenario threads (2–4 keeps exploration tractable).
    fn threads(&self) -> usize;
    /// Number of modeled memory locations (all initially zero).
    fn locations(&self) -> usize;
    /// The per-thread body; `env.t` is the thread index.
    fn run(&self, env: &ModelEnv<'_>);
    /// Post-execution assertions over the per-thread observation logs.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated property; the checker
    /// reports it with the execution's interleaving trace.
    fn check(&self, records: &[Vec<u64>]) -> Result<(), String>;
}

/// A counterexample: the violated property plus the exact interleaving.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong (assertion text, or the lost-wakeup report).
    pub reason: String,
    /// The schedule that produced it, one line per executed operation.
    pub trace: Vec<String>,
}

/// The outcome of checking one scenario.
#[derive(Clone, Debug)]
pub struct ModelReport {
    /// The scenario's display name.
    pub scenario: String,
    /// Executions explored.
    pub executions: u64,
    /// Whether the decision tree was fully exhausted (`false` means the
    /// execution budget cut exploration short — a pass is then *bounded*,
    /// not a proof).
    pub exhausted: bool,
    /// The first counterexample found, if any.
    pub failure: Option<Failure>,
}

impl ModelReport {
    /// `true` when no counterexample was found.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Explores `scenario` under every schedule and read choice, up to
/// `budget` executions. Stops at the first counterexample.
pub fn check_scenario<S: Scenario>(scenario: &S, budget: u64) -> ModelReport {
    let threads = scenario.threads();
    assert!(
        (2..=4).contains(&threads),
        "model scenarios run 2-4 threads"
    );
    let mut script: Vec<Choice> = Vec::new();
    let mut executions = 0u64;
    let mut exhausted = false;
    let mut failure = None;

    while executions < budget {
        executions += 1;
        let shared = Shared {
            state: Mutex::new(SchedState {
                mem: Memory::new(threads, scenario.locations()),
                parked: vec![None; threads],
                finished: vec![false; threads],
                granted: None,
                abort: false,
                deadlock: None,
                script: std::mem::take(&mut script),
                pos: 0,
                trace: Vec::new(),
                records: vec![Vec::new(); threads],
            }),
            worker_cv: Condvar::new(),
            ctrl_cv: Condvar::new(),
            threads,
        };

        run_one(&shared, scenario);

        let st = shared.state.into_inner().expect("checker state poisoned");
        script = st.script;
        if let Some(spinning) = st.deadlock {
            failure = Some(Failure {
                reason: format!(
                    "lost wakeup: every unfinished thread is spin-waiting on a value \
                     no readable store provides ({spinning})"
                ),
                trace: st.trace,
            });
            break;
        }
        if let Err(reason) = scenario.check(&st.records) {
            failure = Some(Failure {
                reason,
                trace: st.trace,
            });
            break;
        }

        // Backtrack: advance the deepest decision with untried
        // alternatives; drop exhausted tail decisions.
        loop {
            match script.last_mut() {
                None => {
                    exhausted = true;
                    break;
                }
                Some(c) if c.taken + 1 < c.total => {
                    c.taken += 1;
                    break;
                }
                Some(_) => {
                    script.pop();
                }
            }
        }
        if exhausted {
            break;
        }
    }

    ModelReport {
        scenario: scenario.name(),
        executions,
        exhausted,
        failure,
    }
}

/// Runs one execution: spawns the scenario threads, schedules them to
/// completion (or deadlock → abort-drain).
fn run_one<S: Scenario>(shared: &Shared, scenario: &S) {
    std::thread::scope(|scope| {
        for t in 0..shared.threads {
            let shared = &*shared;
            scope.spawn(move || {
                let env = ModelEnv { shared, t };
                scenario.run(&env);
                shared.mark_finished(t);
            });
        }

        let mut st = shared.state.lock().expect("checker state poisoned");
        loop {
            // Wait until the machine is quiescent: nothing granted, every
            // thread parked or finished.
            while st.granted.is_some()
                || (0..shared.threads).any(|t| st.parked[t].is_none() && !st.finished[t])
            {
                st = shared.ctrl_cv.wait(st).expect("checker state poisoned");
            }
            if (0..shared.threads).all(|t| st.finished[t]) {
                break;
            }
            // Runnable = parked threads whose op is enabled (awaits need a
            // readable differing store).
            let runnable: Vec<usize> = (0..shared.threads)
                .filter(|&t| match st.parked[t] {
                    Some(Op::Await(loc, old, order)) => st
                        .mem
                        .candidates(t, loc, order)
                        .iter()
                        .any(|&k| st.mem.locs[loc][k].value != old),
                    Some(_) => true,
                    None => false,
                })
                .collect();
            if runnable.is_empty() {
                let spinning: Vec<String> = (0..shared.threads)
                    .filter_map(|t| st.parked[t].map(|o| format!("t{t} at L{}", o.loc())))
                    .collect();
                st.deadlock = Some(spinning.join(", "));
                st.abort = true;
                shared.worker_cv.notify_all();
                continue;
            }
            let pick = runnable[st.decide(runnable.len())];
            st.granted = Some(pick);
            shared.worker_cv.notify_all();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each store 1 to their own flag (Release) and load the
    /// other's (Acquire): classic store-buffer litmus. Under the modeled
    /// memory both-threads-see-zero IS allowed (no SeqCst fence), so the
    /// checker must find the 0/0 outcome.
    struct StoreBuffer;

    impl Scenario for StoreBuffer {
        fn name(&self) -> String {
            "store-buffer litmus".into()
        }
        fn threads(&self) -> usize {
            2
        }
        fn locations(&self) -> usize {
            2
        }
        fn run(&self, env: &ModelEnv<'_>) {
            let mine = env.cell(env.t);
            let theirs = env.cell(1 - env.t);
            // ord: modeled accesses — the orderings under test.
            mine.store(1, Ordering::Release);
            // ord: as above — modeled access.
            env.record(theirs.load(Ordering::Acquire));
        }
        fn check(&self, records: &[Vec<u64>]) -> Result<(), String> {
            if records[0] == [0] && records[1] == [0] {
                Err("found the relaxed outcome".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn store_buffer_relaxation_is_explored() {
        let report = check_scenario(&StoreBuffer, 10_000);
        let failure = report.failure.expect("0/0 outcome must be explored");
        assert!(failure.reason.contains("relaxed outcome"));
        assert!(!failure.trace.is_empty());
    }

    /// Message passing: t0 writes data then sets a flag (Release); t1
    /// spins on the flag (Acquire) then reads data. Must ALWAYS see the
    /// datum — and exploration must terminate despite the spin loop.
    struct MessagePassing {
        flag_order: Ordering,
    }

    impl Scenario for MessagePassing {
        fn name(&self) -> String {
            "message passing".into()
        }
        fn threads(&self) -> usize {
            2
        }
        fn locations(&self) -> usize {
            2
        }
        fn run(&self, env: &ModelEnv<'_>) {
            const DATA: usize = 0;
            const FLAG: usize = 1;
            if env.t == 0 {
                // ord: modeled accesses — the orderings under test.
                env.cell(DATA).store(42, Ordering::Relaxed);
                // ord: as above.
                env.cell(FLAG).store(1, Ordering::Release);
            } else {
                let flag = env.cell(FLAG);
                env.wait_until_changed(&flag, 0, self.flag_order);
                // ord: as above.
                env.record(env.cell(DATA).load(Ordering::Relaxed));
            }
        }
        fn check(&self, records: &[Vec<u64>]) -> Result<(), String> {
            if records[1] == [42] {
                Ok(())
            } else {
                Err(format!("reader saw {:?}, not the published 42", records[1]))
            }
        }
    }

    #[test]
    fn message_passing_acquire_is_sound() {
        // ord: modeled access under test.
        let report = check_scenario(
            &MessagePassing {
                flag_order: Ordering::Acquire,
            },
            10_000,
        );
        assert!(report.passed(), "{:?}", report.failure);
        assert!(report.exhausted, "spin modeling must keep the tree finite");
    }

    #[test]
    fn message_passing_relaxed_is_caught() {
        // ord: modeled access under test — deliberately too weak.
        let report = check_scenario(
            &MessagePassing {
                flag_order: Ordering::Relaxed,
            },
            10_000,
        );
        let failure = report
            .failure
            .expect("relaxed flag read must lose the datum");
        assert!(failure.reason.contains("not the published 42"));
    }
}
