//! `btgs-analyze` — the workspace's determinism gate.
//!
//! ```text
//! cargo run -p btgs-analyze -- --workspace            # lint + model suite
//! cargo run -p btgs-analyze -- --workspace --lint     # lint only
//! cargo run -p btgs-analyze -- --workspace --model    # model suite only
//!     --budget N      executions per model scenario (default 60000)
//!     --write-audit   regenerate ANALYZE_WAIVERS.md in place
//!     --root PATH     workspace root (default: this crate's ../..)
//!     -D              deny: nonzero exit on any finding (the default;
//!                     accepted explicitly for CI clarity)
//!
//! cargo run --release -p btgs-analyze -- --bisect TOPO   # divergence bisector
//!     TOPO            corpus scenario: chain | ring | mesh
//!     --vs SPEC       suspect configuration vs the 1-thread baseline
//!                     (default threads=4), e.g. threads=4|widening=off|shuffle=7
//!     --horizon-ms N  simulated horizon in milliseconds (default 1500)
//! ```
//!
//! Exit status 0 means: zero unwaivered lint findings, a fresh committed
//! waiver audit, every sound protocol scenario passed (exhaustively where
//! required) and every weakened fixture was refuted with a counterexample —
//! and, in bisect mode, byte-identical event traces (a found divergence
//! exits 1 after printing the minimal aligned trace).

use btgs_analyze::{audit, bisect, lint, scenarios};
use btgs_des::SimTime;
use std::path::PathBuf;

/// Default executions per model scenario — sized so the whole suite stays
/// well under a minute on a single vCPU (each execution is a handful of
/// turnstile handoffs).
const DEFAULT_BUDGET: u64 = 60_000;

fn main() {
    let mut run_lint = false;
    let mut run_model = false;
    let mut write_audit = false;
    let mut budget = DEFAULT_BUDGET;
    let mut root: Option<PathBuf> = None;
    let mut bisect_topology: Option<String> = None;
    let mut bisect_vs = String::from("threads=4");
    let mut horizon_ms: u64 = 1500;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--workspace" => {}
            "--lint" => run_lint = true,
            "--model" => run_model = true,
            "--write-audit" => write_audit = true,
            "-D" | "--deny" => {}
            "--budget" => {
                budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--budget takes a positive integer"));
            }
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--root takes a path")),
                ));
            }
            "--bisect" => {
                bisect_topology = Some(
                    args.next()
                        .unwrap_or_else(|| die("--bisect takes a topology: chain | ring | mesh")),
                );
            }
            "--vs" => {
                bisect_vs = args
                    .next()
                    .unwrap_or_else(|| die("--vs takes a spec like threads=4|widening=off"));
            }
            "--horizon-ms" => {
                horizon_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--horizon-ms takes a positive integer"));
            }
            other => die(&format!(
                "unknown flag {other}; known: --workspace --lint --model --budget N \
                 --write-audit --root PATH -D --bisect TOPO --vs SPEC --horizon-ms N"
            )),
        }
    }
    if !run_lint && !run_model && bisect_topology.is_none() {
        run_lint = true;
        run_model = true;
    }
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("crates/analyze sits two levels under the workspace root")
            .to_path_buf()
    });

    let mut failed = false;

    if run_lint {
        println!("== determinism lint ==");
        let mut result = match lint::scan_workspace(&root) {
            Ok(r) => r,
            Err(e) => die(&format!("scan failed under {}: {e}", root.display())),
        };
        if write_audit {
            let rendered = audit::render(&result.waivers);
            if let Err(e) = std::fs::write(root.join(audit::AUDIT_PATH), rendered) {
                die(&format!("cannot write {}: {e}", audit::AUDIT_PATH));
            }
            println!(
                "wrote {} ({} waivers)",
                audit::AUDIT_PATH,
                result.waivers.len()
            );
        }
        if let Some(stale) = audit::check_fresh(&root, &result.waivers) {
            result.findings.push(stale);
        }
        for f in &result.findings {
            println!("deny: {f}");
        }
        println!(
            "{} files scanned, {} waivers in force, {} finding(s)",
            result.files_scanned,
            result.waivers.len(),
            result.findings.len()
        );
        failed |= !result.findings.is_empty();
        println!();
    }

    if run_model {
        println!("== atomics model checker ==");
        for entry in scenarios::run_suite(budget) {
            let r = &entry.report;
            let ok = entry.ok();
            let outcome = match (&r.failure, entry.expect_failure) {
                (Some(_), true) => "refuted (as required)",
                (None, false) if r.exhausted => "passed, exhaustive",
                (None, false) => "passed, budget-bounded",
                (Some(_), false) => "FAILED",
                (None, true) => "MISSED (fixture not refuted)",
            };
            println!(
                "{} {:<40} {:>8} executions  {}",
                if ok { "ok  " } else { "FAIL" },
                r.scenario,
                r.executions,
                outcome
            );
            if let Some(failure) = &r.failure {
                if entry.expect_failure {
                    println!("     counterexample: {}", failure.reason);
                } else {
                    println!("     violated: {}", failure.reason);
                    println!("     interleaving:");
                    for line in &failure.trace {
                        println!("       {line}");
                    }
                }
            }
            failed |= !ok;
        }
    }

    if let Some(topology) = bisect_topology {
        println!("== divergence bisector ==");
        let spec = bisect::BisectSpec::parse(&bisect_vs).unwrap_or_else(|e| die(&e));
        println!(
            "{topology}: baseline (1 thread, default engine) vs `{bisect_vs}`, \
             horizon {horizon_ms} ms"
        );
        let report = bisect::run_bisect(&topology, &spec, SimTime::from_millis(horizon_ms))
            .unwrap_or_else(|e| die(&e));
        print!("{}", report.render());
        failed |= report.divergence.is_some();
    }

    if failed {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("btgs-analyze: {msg}");
    std::process::exit(2)
}
