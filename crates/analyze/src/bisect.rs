//! Engine 3 — the divergence bisector CLI surface.
//!
//! When two engine configurations that must be byte-identical (threads
//! 1 vs N, widening on/off, a shuffled claim order) ever disagree, a
//! failing report-digest assertion says *that* they diverged, not
//! *where*. This module wraps [`btgs_piconet::bisect_runs`] — full-trace
//! rolling hashes per island, binary search to the first diverging event,
//! a re-run capturing the aligned context window — behind the
//! `btgs-analyze -- --bisect` flag, running both configurations over a
//! scenario from the shared [`sanitizer_corpus`] (the same trio the
//! mutation-corpus tests and CI's sanitized smoke prove the engine on).
//!
//! The baseline is always the default engine at one thread; `--vs`
//! specifies the configuration under suspicion, e.g.
//! `threads=4|widening=off|shuffle=7`.

use btgs_core::{sanitizer_corpus, PollerKind, ScatternetScenario, ScatternetScenarioParams};
use btgs_des::SimTime;
use btgs_piconet::{bisect_runs, BisectReport, ScatternetSim};

/// One engine configuration of a bisection, parsed from a `--vs` spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BisectSpec {
    /// Worker thread count (`threads=N`).
    pub threads: usize,
    /// Adaptive phase widening (`widening=on|off`).
    pub widening: bool,
    /// Phase batching / idle skipping (`batching=on|off`).
    pub batching: bool,
    /// Deterministic island claim-order shuffle (`shuffle=SEED`).
    pub shuffle: Option<u64>,
}

impl BisectSpec {
    /// The reference configuration every bisection compares against: the
    /// default engine on one thread.
    pub fn baseline() -> BisectSpec {
        BisectSpec {
            threads: 1,
            widening: true,
            batching: true,
            shuffle: None,
        }
    }

    /// Parses a `|`-separated spec: `threads=4`, `widening=off`,
    /// `batching=off`, `shuffle=7`, in any combination. Unset knobs keep
    /// the baseline defaults.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<BisectSpec, String> {
        let mut out = BisectSpec::baseline();
        for clause in spec.split('|').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("bad --vs clause `{clause}`: expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let on_off = |v: &str| match v {
                "on" => Ok(true),
                "off" => Ok(false),
                other => Err(format!("bad value `{other}` for {key}: expected on|off")),
            };
            match key {
                "threads" => {
                    out.threads = value
                        .parse()
                        .map_err(|_| format!("bad thread count `{value}`"))?;
                }
                "widening" => out.widening = on_off(value)?,
                "batching" => out.batching = on_off(value)?,
                "shuffle" => {
                    out.shuffle = Some(value.parse().map_err(|_| format!("bad seed `{value}`"))?);
                }
                other => {
                    return Err(format!(
                        "unknown --vs knob `{other}`; known: threads widening batching shuffle"
                    ))
                }
            }
        }
        Ok(out)
    }

    fn build(self, params: ScatternetScenarioParams) -> ScatternetSim {
        let mut sim = ScatternetScenario::build(params)
            .simulator(PollerKind::PfpGs)
            .expect("corpus scenario builds")
            .with_threads(self.threads)
            .with_phase_widening(self.widening)
            .with_phase_batching(self.batching);
        if let Some(seed) = self.shuffle {
            sim = sim.with_island_shuffle(seed);
        }
        sim
    }
}

/// Events of context captured on each side of a divergence.
const CONTEXT_EVENTS: u64 = 8;

/// Runs the bisection: baseline engine vs `vs` over the corpus scenario
/// named `topology` (`chain`, `ring` or `mesh`), both to `horizon`.
///
/// # Errors
///
/// Returns a description for an unknown topology label, and propagates
/// engine run errors.
pub fn run_bisect(
    topology: &str,
    vs: &BisectSpec,
    horizon: SimTime,
) -> Result<BisectReport, String> {
    let corpus = sanitizer_corpus();
    let (_, params) = corpus
        .iter()
        .find(|(label, _)| *label == topology)
        .ok_or_else(|| {
            let known: Vec<&str> = corpus.iter().map(|(l, _)| *l).collect();
            format!(
                "unknown topology `{topology}`; corpus has: {}",
                known.join(" ")
            )
        })?;
    let params = *params;
    bisect_runs(
        &|| BisectSpec::baseline().build(params),
        &|| vs.build(params),
        horizon,
        CONTEXT_EVENTS,
    )
    .map_err(|e| format!("bisection run failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let spec = BisectSpec::parse("threads=4|widening=off|shuffle=7").unwrap();
        assert_eq!(
            spec,
            BisectSpec {
                threads: 4,
                widening: false,
                batching: true,
                shuffle: Some(7),
            }
        );
        assert_eq!(BisectSpec::parse("").unwrap(), BisectSpec::baseline());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(BisectSpec::parse("threads")
            .unwrap_err()
            .contains("key=value"));
        assert!(BisectSpec::parse("widening=maybe")
            .unwrap_err()
            .contains("on|off"));
        assert!(BisectSpec::parse("turbo=on")
            .unwrap_err()
            .contains("unknown"));
    }

    #[test]
    fn unknown_topology_is_an_error() {
        let err = run_bisect(
            "torus",
            &BisectSpec::parse("threads=2").unwrap(),
            SimTime::from_millis(100),
        )
        .unwrap_err();
        assert!(err.contains("chain"), "{err}");
    }

    #[test]
    fn clean_engine_configurations_do_not_diverge() {
        let report = run_bisect(
            "chain",
            &BisectSpec::parse("threads=2|shuffle=3").unwrap(),
            SimTime::from_millis(900),
        )
        .unwrap();
        assert!(
            report.divergence.is_none(),
            "clean configurations diverged:\n{}",
            report.render()
        );
        assert_eq!(report.events_a, report.events_b);
        assert!(report.events_a > 0, "traces must carry events");
    }
}
