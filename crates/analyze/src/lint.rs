//! Engine 1 — the determinism lint.
//!
//! A token-level scanner over every `.rs` file in the workspace, enforcing
//! the repo's determinism law (see the crate docs for the rule list). It
//! works on the [`lexer`](crate::lexer)'s per-line code/comment split, so
//! tokens inside strings never fire and waivers inside strings never
//! waive.
//!
//! ## Waivers
//!
//! A rule is waived with a comment of the form
//!
//! ```text
//! // analyze: allow(<rule>): <reason>
//! ```
//!
//! which covers code on the same line, or — when the waiver line carries no
//! code — the first following line that does (intervening comment-only
//! lines extend the reason text). Every waiver must carry a non-empty
//! reason; unknown rule names and waivers that match nothing are themselves
//! findings, so the committed audit report can never drift silently.

use crate::lexer::{self, SourceLine};
use std::fmt;
use std::path::Path;

/// The lint's rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` on a simulation/report path. Keyed lookup is
    /// waivable; anything that could iterate in hash order is not.
    HashIter,
    /// Ambient clock reads (`Instant::now`, `SystemTime`) outside the
    /// bench/CLI crates.
    AmbientTime,
    /// Ambient randomness (`thread_rng`, `OsRng`, entropy seeding) outside
    /// the bench/CLI crates.
    AmbientRng,
    /// Ambient environment reads (`env::var`, `env::args`, …) outside the
    /// bench/CLI crates.
    AmbientEnv,
    /// The workspace unsafe policy: `#![forbid(unsafe_code)]` in every
    /// crate except btgs-bench, which carries `#![deny(unsafe_code)]` plus
    /// exactly one `#[allow(unsafe_code)]` on its `GlobalAlloc` impl.
    UnsafePolicy,
    /// An atomic `Ordering::*` use without a machine-checked `// ord:`
    /// justification, or a `use` import of `Ordering` variants (which
    /// would hide use sites from this rule).
    OrdComment,
    /// A truncating `as` cast on a time/id newtype payload (`.0 as u8`,
    /// `as_nanos() as u32`, …) that could silently wrap.
    NewtypeCast,
    /// An unstable sort (`sort_unstable*`, `select_nth_unstable*`) or a
    /// float-keyed comparator (`.partial_cmp(...)` at a call site) on a
    /// simulation path. Unstable sorts reorder equal keys
    /// implementation-dependently, so any duplicate-key sort feeding a
    /// report is a byte-identity hazard; `partial_cmp` on floats silently
    /// turns NaN into `Equal`-by-unwrap or panics. Waivable when the key is
    /// provably unique; `total_cmp` is the sanctioned float comparator.
    UnstableSort,
    /// An observability hook call (`.on_event(`, `.after_event(`, …) on a
    /// simulation path without an `if I` const-generic guard within the
    /// preceding window of code lines. The seam contract: every
    /// instrumentation call site monomorphises away in the `I = false`
    /// engine; an unguarded call would tax the default path. Waivable at
    /// delegation sites that are themselves reached only through guarded
    /// callers.
    ObsSeam,
    /// A malformed or unused waiver comment.
    Waiver,
}

impl Rule {
    /// The rule's waiver name, as written in `analyze: allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::AmbientTime => "ambient-time",
            Rule::AmbientRng => "ambient-rng",
            Rule::AmbientEnv => "ambient-env",
            Rule::UnsafePolicy => "unsafe-policy",
            Rule::OrdComment => "ord-comment",
            Rule::NewtypeCast => "newtype-cast",
            Rule::UnstableSort => "unstable-sort",
            Rule::ObsSeam => "obs-seam",
            Rule::Waiver => "waiver",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "hash-iter" => Some(Rule::HashIter),
            "ambient-time" => Some(Rule::AmbientTime),
            "ambient-rng" => Some(Rule::AmbientRng),
            "ambient-env" => Some(Rule::AmbientEnv),
            "unsafe-policy" => Some(Rule::UnsafePolicy),
            "ord-comment" => Some(Rule::OrdComment),
            "newtype-cast" => Some(Rule::NewtypeCast),
            "unstable-sort" => Some(Rule::UnstableSort),
            "obs-seam" => Some(Rule::ObsSeam),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description, including the offending code.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One accepted waiver, destined for the audit report.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The waived rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The justification text (continuation comment lines folded in).
    pub reason: String,
}

/// The outcome of scanning one file or the whole workspace.
#[derive(Clone, Debug, Default)]
pub struct ScanResult {
    /// Findings that no waiver covered.
    pub findings: Vec<Finding>,
    /// Waivers that covered at least one would-be finding.
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// How a file relates to the determinism rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Simulation/report path: all rules apply.
    Sim,
    /// Bench/CLI harness (the btgs-bench and btgs-analyze crates, plus
    /// `src/bin/`, `tests/`, `examples/`, `benches/` and `build.rs`
    /// anywhere): ambient time/rng/env are allowed; the container and
    /// ordering rules still apply.
    Harness,
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("crates/bench/")
        || rel.starts_with("crates/analyze/")
        || rel.starts_with("crates/obs/")
    {
        return FileClass::Harness;
    }
    let harness_dir = rel
        .split('/')
        .any(|c| matches!(c, "bin" | "tests" | "examples" | "benches"));
    if harness_dir || rel.ends_with("build.rs") || rel.ends_with("/main.rs") || rel == "main.rs" {
        return FileClass::Harness;
    }
    FileClass::Sim
}

/// Ambient-clock tokens. `Duration` is fine — it is data, not a clock.
const TIME_TOKENS: [&str; 2] = ["Instant", "SystemTime"];
/// Ambient-randomness tokens (no rand dependency exists in-tree; these
/// catch one being smuggled in).
const RNG_TOKENS: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "getrandom"];
/// Ambient-environment call forms (substring matches on code text).
const ENV_CALLS: [&str; 6] = [
    "env::var",
    "env::var_os",
    "env::vars",
    "env::args",
    "env::args_os",
    "env::temp_dir",
];
/// The atomic `Ordering` variants. `cmp::Ordering`'s `Less`/`Equal`/
/// `Greater` never fire.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
/// Truncating cast forms on newtype payloads and durations.
const CAST_FORMS: [&str; 12] = [
    ".0 as u8",
    ".0 as u16",
    ".0 as u32",
    "as_nanos() as u8",
    "as_nanos() as u16",
    "as_nanos() as u32",
    "as_micros() as u8",
    "as_micros() as u16",
    "as_micros() as u32",
    "as_millis() as u8",
    "as_millis() as u16",
    "as_millis() as u32",
];

/// How many lines above an `Ordering::*` use an `// ord:` comment still
/// counts as annotating it (justification blocks sit above multi-line
/// statements).
const ORD_COMMENT_WINDOW: usize = 6;

/// Observability hook call forms. Dot-prefixed so `fn on_event(…)`
/// definitions never fire — only call sites do.
const OBS_HOOK_CALLS: [&str; 5] = [
    ".on_event(",
    ".on_scheduled_relay(",
    ".on_staged(",
    ".after_event(",
    ".on_island_ran(",
];

/// How many *code* lines above an observability hook call (the call line
/// included) an `if I` guard still counts — guards open a block, then
/// destructure/compute, then call.
const OBS_SEAM_WINDOW: usize = 5;

/// The one file allowed to carry `#[allow(unsafe_code)]`, per policy.
const UNSAFE_ALLOW_SITE: &str = "crates/bench/src/alloc_counter.rs";

struct PendingWaiver {
    rule: Option<Rule>,
    raw_rule: String,
    line: usize,
    reason: String,
    /// 0-based line the waiver covers.
    covers: usize,
    used: bool,
}

/// Scans one file's source. Returns unwaivered findings plus the waivers
/// that matched something.
pub fn scan_source(rel: &str, src: &str) -> (Vec<Finding>, Vec<Waiver>) {
    let class = classify(rel);
    let lines = lexer::split_lines(src);
    let mut raw_findings: Vec<Finding> = Vec::new();
    let mut waivers = collect_waivers(rel, &lines);
    let test_region = test_regions(&lines);

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = line.code.as_str();
        let trimmed = code.trim();
        if trimmed.is_empty() {
            continue;
        }
        let in_test = test_region[i];
        let is_use = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");

        // hash-iter: any HashMap/HashSet token on a sim line that is not an
        // import. Imports are harmless; every declaration, construction or
        // method call site must be waived or converted.
        if class == FileClass::Sim && !is_use && !in_test {
            for token in ["HashMap", "HashSet"] {
                if lexer::has_token(code, token) {
                    raw_findings.push(Finding {
                        rule: Rule::HashIter,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "`{token}` on a simulation path — iteration order is \
                             nondeterministic; use BTreeMap/dense arrays, or waive a \
                             lookup-only use: `{trimmed}`"
                        ),
                    });
                    break;
                }
            }
        }

        // Ambient rules: sim files only, and never inside #[cfg(test)] —
        // test scaffolding may read clocks/env without touching a report.
        if class == FileClass::Sim && !in_test {
            if !is_use {
                for token in TIME_TOKENS {
                    if lexer::has_token(code, token) {
                        raw_findings.push(Finding {
                            rule: Rule::AmbientTime,
                            file: rel.to_string(),
                            line: lineno,
                            message: format!(
                                "ambient clock `{token}` on a simulation path — all time \
                                 must flow from SimTime: `{trimmed}`"
                            ),
                        });
                        break;
                    }
                }
            }
            for token in RNG_TOKENS {
                if lexer::has_token(code, token) {
                    raw_findings.push(Finding {
                        rule: Rule::AmbientRng,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "ambient randomness `{token}` — all randomness must flow \
                             from the seeded root RNG: `{trimmed}`"
                        ),
                    });
                    break;
                }
            }
            for call in ENV_CALLS {
                if code.contains(call) {
                    raw_findings.push(Finding {
                        rule: Rule::AmbientEnv,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "ambient environment read `{call}` on a simulation path: \
                             `{trimmed}`"
                        ),
                    });
                    break;
                }
            }
        }

        // ord-comment: every atomic Ordering::* use needs an `ord:`
        // justification on the line or within the preceding window.
        if let Some(pos) = code.find("Ordering::") {
            let after = &code[pos + "Ordering::".len()..];
            let is_atomic = ATOMIC_ORDERINGS
                .iter()
                .any(|v| after.starts_with(v) || after.starts_with('{'));
            if is_atomic {
                if is_use {
                    raw_findings.push(Finding {
                        rule: Rule::OrdComment,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "importing `Ordering` variants hides use sites from the \
                             ord-comment rule — import `Ordering` itself and write \
                             `Ordering::X` at each use: `{trimmed}`"
                        ),
                    });
                } else {
                    let annotated = (i.saturating_sub(ORD_COMMENT_WINDOW)..=i)
                        .any(|j| lines[j].comment.contains("ord:"));
                    if !annotated {
                        raw_findings.push(Finding {
                            rule: Rule::OrdComment,
                            file: rel.to_string(),
                            line: lineno,
                            message: format!(
                                "atomic ordering without an `// ord:` justification \
                                 (same line or within {ORD_COMMENT_WINDOW} lines \
                                 above): `{trimmed}`"
                            ),
                        });
                    }
                }
            }
        }

        // newtype-cast: truncating casts on newtype payloads.
        if class == FileClass::Sim && !in_test {
            for form in CAST_FORMS {
                if contains_cast_form(code, form) {
                    raw_findings.push(Finding {
                        rule: Rule::NewtypeCast,
                        file: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "truncating cast `{form}` on a newtype/duration payload — \
                             widen the target or convert checked: `{trimmed}`"
                        ),
                    });
                    break;
                }
            }
        }

        // unstable-sort: unstable sorts and float-keyed comparators on sim
        // paths. `total_cmp` is the sanctioned float comparator and never
        // fires; a `fn partial_cmp` line is a trait-impl definition, not a
        // call site.
        if class == FileClass::Sim && !in_test && !is_use {
            let unstable = ["sort_unstable", "select_nth_unstable"]
                .iter()
                .find(|t| code.contains(*t));
            if let Some(token) = unstable {
                raw_findings.push(Finding {
                    rule: Rule::UnstableSort,
                    file: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`{token}` on a simulation path — equal keys reorder \
                         implementation-dependently; use a stable sort or waive a \
                         provably-unique key: `{trimmed}`"
                    ),
                });
            } else if code.contains(".partial_cmp(") && !code.contains("fn partial_cmp") {
                raw_findings.push(Finding {
                    rule: Rule::UnstableSort,
                    file: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`partial_cmp` comparator on a simulation path — NaN breaks \
                         the total order; use `total_cmp` (exempt) or integer keys: \
                         `{trimmed}`"
                    ),
                });
            }
        }

        // obs-seam: observability hook calls on sim paths must sit under
        // an `if I` const-generic guard, so the uninstrumented engine
        // monomorphises them away entirely.
        if class == FileClass::Sim && !in_test && !is_use {
            for call in OBS_HOOK_CALLS {
                if code.contains(call) {
                    let mut guarded = false;
                    let mut seen = 0usize;
                    for j in (0..=i).rev() {
                        let back = lines[j].code.trim();
                        if back.is_empty() {
                            continue;
                        }
                        if has_if_i_guard(back) {
                            guarded = true;
                            break;
                        }
                        seen += 1;
                        if seen > OBS_SEAM_WINDOW {
                            break;
                        }
                    }
                    if !guarded {
                        raw_findings.push(Finding {
                            rule: Rule::ObsSeam,
                            file: rel.to_string(),
                            line: lineno,
                            message: format!(
                                "observability hook `{call}` without an `if I` guard \
                                 within {OBS_SEAM_WINDOW} code lines — the default \
                                 engine must compile instrumentation out: `{trimmed}`"
                            ),
                        });
                    }
                    break;
                }
            }
        }

        // unsafe-policy, per-line half: #[allow(unsafe_code)] is only legal
        // at the one audited site (the crate-level attribute checks run in
        // scan_workspace).
        if code.contains("#[allow(unsafe_code)]") && rel != UNSAFE_ALLOW_SITE {
            raw_findings.push(Finding {
                rule: Rule::UnsafePolicy,
                file: rel.to_string(),
                line: lineno,
                message: format!(
                    "`#[allow(unsafe_code)]` outside the one audited site \
                     ({UNSAFE_ALLOW_SITE}): `{trimmed}`"
                ),
            });
        }
    }

    // Apply waivers.
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw_findings {
        let mut waived = false;
        for w in waivers.iter_mut() {
            if w.rule == Some(f.rule) && w.covers + 1 == f.line {
                w.used = true;
                waived = true;
                break;
            }
        }
        if !waived {
            findings.push(f);
        }
    }

    // Malformed or unused waivers are findings themselves.
    let mut kept: Vec<Waiver> = Vec::new();
    for w in waivers {
        match w.rule {
            None => findings.push(Finding {
                rule: Rule::Waiver,
                file: rel.to_string(),
                line: w.line,
                message: format!("waiver names unknown rule `{}`", w.raw_rule),
            }),
            Some(rule) if w.reason.trim().is_empty() => findings.push(Finding {
                rule: Rule::Waiver,
                file: rel.to_string(),
                line: w.line,
                message: format!("waiver for `{rule}` has no reason — every waiver must say why"),
            }),
            Some(rule) if !w.used => findings.push(Finding {
                rule: Rule::Waiver,
                file: rel.to_string(),
                line: w.line,
                message: format!(
                    "unused waiver for `{rule}` — the code it covered no longer \
                     trips the rule; delete it and refresh the audit"
                ),
            }),
            Some(rule) => kept.push(Waiver {
                rule,
                file: rel.to_string(),
                line: w.line,
                reason: w.reason,
            }),
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    (findings, kept)
}

/// `true` when `code` contains `form` (a `… as uN` pattern) at a word
/// boundary on the target type, so `.0 as u32` does not match `.0 as u320`
/// (not that one exists) or identifiers.
fn contains_cast_form(code: &str, form: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(form) {
        let end = from + pos + form.len();
        let boundary = code
            .as_bytes()
            .get(end)
            .is_none_or(|b| !b.is_ascii_alphanumeric());
        if boundary {
            return true;
        }
        from = from + pos + 1;
    }
    false
}

/// `true` when `code` contains `if I` as a guard (the const-generic
/// instrumentation flag), at an identifier boundary so `if Island…` never
/// matches.
fn has_if_i_guard(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("if I") {
        let end = from + pos + "if I".len();
        let boundary = code
            .as_bytes()
            .get(end)
            .is_none_or(|b| !b.is_ascii_alphanumeric() && *b != b'_');
        if boundary {
            return true;
        }
        from = from + pos + 1;
    }
    false
}

fn collect_waivers(rel: &str, lines: &[SourceLine]) -> Vec<PendingWaiver> {
    let _ = rel;
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // A waiver is a comment *starting* with the marker — prose that
        // merely mentions the syntax (docs, this file) does not waive.
        let trimmed = line.comment.trim_start();
        if !trimmed.starts_with("analyze: allow(") {
            continue;
        }
        let rest = &trimmed["analyze: allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.push(PendingWaiver {
                rule: None,
                raw_rule: rest.trim().to_string(),
                line: i + 1,
                reason: String::new(),
                covers: i,
                used: false,
            });
            continue;
        };
        let raw_rule = rest[..close].trim().to_string();
        let mut reason = rest[close + 1..].trim_start_matches(':').trim().to_string();
        // The covered line: this one if it has code, else the first
        // following line with code; intervening comment-only lines extend
        // the reason.
        let mut covers = i;
        if line.code.trim().is_empty() {
            let mut j = i + 1;
            while j < lines.len() && lines[j].code.trim().is_empty() {
                if !lines[j].comment.contains("analyze: allow(") {
                    let cont = lines[j].comment.trim();
                    if !cont.is_empty() {
                        if !reason.is_empty() {
                            reason.push(' ');
                        }
                        reason.push_str(cont);
                    }
                }
                j += 1;
            }
            covers = j;
        }
        out.push(PendingWaiver {
            rule: Rule::from_name(&raw_rule),
            raw_rule,
            line: i + 1,
            reason,
            covers,
            used: false,
        });
    }
    out
}

/// Marks, per line, whether it sits inside a `#[cfg(test)]` item (brace
/// tracking on the lexed code text, so braces in strings don't count).
fn test_regions(lines: &[SourceLine]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // When inside a test item: the depth at which it ends.
    let mut test_until: Option<i64> = None;
    let mut pending_attr = false;
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if test_until.is_some() {
            out[i] = true;
        }
        if code.contains("#[cfg(test)]") && test_until.is_none() {
            pending_attr = true;
            out[i] = true;
        }
        let opens = code.chars().filter(|&c| c == '{').count() as i64;
        let closes = code.chars().filter(|&c| c == '}').count() as i64;
        if pending_attr {
            out[i] = true;
            if opens > 0 {
                // The item body opened here; it ends when depth returns.
                test_until = Some(depth);
                pending_attr = false;
            } else if code.trim_end().ends_with(';') {
                // Attribute on a braceless item (a `use`, a `mod x;`).
                pending_attr = false;
            }
        }
        depth += opens - closes;
        if let Some(base) = test_until {
            if depth <= base {
                test_until = None;
            }
        }
    }
    out
}

/// Scans every `.rs` file under `root` (skipping `target/`), applies the
/// per-file rules, and runs the crate-level unsafe-policy checks.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanResult> {
    let mut files = Vec::new();
    walk_rs(root, root, &mut files)?;
    files.sort();

    let mut result = ScanResult::default();
    let mut bench_allow_sites: Vec<(String, usize)> = Vec::new();
    let mut lib_sources: Vec<(String, String)> = Vec::new();

    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let (findings, waivers) = scan_source(&rel, &src);
        result.findings.extend(findings);
        result.waivers.extend(waivers);
        result.files_scanned += 1;

        if rel.starts_with("crates/bench/") {
            let lines = lexer::split_lines(&src);
            for (i, line) in lines.iter().enumerate() {
                if line.code.contains("#[allow(unsafe_code)]") {
                    bench_allow_sites.push((rel.clone(), i + 1));
                }
            }
        }
        if rel.ends_with("src/lib.rs") {
            lib_sources.push((rel, src));
        }
    }

    // Crate-level unsafe policy.
    for (rel, src) in &lib_sources {
        let lines = lexer::split_lines(src);
        let has = |attr: &str| lines.iter().any(|l| l.code.contains(attr));
        if rel.starts_with("crates/bench/") {
            if !has("#![deny(unsafe_code)]") {
                result.findings.push(Finding {
                    rule: Rule::UnsafePolicy,
                    file: rel.clone(),
                    line: 1,
                    message: "btgs-bench must carry `#![deny(unsafe_code)]` (policy: deny \
                              plus exactly one audited allow on the GlobalAlloc impl)"
                        .to_string(),
                });
            }
        } else if !has("#![forbid(unsafe_code)]") {
            result.findings.push(Finding {
                rule: Rule::UnsafePolicy,
                file: rel.clone(),
                line: 1,
                message: "missing `#![forbid(unsafe_code)]` — every crate except \
                          btgs-bench forbids unsafe outright"
                    .to_string(),
            });
        }
    }
    match bench_allow_sites.as_slice() {
        [(file, _)] if file == UNSAFE_ALLOW_SITE => {}
        [] => result.findings.push(Finding {
            rule: Rule::UnsafePolicy,
            file: UNSAFE_ALLOW_SITE.to_string(),
            line: 1,
            message: "expected exactly one `#[allow(unsafe_code)]` on btgs-bench's \
                      GlobalAlloc impl; found none (policy drift — update the lint if \
                      the allocator moved)"
                .to_string(),
        }),
        sites => {
            for (file, line) in sites {
                if file != UNSAFE_ALLOW_SITE || sites.len() > 1 {
                    result.findings.push(Finding {
                        rule: Rule::UnsafePolicy,
                        file: file.clone(),
                        line: *line,
                        message: format!(
                            "btgs-bench allows unsafe at {} site(s); policy is exactly \
                             one, on the GlobalAlloc impl in {UNSAFE_ALLOW_SITE}",
                            sites.len()
                        ),
                    });
                }
            }
        }
    }

    result
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    result
        .waivers
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(result)
}

fn walk_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths live under root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/piconet/src/scatternet.rs"), FileClass::Sim);
        assert_eq!(classify("src/lib.rs"), FileClass::Sim);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileClass::Harness);
        assert_eq!(classify("crates/analyze/src/lint.rs"), FileClass::Harness);
        assert_eq!(classify("crates/obs/src/lib.rs"), FileClass::Harness);
        assert_eq!(classify("crates/core/src/bin/tool.rs"), FileClass::Harness);
        assert_eq!(classify("crates/core/tests/t.rs"), FileClass::Harness);
    }

    #[test]
    fn waiver_covers_next_code_line() {
        let src = "\
// analyze: allow(hash-iter): lookup-only index,
// never iterated.
let m: HashMap<u32, u32> = HashMap::new();
";
        let (findings, waivers) = scan_source("crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
        assert_eq!(waivers.len(), 1);
        assert!(waivers[0].reason.contains("never iterated"));
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let src = "// analyze: allow(hash-iter): stale\nlet x = 1;\n";
        let (findings, waivers) = scan_source("crates/core/src/x.rs", src);
        assert_eq!(waivers.len(), 0);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::Waiver);
    }
}
