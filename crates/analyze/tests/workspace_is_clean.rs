//! The gate itself, as a tier-1 test: the real lint over the real tree
//! must come back clean, and the committed waiver audit must be fresh.
//! This is what makes `cargo test` equivalent to the CI `analyze` job's
//! lint half — a PR cannot merge with an unwaivered finding even if the
//! dedicated job is skipped.

use btgs_analyze::{audit, lint};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_unwaivered_findings() {
    let root = workspace_root();
    let result = lint::scan_workspace(&root).expect("workspace scan");
    assert!(result.files_scanned > 50, "scan missed the tree");
    assert!(
        result.findings.is_empty(),
        "unwaivered determinism findings:\n{}",
        result
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The three audited hash-map sites and the two crash-injection env
    // reads are expected to stay waivered; more waivers are fine, fewer
    // means the audit story in the docs is stale.
    assert!(
        result.waivers.len() >= 5,
        "expected the documented waivers, got {:?}",
        result.waivers
    );
}

#[test]
fn committed_waiver_audit_is_fresh() {
    let root = workspace_root();
    let result = lint::scan_workspace(&root).expect("workspace scan");
    assert!(
        audit::check_fresh(&root, &result.waivers).is_none(),
        "ANALYZE_WAIVERS.md is stale or missing — regenerate with \
         `cargo run -p btgs-analyze -- --workspace --write-audit`"
    );
}
