//! Model-checker regression suite: the sound protocols must pass
//! (exhaustively at the small configurations), and the deliberately
//! weakened fixtures must be refuted with a concrete interleaving trace.
//! The weakened-barrier regressions are the checker's own canary — if a
//! future change to the memory model stops finding those
//! counterexamples, the checker has lost its teeth and these tests fail.

use btgs_analyze::model::check_scenario;
use btgs_analyze::scenarios::{BarrierScenario, ClaimScenario, EngineRoundScenario};
use btgs_piconet::sync_protocol::BarrierOrderings;

const BUDGET: u64 = 200_000;

#[test]
fn sound_barrier_passes_exhaustively_at_2_and_3_threads() {
    for (n, rounds) in [(2, 1), (2, 2), (3, 1)] {
        let report = check_scenario(
            &BarrierScenario {
                n,
                rounds,
                ord: BarrierOrderings::SOUND,
                label: "sound",
            },
            BUDGET,
        );
        assert!(
            report.passed(),
            "n={n} rounds={rounds}: {:?}",
            report.failure
        );
        assert!(
            report.exhausted,
            "n={n} rounds={rounds} must be fully explored within {BUDGET}"
        );
    }
}

#[test]
fn sound_barrier_passes_bounded_at_4_threads() {
    let report = check_scenario(
        &BarrierScenario {
            n: 4,
            rounds: 1,
            ord: BarrierOrderings::SOUND,
            label: "sound",
        },
        20_000,
    );
    assert!(report.passed(), "{:?}", report.failure);
    assert_eq!(report.executions, 20_000, "budget must be spent in full");
}

/// THE regression the issue demands: weakening the waiters' generation
/// load to `Relaxed` (the classic "optimise the spin loop" mistake) must
/// produce a publish-visibility counterexample with a printed trace.
#[test]
fn weakened_spin_barrier_is_refuted_with_a_trace() {
    let report = check_scenario(
        &BarrierScenario {
            n: 2,
            rounds: 1,
            ord: BarrierOrderings::WEAK_SPIN,
            label: "weak-spin",
        },
        BUDGET,
    );
    let failure = report
        .failure
        .expect("a Relaxed spin load must lose a peer's pre-barrier publish");
    assert!(
        failure.reason.contains("publish visibility"),
        "unexpected counterexample class: {}",
        failure.reason
    );
    // The trace must show the stale read that leaked through.
    assert!(
        failure.trace.iter().any(|l| l.contains("stale")),
        "trace must pinpoint the stale read:\n{}",
        failure.trace.join("\n")
    );
}

#[test]
fn weakened_arrival_barrier_is_refuted() {
    let report = check_scenario(
        &BarrierScenario {
            n: 2,
            rounds: 1,
            ord: BarrierOrderings::WEAK_ARRIVE,
            label: "weak-arrive",
        },
        BUDGET,
    );
    assert!(
        report.failure.is_some(),
        "Relaxed arrivals must lose the releaser's view of peer publishes"
    );
}

#[test]
fn claim_sets_partition_exhaustively() {
    for (threads, len) in [(2, 3), (3, 4)] {
        let report = check_scenario(
            &ClaimScenario {
                threads,
                len,
                racy: false,
            },
            BUDGET,
        );
        assert!(report.passed(), "threads={threads}: {:?}", report.failure);
        assert!(report.exhausted, "threads={threads} len={len} must exhaust");
    }
}

#[test]
fn racy_claim_fixture_is_refuted() {
    let report = check_scenario(
        &ClaimScenario {
            threads: 2,
            len: 2,
            racy: true,
        },
        BUDGET,
    );
    assert!(
        report.failure.is_some(),
        "load-then-store claiming must double-claim under some schedule"
    );
}

#[test]
fn engine_round_composition_passes_exhaustively() {
    let report = check_scenario(&EngineRoundScenario { threads: 2, len: 3 }, BUDGET);
    assert!(report.passed(), "{:?}", report.failure);
    assert!(report.exhausted);
}
