//! Fixture corpus for the determinism lint: one positive (must fire) and
//! one negative (must stay silent) case per rule, with exact expected
//! findings. Fixtures are inline strings — the lexer blanks string
//! literals, so scanning this test file itself never trips the lint.

use btgs_analyze::lint::{scan_source, Rule};

/// Asserts `src` (treated as the given path) produces exactly the
/// expected `(rule, line)` findings, in order.
fn expect(path: &str, src: &str, expected: &[(Rule, usize)]) {
    let (findings, _) = scan_source(path, src);
    let got: Vec<(Rule, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got, expected,
        "findings mismatch for {path}:\n{:#?}",
        findings
    );
}

const SIM: &str = "crates/core/src/fixture.rs";
const HARNESS: &str = "crates/bench/src/fixture.rs";

#[test]
fn hash_iter_fires_on_sim_paths() {
    let src = "\
use std::collections::HashMap;
fn build() {
    let m: HashMap<u32, u32> = HashMap::new();
    for (k, v) in &m {}
}
";
    // The `use` is exempt; the declaration line fires once (declaration
    // granularity — the binding's later iteration is implied by it).
    expect(SIM, src, &[(Rule::HashIter, 3)]);
}

#[test]
fn hash_iter_silent_on_btreemap_and_waivers() {
    let clean = "\
use std::collections::BTreeMap;
fn build() {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
}
";
    expect(SIM, clean, &[]);

    let waived = "\
// analyze: allow(hash-iter): lookup-only fixture map.
let m: HashMap<u32, u32> = HashMap::new();
";
    let (findings, waivers) = scan_source(SIM, waived);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::HashIter);
    assert_eq!(waivers[0].reason, "lookup-only fixture map.");
}

#[test]
fn hash_iter_silent_in_harness_and_strings() {
    expect(HARNESS, "let m = HashMap::new();\n", &[]);
    expect(SIM, "let s = \"HashMap::new()\";\n", &[]);
}

#[test]
fn ambient_time_fires_in_sim_only() {
    let src = "fn now() { let t = Instant::now(); }\n";
    expect(SIM, src, &[(Rule::AmbientTime, 1)]);
    expect(HARNESS, src, &[]);
    expect("crates/core/tests/fixture.rs", src, &[]);
    expect(
        SIM,
        "fn s() { let t = SystemTime::now(); }\n",
        &[(Rule::AmbientTime, 1)],
    );
}

#[test]
fn ambient_time_silent_in_cfg_test() {
    let src = "\
fn sim() {}
#[cfg(test)]
mod tests {
    fn t() { let t = Instant::now(); }
}
";
    expect(SIM, src, &[]);
}

#[test]
fn ambient_rng_and_env_fire_in_sim() {
    expect(
        SIM,
        "fn r() { let x = thread_rng(); }\n",
        &[(Rule::AmbientRng, 1)],
    );
    expect(
        SIM,
        "fn e() { let v = std::env::var(\"X\"); }\n",
        &[(Rule::AmbientEnv, 1)],
    );
    expect(HARNESS, "fn e() { let v = std::env::var(\"X\"); }\n", &[]);
}

#[test]
fn ambient_env_waivable() {
    let src = "\
// analyze: allow(ambient-env): fault injection, never on a report path.
let v = std::env::var(\"CRASH\");
";
    let (findings, waivers) = scan_source(SIM, src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::AmbientEnv);
}

#[test]
fn ord_comment_fires_without_justification() {
    let src = "fn f(x: &AtomicU64) { x.store(1, Ordering::Release); }\n";
    expect(SIM, src, &[(Rule::OrdComment, 1)]);
    // Harness crates are NOT exempt: orderings need justification
    // everywhere.
    expect(HARNESS, src, &[(Rule::OrdComment, 1)]);
}

#[test]
fn ord_comment_satisfied_same_line_or_block_above() {
    expect(
        SIM,
        "fn f(x: &AtomicU64) { x.store(1, Ordering::Release); } // ord: publishes y\n",
        &[],
    );
    let above = "\
fn f(x: &AtomicU64) {
    // ord: Release — pairs with the reader's Acquire load of x,
    // publishing the preceding writes.
    x.store(1, Ordering::Release);
}
";
    expect(SIM, above, &[]);
}

#[test]
fn ord_comment_window_is_bounded() {
    // An ord: comment more than six lines above does not count.
    let src = "\
fn f(x: &AtomicU64) {
    // ord: stale justification, too far away.
    let a = 1;
    let b = 2;
    let c = 3;
    let d = 4;
    let e = 5;
    let g = 6;
    x.store(1, Ordering::Release);
}
";
    expect(SIM, src, &[(Rule::OrdComment, 9)]);
}

#[test]
fn ord_comment_flags_variant_imports() {
    expect(
        SIM,
        "use std::sync::atomic::Ordering::Relaxed;\n",
        &[(Rule::OrdComment, 1)],
    );
    expect(
        SIM,
        "use std::sync::atomic::Ordering::{Acquire, Release};\n",
        &[(Rule::OrdComment, 1)],
    );
    // Importing the enum itself is the sanctioned form.
    expect(SIM, "use std::sync::atomic::Ordering;\n", &[]);
}

#[test]
fn ord_comment_ignores_cmp_ordering() {
    expect(
        SIM,
        "fn c(a: u32, b: u32) -> Ordering { Ordering::Less }\n",
        &[],
    );
    expect(SIM, "use std::cmp::Ordering;\n", &[]);
}

#[test]
fn newtype_cast_fires_on_truncations() {
    expect(
        SIM,
        "fn f(t: SimTime) -> u32 { t.0 as u32 }\n",
        &[(Rule::NewtypeCast, 1)],
    );
    expect(
        SIM,
        "fn f(d: Duration) -> u16 { d.as_nanos() as u16 }\n",
        &[(Rule::NewtypeCast, 1)],
    );
    // Widening is fine.
    expect(SIM, "fn f(t: SimTime) -> u64 { t.0 as u64 }\n", &[]);
    expect(
        SIM,
        "fn f(d: Duration) -> u64 { d.as_nanos() as u64 }\n",
        &[],
    );
}

#[test]
fn unstable_sort_fires_on_sim_paths() {
    expect(
        SIM,
        "fn f(v: &mut Vec<u32>) { v.sort_unstable(); }\n",
        &[(Rule::UnstableSort, 1)],
    );
    expect(
        SIM,
        "fn f(v: &mut Vec<(u64, u32)>) { v.sort_unstable_by_key(|e| e.0); }\n",
        &[(Rule::UnstableSort, 1)],
    );
    expect(
        SIM,
        "fn f(v: &mut Vec<u64>) { v.select_nth_unstable(3); }\n",
        &[(Rule::UnstableSort, 1)],
    );
    // Float-keyed comparator at a call site.
    expect(
        SIM,
        "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
        &[(Rule::UnstableSort, 1)],
    );
    // Harness crates and #[cfg(test)] scaffolding are exempt.
    expect(
        HARNESS,
        "fn f(v: &mut Vec<u32>) { v.sort_unstable(); }\n",
        &[],
    );
    let in_test = "\
fn sim() {}
#[cfg(test)]
mod tests {
    fn t(v: &mut Vec<u32>) { v.sort_unstable(); }
}
";
    expect(SIM, in_test, &[]);
}

#[test]
fn unstable_sort_silent_on_stable_sorts_and_total_cmp() {
    expect(SIM, "fn f(v: &mut Vec<u32>) { v.sort(); }\n", &[]);
    expect(
        SIM,
        "fn f(v: &mut Vec<u64>) { v.sort_by_key(|e| *e); }\n",
        &[],
    );
    // `total_cmp` is the sanctioned float comparator.
    expect(
        SIM,
        "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n",
        &[],
    );
    // A `PartialOrd` impl *defines* partial_cmp; only call sites fire.
    expect(
        SIM,
        "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }\n",
        &[],
    );
}

#[test]
fn unstable_sort_waivable_with_unique_key_reason() {
    let src = "\
// analyze: allow(unstable-sort): key (time, seq) is unique per entry.
fn f(v: &mut Vec<(u64, u64)>) { v.sort_unstable(); }
";
    let (findings, waivers) = scan_source(SIM, src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::UnstableSort);
    assert!(waivers[0].reason.contains("unique"));
}

#[test]
fn unsafe_allow_only_at_audited_site() {
    let src = "#[allow(unsafe_code)]\nfn f() {}\n";
    expect(SIM, src, &[(Rule::UnsafePolicy, 1)]);
    let (findings, _) = scan_source("crates/bench/src/alloc_counter.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn malformed_waivers_are_findings() {
    let (findings, waivers) = scan_source(SIM, "// analyze: allow(no-such-rule): x\nlet y = 1;\n");
    assert!(waivers.is_empty());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::Waiver);
    assert!(findings[0].message.contains("no-such-rule"));

    let (findings, _) = scan_source(
        SIM,
        "// analyze: allow(hash-iter):\nlet m = HashMap::new();\n",
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::Waiver && f.message.contains("no reason")),
        "{findings:?}"
    );
}

#[test]
fn unused_waiver_is_a_finding() {
    let (findings, waivers) =
        scan_source(SIM, "// analyze: allow(hash-iter): stale.\nlet y = 1;\n");
    assert!(waivers.is_empty());
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("unused waiver"));
}

#[test]
fn waiver_reason_folds_continuation_lines() {
    let src = "\
// analyze: allow(hash-iter): lookup-only index,
// filled by keyed inserts,
// never iterated.
let m: HashMap<u32, u32> = HashMap::new();
";
    let (findings, waivers) = scan_source(SIM, src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(
        waivers[0].reason,
        "lookup-only index, filled by keyed inserts, never iterated."
    );
}

#[test]
fn obs_seam_fires_on_unguarded_hook_calls() {
    let src = "\
fn f(st: &mut S) {
    if let Some(probe) = st.probe.as_deref_mut() {
        probe.on_event(now, kind, a, b);
    }
}
";
    expect(SIM, src, &[(Rule::ObsSeam, 3)]);
    // Definitions never fire: no leading dot.
    expect(SIM, "fn on_event(&mut self) {}\n", &[]);
    // Harness crates (btgs-obs included) may call hooks freely.
    expect(HARNESS, "fn f(p: &mut P) { p.after_event(); }\n", &[]);
    expect(
        "crates/obs/src/lib.rs",
        "fn f(p: &mut P) { p.after_event(); }\n",
        &[],
    );
}

#[test]
fn obs_seam_satisfied_by_if_i_guard_within_window() {
    let src = "\
fn f<const I: bool>(st: &mut S) {
    if I {
        let (sched, x) = st.split_mut();
        let occ = sched.occupancy();
        if let Some(probe) = st.probe.as_deref_mut() {
            probe.on_island_ran(b, occ.live, occ.near);
        }
    }
}
";
    expect(SIM, src, &[]);
    // `if Island…` is not a guard: the identifier boundary check holds.
    let src = "\
fn f(st: &mut S) {
    if Islands::ready() {
        st.probe.on_staged(pic, flow, at, seq);
    }
}
";
    expect(SIM, src, &[(Rule::ObsSeam, 3)]);
}

#[test]
fn obs_seam_window_is_bounded_and_waivable() {
    let src = "\
fn f<const I: bool>(st: &mut S) {
    if I {
        let a = 1;
        let b = 2;
        let c = 3;
        let d = 4;
        let e = 5;
        st.probe.on_event(now, kind, a, b);
    }
}
";
    expect(SIM, src, &[(Rule::ObsSeam, 8)]);
    let src = "\
fn delegate(&mut self) {
    // analyze: allow(obs-seam): delegated from a guarded caller.
    self.obs.after_event();
}
";
    let (findings, waivers) = scan_source(SIM, src);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(waivers.len(), 1);
    assert_eq!(waivers[0].rule, Rule::ObsSeam);
}
