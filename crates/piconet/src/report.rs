//! Run reports: everything a simulation measured.

use crate::flow::FlowSpec;
use crate::ledger::{PollCounters, SlotLedger};
use btgs_baseband::{AmAddr, LogicalChannel};
use btgs_des::{SimDuration, SimTime};
use btgs_metrics::{DelayStats, Table};
use btgs_traffic::FlowId;
use std::collections::BTreeMap;

/// Measurements for one flow over the measurement window.
#[derive(Clone, Debug, Default)]
pub struct FlowReport {
    /// Higher-layer packets offered (arrived) during the window.
    pub offered_packets: u64,
    /// Bytes offered during the window.
    pub offered_bytes: u64,
    /// Higher-layer packets fully delivered during the window.
    pub delivered_packets: u64,
    /// Bytes delivered during the window.
    pub delivered_bytes: u64,
    /// Bytes lost without retransmission (SCO only; ACL uses ARQ).
    pub lost_bytes: u64,
    /// Per-packet delays (arrival to delivery of the last segment).
    pub delay: DelayStats,
}

impl FlowReport {
    /// Mean delivered throughput in kbit/s over a window of `window`.
    pub fn throughput_kbps(&self, window: SimDuration) -> f64 {
        assert!(!window.is_zero(), "measurement window must be non-empty");
        self.delivered_bytes as f64 * 8.0 / window.as_secs_f64() / 1000.0
    }
}

/// The complete result of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Start of the measurement window (end of warm-up).
    pub window_start: SimTime,
    /// End of the measurement window (the run horizon).
    pub window_end: SimTime,
    /// The flows that were configured, in configuration order.
    pub flows: Vec<FlowSpec>,
    /// SCO voice flows `(id, slave)`, if any were simulated.
    pub sco_flows: Vec<(FlowId, AmAddr)>,
    /// Per-flow measurements (ACL flows and SCO voice flows).
    pub per_flow: BTreeMap<FlowId, FlowReport>,
    /// Slot usage classification.
    pub ledger: SlotLedger,
    /// GS poll counters.
    pub gs_polls: PollCounters,
    /// BE poll counters.
    pub be_polls: PollCounters,
    /// Total discrete events the engine processed over the whole run
    /// (including warm-up) — the numerator of events-per-second engine
    /// throughput in the benches.
    pub events_processed: u64,
    /// Name of the poller that produced the run.
    pub poller: String,
}

impl RunReport {
    /// The measurement window length.
    pub fn window(&self) -> SimDuration {
        self.window_end - self.window_start
    }

    /// The report of one flow.
    ///
    /// # Panics
    ///
    /// Panics if the flow does not exist in the report.
    pub fn flow(&self, id: FlowId) -> &FlowReport {
        self.per_flow
            .get(&id)
            .unwrap_or_else(|| panic!("no report for {id}"))
    }

    /// Delivered throughput of one flow in kbit/s.
    pub fn throughput_kbps(&self, id: FlowId) -> f64 {
        self.flow(id).throughput_kbps(self.window())
    }

    /// Aggregate delivered throughput of all flows at `slave` (including
    /// SCO voice), in kbit/s — the per-slave quantity plotted in the
    /// paper's Fig. 5.
    pub fn slave_throughput_kbps(&self, slave: AmAddr) -> f64 {
        let acl: f64 = self
            .flows
            .iter()
            .filter(|f| f.slave == slave)
            .map(|f| self.throughput_kbps(f.id))
            .sum();
        let sco: f64 = self
            .sco_flows
            .iter()
            .filter(|(_, s)| *s == slave)
            .map(|(id, _)| self.throughput_kbps(*id))
            .sum();
        acl + sco
    }

    /// Aggregate delivered throughput over all flows, in kbit/s.
    pub fn total_throughput_kbps(&self) -> f64 {
        let acl: f64 = self.flows.iter().map(|f| self.throughput_kbps(f.id)).sum();
        let sco: f64 = self
            .sco_flows
            .iter()
            .map(|(id, _)| self.throughput_kbps(*id))
            .sum();
        acl + sco
    }

    /// Ids of flows on the given logical channel, in configuration order.
    pub fn flows_on(&self, channel: LogicalChannel) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| f.channel == channel)
            .map(|f| f.id)
            .collect()
    }

    /// Renders a per-flow summary table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "flow",
            "slave",
            "chan",
            "dir",
            "offered",
            "delivered",
            "kbps",
            "delay mean",
            "delay max",
        ]);
        for f in &self.flows {
            let r = self.flow(f.id);
            t.row(vec![
                f.id.to_string(),
                f.slave.to_string(),
                f.channel.to_string(),
                f.direction.to_string(),
                r.offered_packets.to_string(),
                r.delivered_packets.to_string(),
                format!("{:.2}", r.throughput_kbps(self.window())),
                r.delay.mean().map_or_else(|| "-".into(), |d| d.to_string()),
                r.delay.max().map_or_else(|| "-".into(), |d| d.to_string()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::Direction;

    fn report() -> RunReport {
        let s1 = AmAddr::new(1).unwrap();
        let flows = vec![
            FlowSpec::new(
                FlowId(1),
                s1,
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(2),
                s1,
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ),
        ];
        let mut per_flow = BTreeMap::new();
        per_flow.insert(
            FlowId(1),
            FlowReport {
                offered_packets: 100,
                offered_bytes: 16_000,
                delivered_packets: 100,
                delivered_bytes: 16_000,
                lost_bytes: 0,
                delay: DelayStats::new(),
            },
        );
        per_flow.insert(
            FlowId(2),
            FlowReport {
                delivered_bytes: 8_000,
                ..Default::default()
            },
        );
        RunReport {
            window_start: SimTime::from_secs(1),
            window_end: SimTime::from_secs(3),
            flows,
            sco_flows: Vec::new(),
            per_flow,
            ledger: SlotLedger::default(),
            gs_polls: PollCounters::default(),
            be_polls: PollCounters::default(),
            events_processed: 0,
            poller: "test".into(),
        }
    }

    #[test]
    fn window_and_throughput() {
        let r = report();
        assert_eq!(r.window(), SimDuration::from_secs(2));
        // 16000 B over 2 s = 64 kbps.
        assert_eq!(r.throughput_kbps(FlowId(1)), 64.0);
        assert_eq!(r.throughput_kbps(FlowId(2)), 32.0);
        assert_eq!(r.slave_throughput_kbps(AmAddr::new(1).unwrap()), 96.0);
        assert_eq!(r.slave_throughput_kbps(AmAddr::new(7).unwrap()), 0.0);
        assert_eq!(r.total_throughput_kbps(), 96.0);
    }

    #[test]
    fn channel_filter() {
        let r = report();
        assert_eq!(
            r.flows_on(LogicalChannel::GuaranteedService),
            vec![FlowId(1)]
        );
        assert_eq!(r.flows_on(LogicalChannel::BestEffort), vec![FlowId(2)]);
    }

    #[test]
    #[should_panic(expected = "no report for")]
    fn missing_flow_panics() {
        let r = report();
        let _ = r.flow(FlowId(9));
    }

    #[test]
    fn table_has_one_row_per_flow() {
        let r = report();
        let rendered = r.to_table().render();
        assert_eq!(rendered.lines().count(), 2 + 2);
        assert!(rendered.contains("flow1"));
        assert!(rendered.contains("64.00"));
    }
}
