//! The poller interface: how a scheduling policy plugs into the master.
//!
//! The master consults its [`Poller`] at every decision point (whenever the
//! channel is free at an even slot boundary). The poller sees only what a
//! real Bluetooth master can see — its own downlink queues and the outcomes
//! of past polls — never the slaves' uplink queues. *"With respect to the
//! upstream traffic, the master lacks knowledge about the availability of
//! data at a slave."*

use crate::config::PresenceMask;
use crate::flow::FlowSpec;
use crate::flow_table::{FlowIdx, FlowTable};
use crate::queue::{FlowQueue, SegmentPlan};
use btgs_baseband::{AmAddr, Direction, LogicalChannel, PacketType};
use btgs_des::{SimDuration, SimTime};
use btgs_traffic::FlowId;

/// What the master should do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollDecision {
    /// Address `slave` with a poll on the given logical channel. The master
    /// forms the exchange: a downlink data segment (or POLL) plus the
    /// slave's uplink response (data or NULL).
    Poll {
        /// The slave to address.
        slave: AmAddr,
        /// Which logical channel the poll serves (GS polls never move BE
        /// data and vice versa).
        channel: LogicalChannel,
    },
    /// Nothing to do before `until`: the master sleeps and re-consults the
    /// poller at the first even slot boundary at or after `until` (or
    /// earlier if new downlink data arrives).
    Idle {
        /// Earliest instant the poller wants to be consulted again.
        until: SimTime,
    },
    /// No pending or planned work at all: sleep until the next arrival.
    Sleep,
}

/// Read-only view of the master-side state handed to [`Poller::decide`].
///
/// Exposes the [`FlowTable`] and the **downlink** queues only. Every
/// lookup is O(1) and allocation-free — this view is rebuilt at every
/// decision point, so it must stay cheap.
#[derive(Debug)]
pub struct MasterView<'a> {
    now: SimTime,
    table: &'a FlowTable,
    downlink_queues: &'a [Option<FlowQueue>],
    presence: &'a PresenceMask,
}

/// Snapshot of one downlink queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DownlinkView {
    /// Queued higher-layer packets (including a partially-sent head).
    pub packets: usize,
    /// Arrival instant of the head packet.
    pub head_arrival: Option<SimTime>,
    /// Outstanding bytes.
    pub backlog_bytes: u64,
}

impl<'a> MasterView<'a> {
    /// Creates a view.
    ///
    /// Normally the simulator constructs views; the constructor is public so
    /// poller implementations can unit-test their `decide` logic directly.
    /// `downlink_queues[i]` must be `Some` exactly for the downlink flows at
    /// index `i` of `table`.
    pub fn new(
        now: SimTime,
        table: &'a FlowTable,
        downlink_queues: &'a [Option<FlowQueue>],
    ) -> MasterView<'a> {
        MasterView::with_presence(now, table, downlink_queues, &PresenceMask::ALWAYS)
    }

    /// Creates a view with an explicit per-slave presence mask (scatternet
    /// piconets with bridge slaves; [`MasterView::new`] assumes everybody is
    /// always present).
    pub fn with_presence(
        now: SimTime,
        table: &'a FlowTable,
        downlink_queues: &'a [Option<FlowQueue>],
        presence: &'a PresenceMask,
    ) -> MasterView<'a> {
        debug_assert_eq!(table.len(), downlink_queues.len());
        MasterView {
            now,
            table,
            downlink_queues,
            presence,
        }
    }

    /// The current instant (an even slot boundary).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The per-slave presence mask of the piconet.
    pub fn presence(&self) -> &'a PresenceMask {
        self.presence
    }

    /// `true` if `slave` is reachable right now (always true outside a
    /// scatternet). Pollers must not address absent bridge slaves.
    #[inline]
    pub fn is_present(&self, slave: AmAddr) -> bool {
        self.presence.is_present(slave, self.now)
    }

    /// The earliest instant at or after now at which `slave` is reachable
    /// (now itself for present slaves). O(1), allocation-free.
    #[inline]
    pub fn next_present(&self, slave: AmAddr) -> SimTime {
        self.presence.next_present(slave, self.now)
    }

    /// `true` if an exchange of duration `need` started now would finish
    /// at or before `slave`'s departure (always true for full-time
    /// slaves). Ending exactly on the boundary fits. Pollers whose service
    /// guarantee assumes a *full* exchange per poll (the GS η_min
    /// accounting) must check this instead of bare [`is_present`]: a poll
    /// issued into a shorter remainder is silently truncated to smaller
    /// packets by the departure cap, breaking the per-poll guarantee.
    ///
    /// [`is_present`]: MasterView::is_present
    #[inline]
    pub fn fits_exchange(&self, slave: AmAddr, need: SimDuration) -> bool {
        self.presence.fits(slave, self.now, need)
    }

    /// The earliest instant at or after now at which an exchange of
    /// duration `need` with `slave` can start and still finish before its
    /// departure (now itself for full-time slaves). O(1),
    /// allocation-free.
    #[inline]
    pub fn next_present_fitting(&self, slave: AmAddr, need: SimDuration) -> SimTime {
        self.presence.next_fitting(slave, self.now, need)
    }

    /// The earliest instant at or after now at which *any* of `slaves` is
    /// reachable — the shared "everybody is off in another piconet, wait
    /// for the first one back" fallback of the presence-aware pollers.
    /// Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `slaves` is empty (an empty candidate set should `Sleep`,
    /// not idle).
    pub fn earliest_presence(&self, slaves: &[AmAddr]) -> SimTime {
        slaves
            .iter()
            .map(|&s| self.next_present(s))
            .min()
            .expect("earliest_presence needs at least one candidate slave")
    }

    /// The flow table of the piconet.
    pub fn table(&self) -> &'a FlowTable {
        self.table
    }

    /// All flows configured in the piconet, in dense-index order.
    pub fn flows(&self) -> &'a [FlowSpec] {
        self.table.specs()
    }

    /// The flow with the given id, if configured. O(1).
    pub fn flow(&self, id: FlowId) -> Option<&'a FlowSpec> {
        self.table.idx_of(id).map(|idx| self.table.spec(idx))
    }

    /// The unique flow matching `(slave, direction, channel)`, if any. O(1).
    pub fn flow_at(
        &self,
        slave: AmAddr,
        direction: Direction,
        channel: LogicalChannel,
    ) -> Option<&'a FlowSpec> {
        self.table
            .at(slave, direction, channel)
            .map(|idx| self.table.spec(idx))
    }

    /// Snapshot of a downlink flow's queue. Returns `None` for uplink flows
    /// (the master cannot see those) and for unknown ids. O(1).
    pub fn downlink(&self, id: FlowId) -> Option<DownlinkView> {
        self.downlink_at(self.table.idx_of(id)?)
    }

    /// Snapshot of a downlink flow's queue by dense index. Returns `None`
    /// for uplink flows.
    pub fn downlink_at(&self, idx: FlowIdx) -> Option<DownlinkView> {
        let q = self.downlink_queues[idx.get()].as_ref()?;
        Some(DownlinkView {
            packets: q.len(),
            head_arrival: q.head_arrival(),
            backlog_bytes: q.backlog_bytes(),
        })
    }

    /// `true` if the downlink flow had data available at instant `t`.
    /// Uplink flows always report `false` (master ignorance).
    pub fn downlink_has_data(&self, id: FlowId, t: SimTime) -> bool {
        matches!(self.downlink(id), Some(v) if matches!(v.head_arrival, Some(a) if a <= t))
    }

    /// `true` if the downlink flow at `idx` had data available at `t`.
    pub fn downlink_has_data_at(&self, idx: FlowIdx, t: SimTime) -> bool {
        // Checked on every PFP availability probe: go straight to the
        // queue's head-arrival test instead of snapshotting a full view.
        self.downlink_queues[idx.get()]
            .as_ref()
            .is_some_and(|q| q.has_data_at(t))
    }

    /// The distinct slaves that have at least one flow, in address order.
    /// Precomputed — no allocation.
    pub fn slaves(&self) -> &'a [AmAddr] {
        self.table.slaves()
    }

    /// The distinct slaves with at least one flow on `channel`, in address
    /// order. Precomputed — no allocation.
    pub fn slaves_on(&self, channel: LogicalChannel) -> &'a [AmAddr] {
        self.table.slaves_on(channel)
    }

    /// The flows of one slave, as dense indices. Precomputed.
    pub fn flows_of(&self, slave: AmAddr) -> &'a [FlowIdx] {
        self.table.flows_of(slave)
    }
}

/// What one direction of a completed exchange carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// A data segment was transmitted.
    Data {
        /// The flow the segment belongs to.
        flow: FlowId,
        /// The segment that was sent.
        segment: SegmentPlan,
        /// `true` if the radio delivered it (always true on the ideal
        /// channel); a failed segment stays at the head of its queue and is
        /// offered again (1-bit ARQ).
        delivered: bool,
        /// `true` if this transmission was a retransmission of a previously
        /// failed segment.
        retransmission: bool,
    },
    /// A control packet (POLL downlink / NULL uplink) was transmitted.
    Control {
        /// POLL or NULL.
        ty: PacketType,
    },
    /// Nothing was transmitted in this direction (e.g. the slave stayed
    /// silent because the downlink packet was lost).
    Silent,
}

impl SegmentOutcome {
    /// `true` if a data segment was delivered in this direction.
    pub fn is_delivered_data(&self) -> bool {
        matches!(
            self,
            SegmentOutcome::Data {
                delivered: true,
                ..
            }
        )
    }

    /// Slots occupied on air by this direction.
    pub fn slots(&self) -> u64 {
        match self {
            SegmentOutcome::Data { segment, .. } => segment.ty.slots(),
            SegmentOutcome::Control { ty } => ty.slots(),
            SegmentOutcome::Silent => 1, // the response window passes unused
        }
    }
}

/// Feedback to the poller after each completed exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Master transmission start (even slot boundary).
    pub start: SimTime,
    /// Exchange end (the next even slot boundary after the uplink).
    pub end: SimTime,
    /// The addressed slave.
    pub slave: AmAddr,
    /// The logical channel the poll served.
    pub channel: LogicalChannel,
    /// What the master sent.
    pub down: SegmentOutcome,
    /// What the slave answered.
    pub up: SegmentOutcome,
}

impl ExchangeReport {
    /// `true` if the poll moved at least one data segment (in either
    /// direction). The paper calls a GS poll that moved no GS data an
    /// *unsuccessful* poll.
    pub fn successful(&self) -> bool {
        matches!(self.down, SegmentOutcome::Data { .. })
            || matches!(self.up, SegmentOutcome::Data { .. })
    }
}

/// A master polling policy.
///
/// Implementations decide which slave to address next and receive feedback
/// about completed exchanges and master-side (downlink) packet arrivals.
pub trait Poller: Send {
    /// Chooses the next action. Called whenever the channel is free at an
    /// even slot boundary. Must not assume it is called at any particular
    /// rate; spurious calls (e.g. after an arrival) are allowed.
    fn decide(&mut self, now: SimTime, view: &MasterView<'_>) -> PollDecision;

    /// Observes a completed exchange (including its radio outcome).
    fn on_exchange(&mut self, report: &ExchangeReport);

    /// Observes a packet arriving into a master-side (downlink) queue.
    /// Uplink arrivals are *not* reported: the master cannot see them.
    fn on_downlink_arrival(&mut self, flow: FlowId, now: SimTime) {
        let _ = (flow, now);
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn flows() -> Vec<FlowSpec> {
        vec![
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(2),
                s(2),
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ),
        ]
    }

    #[test]
    fn view_exposes_downlink_only() {
        let table = FlowTable::new(flows()).unwrap();
        let mut q = FlowQueue::new();
        q.push(btgs_traffic::AppPacket::new(
            0,
            FlowId(2),
            100,
            SimTime::ZERO,
        ));
        let queues = vec![None, Some(q)];
        let view = MasterView::new(SimTime::from_millis(1), &table, &queues);

        assert_eq!(view.now(), SimTime::from_millis(1));
        assert_eq!(view.flows().len(), 2);
        assert!(
            view.downlink(FlowId(1)).is_none(),
            "uplink queue is invisible"
        );
        let dl = view.downlink(FlowId(2)).unwrap();
        assert_eq!(dl.packets, 1);
        assert_eq!(dl.backlog_bytes, 100);
        assert!(view.downlink_has_data(FlowId(2), SimTime::ZERO));
        assert!(!view.downlink_has_data(FlowId(1), SimTime::from_secs(1)));
        assert!(!view.downlink_has_data(FlowId(9), SimTime::ZERO));
    }

    #[test]
    fn view_lookups() {
        let table = FlowTable::new(flows()).unwrap();
        let queues = vec![None, None];
        let view = MasterView::new(SimTime::ZERO, &table, &queues);
        assert_eq!(view.flow(FlowId(1)).unwrap().slave, s(1));
        assert!(view.flow(FlowId(3)).is_none());
        assert!(view
            .flow_at(
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService
            )
            .is_some());
        assert!(view
            .flow_at(
                s(1),
                Direction::MasterToSlave,
                LogicalChannel::GuaranteedService
            )
            .is_none());
        assert_eq!(view.slaves(), vec![s(1), s(2)]);
    }

    #[test]
    fn outcome_slots_and_success() {
        let seg = SegmentPlan {
            ty: PacketType::Dh3,
            bytes: 176,
            is_last: true,
            is_first: true,
            packet_seq: 0,
            packet_size: 176,
            packet_arrival: SimTime::ZERO,
        };
        let data = SegmentOutcome::Data {
            flow: FlowId(1),
            segment: seg,
            delivered: true,
            retransmission: false,
        };
        assert_eq!(data.slots(), 3);
        assert!(data.is_delivered_data());
        assert_eq!(
            SegmentOutcome::Control {
                ty: PacketType::Poll
            }
            .slots(),
            1
        );
        assert_eq!(SegmentOutcome::Silent.slots(), 1);

        let report = ExchangeReport {
            start: SimTime::ZERO,
            end: SimTime::from_micros(2500),
            slave: s(1),
            channel: LogicalChannel::GuaranteedService,
            down: SegmentOutcome::Control {
                ty: PacketType::Poll,
            },
            up: data,
        };
        assert!(report.successful());
        let unsuccessful = ExchangeReport {
            up: SegmentOutcome::Control {
                ty: PacketType::Null,
            },
            ..report
        };
        assert!(!unsuccessful.successful());
    }
}
