//! Per-flow transmit queues with segment-level progress.

use crate::sar::SegmentationPolicy;
use btgs_baseband::PacketType;
use btgs_des::SimTime;
use btgs_traffic::AppPacket;
use std::collections::VecDeque;

/// A segment about to be transmitted: the head packet's next chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Baseband packet type carrying the segment.
    pub ty: PacketType,
    /// Payload bytes of the segment.
    pub bytes: u32,
    /// `true` if this segment completes its higher-layer packet.
    pub is_last: bool,
    /// `true` if this segment starts its higher-layer packet.
    pub is_first: bool,
    /// Sequence number of the higher-layer packet being carried.
    pub packet_seq: u64,
    /// Total size of the higher-layer packet being carried.
    pub packet_size: u32,
    /// Arrival time of the higher-layer packet being carried.
    pub packet_arrival: SimTime,
}

/// A transmit queue for one flow.
///
/// Holds higher-layer packets in arrival order and tracks how many bytes of
/// the head packet have already been delivered. Segments are *peeked*
/// non-destructively and only [advanced](FlowQueue::advance) once the
/// receiver acknowledges them, which models the baseband 1-bit ARQ: a lost
/// segment is simply offered again at the next opportunity.
///
/// # Examples
///
/// ```
/// use btgs_piconet::{FlowQueue, MaxFirstPolicy};
/// use btgs_baseband::PacketType;
/// use btgs_traffic::{AppPacket, FlowId};
/// use btgs_des::SimTime;
///
/// let mut q = FlowQueue::new();
/// q.push(AppPacket::new(0, FlowId(1), 176, SimTime::ZERO));
/// let allowed = [PacketType::Dh1, PacketType::Dh3];
/// let seg = q.peek_segment(SimTime::ZERO, &MaxFirstPolicy, &allowed).unwrap();
/// assert_eq!(seg.bytes, 176);
/// assert!(seg.is_last);
/// q.advance(seg.bytes);
/// assert!(q.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlowQueue {
    packets: VecDeque<AppPacket>,
    head_sent: u32,
    /// Total bytes currently queued (minus what was already sent of the
    /// head), maintained incrementally.
    backlog_bytes: u64,
    /// `true` once the current head segment has been transmitted at least
    /// once; a further transmission of the same segment is a retransmission.
    head_attempted: bool,
}

impl FlowQueue {
    /// Creates an empty queue.
    pub fn new() -> FlowQueue {
        FlowQueue::default()
    }

    /// Creates an empty queue pre-sized for `capacity` packets, so pushes
    /// up to that depth never touch the allocator (the scatternet relay
    /// queues rely on this for the zero-alloc steady state).
    pub fn with_capacity(capacity: usize) -> FlowQueue {
        FlowQueue {
            packets: VecDeque::with_capacity(capacity),
            ..FlowQueue::default()
        }
    }

    /// Pre-sizes the queue for at least `additional` further packets.
    pub fn reserve(&mut self, additional: usize) {
        self.packets.reserve(additional);
    }

    /// Enqueues a higher-layer packet.
    ///
    /// # Panics
    ///
    /// Panics if `pkt` arrives before the current tail (queues are FIFO in
    /// arrival order).
    pub fn push(&mut self, pkt: AppPacket) {
        if let Some(tail) = self.packets.back() {
            assert!(
                pkt.arrival >= tail.arrival,
                "packets must be enqueued in arrival order"
            );
        }
        self.backlog_bytes += pkt.size as u64;
        self.packets.push_back(pkt);
    }

    /// Number of queued packets (including the partially-sent head).
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Remaining backlog in bytes.
    pub fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    /// Arrival time of the head packet, if any.
    pub fn head_arrival(&self) -> Option<SimTime> {
        self.packets.front().map(|p| p.arrival)
    }

    /// Bytes of the head packet still to be delivered, if any.
    pub fn head_remaining(&self) -> Option<u32> {
        self.packets.front().map(|p| p.size - self.head_sent)
    }

    /// `true` if data was available for transmission at instant `t` — the
    /// paper's strict rule: the head packet must have arrived no later than
    /// the moment the master starts transmitting.
    pub fn has_data_at(&self, t: SimTime) -> bool {
        matches!(self.head_arrival(), Some(a) if a <= t)
    }

    /// The next segment that would be transmitted at instant `t`, or `None`
    /// if no data is available at `t`. Does not modify the queue.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` contains no data-bearing packet type.
    pub fn peek_segment<P: SegmentationPolicy + ?Sized>(
        &self,
        t: SimTime,
        policy: &P,
        allowed: &[PacketType],
    ) -> Option<SegmentPlan> {
        let head = self.packets.front()?;
        if head.arrival > t {
            return None;
        }
        let remaining = head.size - self.head_sent;
        let ty = policy
            .next_type(remaining, allowed)
            .expect("allowed set contains no data-bearing packet type");
        let bytes = remaining.min(ty.payload_capacity() as u32);
        Some(SegmentPlan {
            ty,
            bytes,
            is_last: bytes == remaining,
            is_first: self.head_sent == 0,
            packet_seq: head.seq,
            packet_size: head.size,
            packet_arrival: head.arrival,
        })
    }

    /// Acknowledges delivery of `bytes` of the head packet, removing the
    /// packet once complete. Returns the completed packet, if any.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or `bytes` exceeds the head's remainder.
    pub fn advance(&mut self, bytes: u32) -> Option<AppPacket> {
        let head = self.packets.front().expect("advance on an empty queue");
        let remaining = head.size - self.head_sent;
        assert!(
            bytes <= remaining,
            "acknowledged {bytes} B but only {remaining} B outstanding"
        );
        self.backlog_bytes -= bytes as u64;
        self.head_sent += bytes;
        self.head_attempted = false;
        if self.head_sent == head.size {
            self.head_sent = 0;
            self.packets.pop_front()
        } else {
            None
        }
    }

    /// `true` if the current head segment was already transmitted (so the
    /// next transmission is an ARQ retransmission).
    pub fn head_attempted(&self) -> bool {
        self.head_attempted
    }

    /// Marks the current head segment as transmitted once.
    pub fn note_attempt(&mut self) {
        self.head_attempted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sar::MaxFirstPolicy;
    use btgs_traffic::FlowId;

    const PAPER: [PacketType; 2] = [PacketType::Dh1, PacketType::Dh3];

    fn pkt(seq: u64, size: u32, ms: u64) -> AppPacket {
        AppPacket::new(seq, FlowId(1), size, SimTime::from_millis(ms))
    }

    #[test]
    fn empty_queue() {
        let q = FlowQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.backlog_bytes(), 0);
        assert_eq!(q.head_arrival(), None);
        assert!(!q.has_data_at(SimTime::from_secs(10)));
        assert!(q
            .peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
            .is_none());
    }

    #[test]
    fn availability_respects_arrival_time() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 160, 20));
        assert!(!q.has_data_at(SimTime::from_millis(19)));
        assert!(
            q.has_data_at(SimTime::from_millis(20)),
            "arrival instant counts"
        );
        assert!(q.has_data_at(SimTime::from_millis(21)));
        assert!(q
            .peek_segment(SimTime::from_millis(19), &MaxFirstPolicy, &PAPER)
            .is_none());
        assert!(q
            .peek_segment(SimTime::from_millis(20), &MaxFirstPolicy, &PAPER)
            .is_some());
    }

    #[test]
    fn single_segment_life_cycle() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 144, 0));
        let seg = q
            .peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
            .unwrap();
        assert_eq!(seg.ty, PacketType::Dh3);
        assert_eq!(seg.bytes, 144);
        assert!(seg.is_last && seg.is_first);
        assert_eq!(seg.packet_seq, 0);
        assert_eq!(seg.packet_size, 144);
        // Peeking again returns the same segment (non-destructive).
        assert_eq!(
            q.peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
                .unwrap(),
            seg
        );
        let done = q.advance(seg.bytes);
        assert_eq!(done.unwrap().seq, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn multi_segment_packet_progress() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 200, 0)); // DH3(183) + DH1(17)
        let s1 = q
            .peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
            .unwrap();
        assert_eq!(
            (s1.ty, s1.bytes, s1.is_first, s1.is_last),
            (PacketType::Dh3, 183, true, false)
        );
        assert!(q.advance(s1.bytes).is_none(), "packet not yet complete");
        let s2 = q
            .peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
            .unwrap();
        assert_eq!(
            (s2.ty, s2.bytes, s2.is_first, s2.is_last),
            (PacketType::Dh1, 17, false, true)
        );
        let done = q.advance(s2.bytes);
        assert!(done.is_some());
        assert_eq!(q.backlog_bytes(), 0);
    }

    #[test]
    fn arq_retransmission_replays_segment() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 176, 0));
        let s = q
            .peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
            .unwrap();
        // Segment lost: do NOT advance. The next peek must be identical.
        let again = q
            .peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
            .unwrap();
        assert_eq!(s, again);
        q.advance(s.bytes);
        assert!(q.is_empty());
    }

    #[test]
    fn attempt_tracking_resets_per_segment() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 200, 0)); // two segments: DH3 + DH1
        assert!(!q.head_attempted());
        q.note_attempt();
        assert!(q.head_attempted(), "second send would be a retransmission");
        // Segment finally delivered: the next segment is a fresh one.
        let s = q
            .peek_segment(SimTime::ZERO, &MaxFirstPolicy, &PAPER)
            .unwrap();
        q.advance(s.bytes);
        assert!(!q.head_attempted());
    }

    #[test]
    fn fifo_across_packets_and_backlog() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 176, 0));
        q.push(pkt(1, 144, 20));
        assert_eq!(q.len(), 2);
        assert_eq!(q.backlog_bytes(), 320);
        let s = q
            .peek_segment(SimTime::from_millis(25), &MaxFirstPolicy, &PAPER)
            .unwrap();
        assert_eq!(s.packet_seq, 0, "head first");
        q.advance(s.bytes);
        let s = q
            .peek_segment(SimTime::from_millis(25), &MaxFirstPolicy, &PAPER)
            .unwrap();
        assert_eq!(s.packet_seq, 1);
        assert_eq!(q.backlog_bytes(), 144);
    }

    #[test]
    #[should_panic(expected = "arrival order")]
    fn out_of_order_push_panics() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 10, 20));
        q.push(pkt(1, 10, 10));
    }

    #[test]
    #[should_panic(expected = "empty queue")]
    fn advance_on_empty_panics() {
        let mut q = FlowQueue::new();
        q.advance(1);
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn over_advance_panics() {
        let mut q = FlowQueue::new();
        q.push(pkt(0, 10, 0));
        q.advance(11);
    }
}
