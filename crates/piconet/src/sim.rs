//! The piconet simulator: a slot-accurate model of master-driven TDD
//! polling.
//!
//! The master consults its [`Poller`] whenever the channel is free at an
//! even slot boundary. A poll becomes an *exchange*: a downlink baseband
//! packet (data segment or POLL) followed by the addressed slave's response
//! (data segment or NULL), after which the channel is free again. SCO
//! reservations pre-empt polling; ACL exchanges are sized to fit between
//! them.

use crate::config::{
    AllowedByCap, PiconetConfig, PiconetError, PresenceMask, SarPolicy, ScoBinding,
};
use crate::flow_table::FlowTable;
use crate::ledger::{PollCounters, SlotLedger};
use crate::poller::{ExchangeReport, MasterView, PollDecision, Poller, SegmentOutcome};
use crate::queue::{FlowQueue, SegmentPlan};
use crate::report::{FlowReport, RunReport};
use btgs_baseband::{
    next_master_tx_start, AmAddr, ChannelModel, Direction, LogicalChannel, PacketType, SLOT,
    SLOT_PAIR,
};
use btgs_des::{
    EventKey, EventQueue, HeapEventQueue, PendingEvents, Scheduler, SimDuration, SimTime, Simulator,
};
use btgs_traffic::{AppPacket, Source};
use std::collections::{BTreeMap, VecDeque};

/// Destination of a source's packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Target {
    /// Index into the ACL flow tables.
    Flow(usize),
    /// Index into the SCO bindings.
    Sco(usize),
}

/// The event-scheduling surface the piconet handlers need.
///
/// Handlers used to take `&mut Scheduler<Ev, Q>` directly; the scatternet
/// layer drives the *same* handlers from a shared scheduler whose event
/// type wraps [`Ev`] with a piconet id. This trait is the seam: a plain
/// scheduler implements it 1:1 (the single-piconet path compiles to exactly
/// the old code), while the scatternet adapter tags every scheduled event
/// with its piconet before it reaches the shared queue.
pub(crate) trait EvSink {
    /// The current simulated time.
    fn now(&self) -> SimTime;
    /// Schedules `ev` at the absolute instant `at`.
    fn schedule_at(&mut self, at: SimTime, ev: Ev) -> EventKey;
    /// Cancels a pending event scheduled through this sink.
    fn cancel(&mut self, key: EventKey);
    /// The firing time of the next pending event — *any* event, including
    /// other piconets' in a scatternet (the same-instant-wake inlining in
    /// [`wake_now`] only needs a conservative answer).
    fn next_event_time(&mut self) -> Option<SimTime>;
}

impl<Q: PendingEvents<Ev>> EvSink for Scheduler<Ev, Q> {
    #[inline]
    fn now(&self) -> SimTime {
        Scheduler::now(self)
    }

    #[inline]
    fn schedule_at(&mut self, at: SimTime, ev: Ev) -> EventKey {
        Scheduler::schedule_at(self, at, ev)
    }

    #[inline]
    fn cancel(&mut self, key: EventKey) {
        let _ = Scheduler::cancel(self, key);
    }

    #[inline]
    fn next_event_time(&mut self) -> Option<SimTime> {
        Scheduler::next_event_time(self)
    }
}

/// One planned transmission direction of an exchange.
#[derive(Clone, Copy, Debug)]
enum PlannedTx {
    Data {
        flow_idx: usize,
        seg: SegmentPlan,
        delivered: bool,
        retransmission: bool,
    },
    Control {
        ty: PacketType,
    },
    Silent,
}

impl PlannedTx {
    fn slots(&self) -> u64 {
        match self {
            PlannedTx::Data { seg, .. } => seg.ty.slots(),
            PlannedTx::Control { ty } => ty.slots(),
            PlannedTx::Silent => 1,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct PendingExchange {
    start: SimTime,
    slave: AmAddr,
    channel: LogicalChannel,
    down: PlannedTx,
    up: PlannedTx,
}

#[derive(Debug)]
pub(crate) enum Ev {
    /// A higher-layer packet arrives at its queue.
    Arrival { source_idx: usize, pkt: AppPacket },
    /// The master re-evaluates what to do (channel known free).
    Wake,
    /// The in-flight ACL exchange (parked in [`World::pending_exchange`] —
    /// TDD allows only one, so the event stays payload-free and every
    /// event-queue slot small) completes.
    ExchangeDone,
    /// An SCO reservation completes.
    ScoDone { sco_idx: usize, start: SimTime },
    /// A packet relayed from another piconet (scatternet bridge or master
    /// relay) lands in the flow's queue. `pkt.arrival` is the handoff
    /// instant, which is also the event time.
    Relay { flow_idx: usize, pkt: AppPacket },
}

impl btgs_des::Tagged for Ev {
    const TAG_NAMES: &'static [&'static str] =
        &["arrival", "wake", "exchange_done", "sco_done", "relay"];

    fn tag(&self) -> u8 {
        match self {
            Ev::Arrival { .. } => 0,
            Ev::Wake => 1,
            Ev::ExchangeDone => 2,
            Ev::ScoDone { .. } => 3,
            Ev::Relay { .. } => 4,
        }
    }
}

pub(crate) struct SourceSlot {
    pub(crate) source: Box<dyn Source>,
    pub(crate) target: Target,
}

struct ScoRt {
    binding: ScoBinding,
    queue: FlowQueue,
    report: FlowReport,
}

/// A higher-layer packet that completed delivery on a capture-marked flow,
/// waiting in the [`World::outbox`] for the scatternet layer to route.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Captured {
    /// Dense index of the flow the packet completed on.
    pub(crate) flow_idx: usize,
    /// The completed higher-layer packet (with this hop's arrival time).
    pub(crate) pkt: AppPacket,
    /// The delivery instant of the packet's last segment.
    pub(crate) at: SimTime,
}

pub(crate) struct World {
    pub(crate) table: FlowTable,
    /// Per-flow allowed packet types, pre-filtered by slot cap so the hot
    /// path never builds a fresh `Vec` per exchange.
    allowed: Vec<AllowedByCap>,
    sar: SarPolicy,
    down_queues: Vec<Option<FlowQueue>>,
    up_queues: Vec<Option<FlowQueue>>,
    reports: Vec<FlowReport>,
    pub(crate) sources: Vec<SourceSlot>,
    poller: Option<Box<dyn Poller>>,
    channel: Box<dyn ChannelModel>,
    sco: Vec<ScoRt>,
    /// Memoised [`World::next_sco_after`] result: `(asked, reservation)`.
    /// Valid for any query instant in `[asked, reservation)`, because the
    /// reservation grids are static and nothing lies strictly between.
    sco_cache: Option<(SimTime, SimTime)>,
    /// The single in-flight ACL exchange (the master's TDD discipline
    /// allows no more), resolved by [`Ev::ExchangeDone`].
    pending_exchange: Option<PendingExchange>,
    busy_until: SimTime,
    wake: Option<(SimTime, EventKey)>,
    warmup: SimTime,
    /// Per-slave presence windows (bridge slaves in a scatternet); the
    /// default mask reports every slave always present and costs nothing.
    pub(crate) presence: PresenceMask,
    /// Latest admissible arrival instant: arrivals past the run horizon are
    /// never scheduled, so infinite sources cannot outrun the run loop.
    pub(crate) horizon: SimTime,
    /// `capture[idx]`: completed deliveries of flow `idx` are pushed to the
    /// [`World::outbox`] for scatternet routing. All-false outside a
    /// scatternet.
    pub(crate) capture: Vec<bool>,
    /// Packets captured by the current event, drained by the scatternet
    /// loop after each handler returns. Pre-reserved; empty in steady state.
    pub(crate) outbox: Vec<Captured>,
    ledger: SlotLedger,
    gs_polls: PollCounters,
    be_polls: PollCounters,
    /// Arrival batching factor (see [`PiconetConfig::arrival_batch`]);
    /// 1 = one engine event per source packet.
    arrival_batch: u32,
    /// Per-source pending *future* arrival instants of packets that were
    /// materialized eagerly (batched) into their queues. The master's idle
    /// and sleep wake-ups clamp to the earliest of these, replacing the
    /// per-packet `Ev::Arrival` wake-up batching elides. Parallel to
    /// `sources`; empty deques when batching is off.
    batched: Vec<VecDeque<SimTime>>,
    /// `chain_entry[idx]`: flow `idx` is the entry hop of a scatternet
    /// chain — packets ingressing it are counted in
    /// [`World::chain_inflight`]. All-false outside a scatternet.
    pub(crate) chain_entry: Vec<bool>,
    /// Conservative count of chain packets currently inside this piconet
    /// (entered or injected, not yet terminated or staged out). The island
    /// engine's adaptive phase widening treats a piconet with zero
    /// in-flight chain traffic *and* no imminent entry arrival as unable
    /// to stage relays.
    pub(crate) chain_inflight: u64,
    /// Per-source instant of the pending `Ev::Arrival` (`SimTime::MAX`
    /// when the source is exhausted or past the horizon). Parallel to
    /// `sources`; read by the island engine's widening logic.
    pub(crate) next_arrival: Vec<SimTime>,
}

impl World {
    /// Builds the per-piconet simulation state from a configuration, a
    /// poller and a channel model. Shared by [`PiconetSim`] and the
    /// scatternet simulator (which builds one world per piconet).
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub(crate) fn build(
        config: &PiconetConfig,
        poller: Box<dyn Poller>,
        channel: Box<dyn ChannelModel>,
    ) -> Result<World, PiconetError> {
        config.validate()?;
        // `config.validate()` above already ran `validate_flows`.
        let table = FlowTable::from_validated(config.flows.clone());
        let allowed: Vec<AllowedByCap> = table
            .specs()
            .iter()
            .map(|f| config.allowed_by_cap_for(f))
            .collect();
        let down_queues = table
            .specs()
            .iter()
            .map(|f| f.direction.is_downlink().then(FlowQueue::new))
            .collect();
        let up_queues = table
            .specs()
            .iter()
            .map(|f| f.direction.is_uplink().then(FlowQueue::new))
            .collect();
        let reports = table
            .specs()
            .iter()
            .map(|_| {
                let mut r = FlowReport::default();
                // Head-room so early in-window samples never grow the
                // buffer mid-run (it doubles amortized beyond this).
                r.delay.reserve(1024);
                r
            })
            .collect();
        let sco = config
            .sco
            .iter()
            .map(|b| ScoRt {
                binding: b.clone(),
                queue: FlowQueue::new(),
                report: {
                    let mut r = FlowReport::default();
                    // Voice samples arrive every T_sco; same head-room as
                    // the ACL reports so recording stays allocation-free.
                    r.delay.reserve(4096);
                    r
                },
            })
            .collect();
        let capture = vec![false; table.len()];
        let chain_entry = vec![false; table.len()];
        Ok(World {
            table,
            allowed,
            sar: config.sar,
            down_queues,
            up_queues,
            reports,
            sources: Vec::new(),
            poller: Some(poller),
            channel,
            sco,
            sco_cache: None,
            pending_exchange: None,
            busy_until: SimTime::ZERO,
            wake: None,
            warmup: SimTime::ZERO + config.warmup,
            presence: config.presence.clone(),
            horizon: SimTime::MAX,
            capture,
            outbox: Vec::new(),
            ledger: SlotLedger::default(),
            gs_polls: PollCounters::default(),
            be_polls: PollCounters::default(),
            arrival_batch: config.arrival_batch,
            batched: Vec::new(),
            chain_entry,
            chain_inflight: 0,
            next_arrival: Vec::new(),
        })
    }

    /// Registers the traffic source of one flow (ACL or SCO voice).
    ///
    /// # Errors
    ///
    /// Returns an error if the flow id is unknown or already has a source.
    pub(crate) fn add_source(&mut self, source: Box<dyn Source>) -> Result<(), PiconetError> {
        let id = source.flow();
        let target = if let Some(idx) = self.table.idx_of(id) {
            Target::Flow(idx.get())
        } else if let Some(idx) = self
            .sco
            .iter()
            .position(|s| s.binding.voice_flow == Some(id))
        {
            Target::Sco(idx)
        } else {
            return Err(PiconetError(format!("no flow {id} configured")));
        };
        if self.sources.iter().any(|s| s.target == target) {
            return Err(PiconetError(format!("flow {id} already has a source")));
        }
        self.sources.push(SourceSlot { source, target });
        // At most `arrival_batch - 1` instants are pending per source, so
        // the deque never reallocates mid-run (the zero-alloc gates cover
        // the batched steady state too).
        self.batched.push(VecDeque::with_capacity(
            self.arrival_batch.saturating_sub(1) as usize,
        ));
        self.next_arrival.push(SimTime::MAX);
        Ok(())
    }

    /// Checks that every flow has a source. `relay_fed(idx)` exempts flows
    /// the scatternet feeds by relaying (they have no source of their own).
    ///
    /// # Errors
    ///
    /// Returns an error naming the first flow without a source.
    pub(crate) fn check_sources(
        &self,
        relay_fed: &dyn Fn(usize) -> bool,
    ) -> Result<(), PiconetError> {
        for (idx, f) in self.table.specs().iter().enumerate() {
            if relay_fed(idx) {
                continue;
            }
            if !self.sources.iter().any(|s| s.target == Target::Flow(idx)) {
                return Err(PiconetError(format!("flow {} has no source", f.id)));
            }
        }
        for (idx, s) in self.sco.iter().enumerate() {
            if let Some(vf) = s.binding.voice_flow {
                if !self
                    .sources
                    .iter()
                    .any(|src| src.target == Target::Sco(idx))
                {
                    return Err(PiconetError(format!("SCO voice flow {vf} has no source")));
                }
            }
        }
        Ok(())
    }

    /// Checks that the warm-up ends before `horizon`.
    ///
    /// # Errors
    ///
    /// Returns an error when it does not.
    pub(crate) fn check_horizon(&self, horizon: SimTime) -> Result<(), PiconetError> {
        if self.warmup >= horizon {
            return Err(PiconetError(format!(
                "warm-up {} must end before the horizon {horizon}",
                self.warmup
            )));
        }
        Ok(())
    }

    /// Assembles the per-flow [`RunReport`] of a finished run.
    pub(crate) fn into_report(mut self, window_end: SimTime, events_processed: u64) -> RunReport {
        let mut per_flow = BTreeMap::new();
        // `self` is consumed: move the reports out instead of cloning their
        // (potentially large) delay-sample buffers.
        let reports = std::mem::take(&mut self.reports);
        for (f, report) in self.table.specs().iter().zip(reports) {
            per_flow.insert(f.id, report);
        }
        let mut sco_flows = Vec::new();
        for s in &mut self.sco {
            if let Some(id) = s.binding.voice_flow {
                per_flow.insert(id, std::mem::take(&mut s.report));
                sco_flows.push((id, s.binding.slave));
            }
        }
        RunReport {
            window_start: self.warmup,
            window_end,
            flows: self.table.specs().to_vec(),
            sco_flows,
            per_flow,
            ledger: self.ledger,
            gs_polls: self.gs_polls,
            be_polls: self.be_polls,
            events_processed,
            poller: self.poller.expect("poller present").name().to_owned(),
        }
    }

    /// `true` if one of this world's SCO bindings carries voice flow `id`.
    pub(crate) fn has_sco_voice(&self, id: btgs_traffic::FlowId) -> bool {
        self.sco.iter().any(|s| s.binding.voice_flow == Some(id))
    }

    /// Pre-sizes the relay machinery of a scatternet piconet: `capture`
    /// flags are set by the scatternet, the outbox and the relay-fed
    /// queues must absorb their steady-state depth without allocating.
    pub(crate) fn reserve_relay(&mut self, flow_idx: usize, queue_depth: usize) {
        self.outbox.reserve(32);
        if let Some(q) = self.down_queues[flow_idx].as_mut() {
            q.reserve(queue_depth);
        }
        if let Some(q) = self.up_queues[flow_idx].as_mut() {
            q.reserve(queue_depth);
        }
    }

    /// Dense index of the unique flow at `(slave, dir, channel)`, O(1) via
    /// the [`FlowTable`].
    fn flow_index(&self, slave: AmAddr, dir: Direction, channel: LogicalChannel) -> Option<usize> {
        self.table.at(slave, dir, channel).map(|idx| idx.get())
    }

    /// First SCO reservation strictly after `t`, or `None` without SCO.
    ///
    /// The result is cached: reservations form static periodic grids, so a
    /// result computed at `asked` stays the answer for every `t` up to (but
    /// excluding) that reservation. Wakes between two reservations — the
    /// common case — then cost two comparisons instead of a walk over every
    /// SCO link.
    fn next_sco_after(&mut self, t: SimTime) -> Option<SimTime> {
        if self.sco.is_empty() {
            return None;
        }
        if let Some((asked, res)) = self.sco_cache {
            if t >= asked && t < res {
                return Some(res);
            }
        }
        let res = self
            .sco
            .iter()
            .map(|s| {
                s.binding
                    .link
                    .next_reservation(t + SimDuration::from_nanos(1))
            })
            .min()
            .expect("sco is non-empty");
        self.sco_cache = Some((t, res));
        Some(res)
    }

    /// Whole slots available before the next SCO reservation.
    fn window_slots(&mut self, now: SimTime) -> u64 {
        match self.next_sco_after(now) {
            Some(res) => (res - now).div_duration(SLOT),
            None => u64::MAX,
        }
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.warmup
    }

    /// `true` if arrivals of `target` may be materialized eagerly: their
    /// packets are invisible to the master until it polls (uplink ACL data
    /// is announced only in the slave's response; SCO voice is consumed at
    /// reservation instants with `has_data_at` gating), so pre-queueing
    /// future packets is unobservable. Downlink arrivals notify the poller
    /// the instant they land and must keep one event per packet.
    fn batchable(&self, target: Target) -> bool {
        self.arrival_batch > 1
            && match target {
                Target::Flow(idx) => self.up_queues[idx].is_some(),
                Target::Sco(_) => true,
            }
    }

    /// The earliest strictly-future batched arrival instant, dropping
    /// instants at or before `now` (those packets are already visible to
    /// any decision made at `now`). `None` with batching off or no pending
    /// batched arrivals.
    fn next_batched_arrival(&mut self, now: SimTime) -> Option<SimTime> {
        if self.arrival_batch <= 1 {
            return None;
        }
        let mut next: Option<SimTime> = None;
        for q in &mut self.batched {
            while let Some(&front) = q.front() {
                if front > now {
                    next = Some(next.map_or(front, |n| n.min(front)));
                    break;
                }
                q.pop_front();
            }
        }
        next
    }
}

fn ensure_wake<S: EvSink>(sched: &mut S, w: &mut World, t: SimTime) {
    let target = next_master_tx_start(t.max(sched.now()));
    if let Some((existing, key)) = w.wake {
        if existing <= target {
            return;
        }
        sched.cancel(key);
    }
    let key = sched.schedule_at(target, Ev::Wake);
    w.wake = Some((target, key));
}

/// Re-evaluates the master *now* — the instant an exchange or SCO
/// reservation ends, which is always on the slot grid.
///
/// Equivalent to `ensure_wake(sched, w, now)` followed by the queue
/// round-trip of the resulting same-instant `Ev::Wake`, but skips the
/// push/pop/dispatch when no other event is pending at this instant. When
/// one is (e.g. an arrival stamped exactly at the exchange boundary), the
/// wake is queued as before so the strict FIFO rule — same-time arrivals
/// become visible before the master decides — is preserved bit for bit.
fn wake_now<S: EvSink>(sched: &mut S, w: &mut World) {
    let now = sched.now();
    debug_assert_eq!(now, next_master_tx_start(now), "wake_now off the slot grid");
    if let Some((t, key)) = w.wake {
        if t == now {
            return; // a Wake for this instant is already queued; FIFO runs it
        }
        sched.cancel(key);
        w.wake = None;
    }
    match sched.next_event_time() {
        Some(t) if t <= now => {
            let key = sched.schedule_at(now, Ev::Wake);
            w.wake = Some((now, key));
        }
        _ => on_wake(sched, w),
    }
}

pub(crate) fn handle<S: EvSink>(sched: &mut S, w: &mut World, ev: Ev) {
    match ev {
        Ev::Arrival { source_idx, pkt } => on_arrival(sched, w, source_idx, pkt),
        Ev::Wake => on_wake(sched, w),
        Ev::ExchangeDone => {
            let ex = w.pending_exchange.take().expect("an exchange is in flight");
            on_exchange_done(sched, w, ex);
        }
        Ev::ScoDone { sco_idx, start } => on_sco_done(sched, w, sco_idx, start),
        Ev::Relay { flow_idx, pkt } => on_relay(sched, w, flow_idx, pkt),
    }
}

/// Books a higher-layer packet into its flow queue: offered-traffic
/// accounting, the queue push, and the poller's downlink notification —
/// shared verbatim by the arrival and relay paths so both stay bit-for-bit
/// identical in accounting order.
fn accept_flow_packet(w: &mut World, idx: usize, pkt: AppPacket, now: SimTime) {
    if w.in_window(now) {
        w.reports[idx].offered_packets += 1;
        w.reports[idx].offered_bytes += pkt.size as u64;
    }
    // A populated downlink queue slot *is* the direction marker —
    // no need to consult the flow spec on this per-packet path.
    if let Some(q) = w.down_queues[idx].as_mut() {
        q.push(pkt);
        let flow_id = w.table.specs()[idx].id;
        w.poller
            .as_mut()
            .expect("poller present")
            .on_downlink_arrival(flow_id, now);
    } else {
        w.up_queues[idx]
            .as_mut()
            .expect("uplink queue exists")
            .push(pkt);
    }
}

/// Books a higher-layer packet into its destination queue — ACL flow or
/// SCO voice — with its offered-traffic accounting at instant `at`. The
/// one enqueue path shared by arrivals (`at` = the event instant), relays
/// (same) and batched pre-materialization (`at` = the packet's future
/// arrival instant; the queues' availability gating keeps it invisible
/// until then).
fn ingress_packet(w: &mut World, target: Target, pkt: AppPacket, at: SimTime) {
    match target {
        Target::Flow(idx) => {
            if w.chain_entry[idx] {
                w.chain_inflight += 1;
            }
            accept_flow_packet(w, idx, pkt, at);
        }
        Target::Sco(idx) => {
            if w.in_window(at) {
                w.sco[idx].report.offered_packets += 1;
                w.sco[idx].report.offered_bytes += pkt.size as u64;
            }
            w.sco[idx].queue.push(pkt);
        }
    }
}

/// A free master may want to react to fresh data (e.g. serve a downlink
/// packet); a busy one re-evaluates at exchange end anyway. Tail shared by
/// the arrival and relay paths.
fn wake_if_free<S: EvSink>(sched: &mut S, w: &mut World, now: SimTime) {
    if now >= w.busy_until {
        ensure_wake(sched, w, now);
    }
}

/// Fetches and schedules the source's next packet(s). Arrivals past the
/// run horizon would never be popped; skipping them keeps infinite sources
/// (greedy, Poisson) from piling dead events into the queue.
///
/// With batching enabled and a batchable target, up to `arrival_batch - 1`
/// future packets are materialized into the queue right away (offered
/// accounting at their own arrival instants) before one real `Ev::Arrival`
/// is scheduled — one engine event then carries a whole batch.
fn arm_next_arrival<S: EvSink>(sched: &mut S, w: &mut World, source_idx: usize) {
    let now = sched.now();
    let target = w.sources[source_idx].target;
    if w.batchable(target) {
        // Every previous batch instant is at or before this event (the
        // scheduled arrival is drawn after the batch): drop them so the
        // deque never outgrows its `arrival_batch - 1` capacity.
        while w.batched[source_idx].front().is_some_and(|&f| f <= now) {
            w.batched[source_idx].pop_front();
        }
        debug_assert!(w.batched[source_idx].is_empty());
        for _ in 1..w.arrival_batch {
            let Some(next) = w.sources[source_idx].source.next_packet() else {
                w.next_arrival[source_idx] = SimTime::MAX;
                return;
            };
            debug_assert!(next.arrival >= now, "sources must be time-ordered");
            if next.arrival > w.horizon {
                w.next_arrival[source_idx] = SimTime::MAX;
                return;
            }
            w.batched[source_idx].push_back(next.arrival);
            ingress_packet(w, target, next, next.arrival);
        }
    }
    w.next_arrival[source_idx] = SimTime::MAX;
    if let Some(next) = w.sources[source_idx].source.next_packet() {
        debug_assert!(next.arrival >= now, "sources must be time-ordered");
        if next.arrival <= w.horizon {
            w.next_arrival[source_idx] = next.arrival;
            sched.schedule_at(
                next.arrival,
                Ev::Arrival {
                    source_idx,
                    pkt: next,
                },
            );
        }
    }
}

fn on_arrival<S: EvSink>(sched: &mut S, w: &mut World, source_idx: usize, pkt: AppPacket) {
    let now = sched.now();
    debug_assert_eq!(pkt.arrival, now);
    debug_assert!(
        pkt.arrival <= w.horizon,
        "scheduled arrival {} exceeds the run horizon {}",
        pkt.arrival,
        w.horizon
    );
    let target = w.sources[source_idx].target;
    ingress_packet(w, target, pkt, now);
    // Re-arm before the wake check so a same-instant next arrival is
    // queued ahead of any same-instant Wake (the strict FIFO rule).
    arm_next_arrival(sched, w, source_idx);
    wake_if_free(sched, w, now);
}

/// A packet handed over from another piconet (scatternet bridge or master
/// relay): same bookkeeping as an arrival, but there is no source to
/// re-arm — the next relay is scheduled by the scatternet layer when its
/// packet completes the previous hop.
fn on_relay<S: EvSink>(sched: &mut S, w: &mut World, flow_idx: usize, pkt: AppPacket) {
    let now = sched.now();
    debug_assert_eq!(pkt.arrival, now, "relay handoff lands at its event time");
    ingress_packet(w, Target::Flow(flow_idx), pkt, now);
    wake_if_free(sched, w, now);
}

fn on_wake<S: EvSink>(sched: &mut S, w: &mut World) {
    let now = sched.now();
    if let Some((t, _)) = w.wake {
        if t == now {
            w.wake = None;
        }
    }
    if now < w.busy_until {
        ensure_wake(sched, w, w.busy_until);
        return;
    }
    debug_assert_eq!(now, next_master_tx_start(now), "wake off the slot grid");

    // SCO reservations pre-empt everything.
    for i in 0..w.sco.len() {
        if w.sco[i].binding.link.next_reservation(now) == now {
            start_sco(sched, w, i, now);
            return;
        }
    }

    let view = MasterView::with_presence(now, &w.table, &w.down_queues, &w.presence);
    let decision = w
        .poller
        .as_mut()
        .expect("poller present")
        .decide(now, &view);

    match decision {
        PollDecision::Poll { slave, channel } => start_exchange(sched, w, now, slave, channel),
        PollDecision::Idle { until } => {
            let mut t = until.max(now + SimDuration::from_nanos(1));
            if let Some(res) = w.next_sco_after(now) {
                t = t.min(res);
            }
            // A batched arrival would have woken a free master with its
            // own (elided) `Ev::Arrival`: clamp the idle period instead.
            if let Some(b) = w.next_batched_arrival(now) {
                t = t.min(b);
            }
            ensure_wake(sched, w, t);
        }
        PollDecision::Sleep => {
            let mut t = w.next_sco_after(now);
            // Same as Idle: batched arrivals must still rouse a sleeping
            // master exactly when their per-packet events would have.
            if let Some(b) = w.next_batched_arrival(now) {
                t = Some(t.map_or(b, |r| r.min(b)));
            }
            if let Some(t) = t {
                ensure_wake(sched, w, t);
            }
        }
    }
}

/// The next segment a flow would transmit through a `cap`-slot budget, using
/// its precomputed [`AllowedByCap`] table — no per-exchange filtering or
/// allocation.
fn plan_direction(
    queue: Option<&FlowQueue>,
    allowed: &AllowedByCap,
    now: SimTime,
    sar: SarPolicy,
    cap: u64,
) -> Option<SegmentPlan> {
    let usable = allowed.data_types(cap)?;
    queue?.peek_segment(now, &sar, usable)
}

fn start_exchange<S: EvSink>(
    sched: &mut S,
    w: &mut World,
    now: SimTime,
    slave: AmAddr,
    channel: LogicalChannel,
) {
    let sco_window = w.window_slots(now);
    // A part-time (bridge) slave bounds the exchange again: it must finish
    // before the slave leaves for its other piconet. Always-present slaves
    // report an unbounded window, so the single-piconet path is unchanged.
    let presence_window = w.presence.remaining_slots(slave, now);
    let window = sco_window.min(presence_window);
    if window < 2 {
        // Cannot even fit POLL+NULL before the blocking boundary: wake at
        // the earliest instant a blocker clears (the SCO reservation runs,
        // or the bridge slave returns).
        let mut t = SimTime::MAX;
        if sco_window < 2 {
            t = t.min(w.next_sco_after(now).expect("window only bounded by SCO"));
        }
        if presence_window < 2 {
            t = t.min(w.presence.next_present(slave, now));
        }
        debug_assert!(t < SimTime::MAX, "window < 2 implies a blocker");
        // A batched arrival during the wait would have re-woken the free
        // master; keep that wake-up without its per-packet event.
        if let Some(b) = w.next_batched_arrival(now) {
            t = t.min(b);
        }
        ensure_wake(sched, w, t);
        return;
    }
    let cap = window / 2;

    let down_idx = w.flow_index(slave, Direction::MasterToSlave, channel);
    let up_idx = w.flow_index(slave, Direction::SlaveToMaster, channel);

    let down_plan = down_idx.and_then(|i| {
        plan_direction(w.down_queues[i].as_ref(), &w.allowed[i], now, w.sar, cap)
            .map(|seg| (i, seg))
    });
    // The slave transmits only data that was available when the master
    // started transmitting (the paper's strict availability rule).
    let up_plan = up_idx.and_then(|i| {
        plan_direction(w.up_queues[i].as_ref(), &w.allowed[i], now, w.sar, cap).map(|seg| (i, seg))
    });

    // Radio outcomes are drawn now, in a fixed order, for determinism. If
    // the downlink packet is lost, the slave never hears its address and
    // stays silent for one slot.
    let (down, down_ok) = match down_plan {
        Some((flow_idx, seg)) => {
            let q = w.down_queues[flow_idx].as_mut().expect("downlink queue");
            let retransmission = q.head_attempted();
            q.note_attempt();
            let delivered = w.channel.deliver(seg.ty, seg.bytes as usize);
            (
                PlannedTx::Data {
                    flow_idx,
                    seg,
                    delivered,
                    retransmission,
                },
                delivered,
            )
        }
        None => {
            let delivered = w.channel.deliver(PacketType::Poll, 0);
            (
                PlannedTx::Control {
                    ty: PacketType::Poll,
                },
                delivered,
            )
        }
    };

    let up = if !down_ok {
        PlannedTx::Silent
    } else {
        match up_plan {
            Some((flow_idx, seg)) => {
                let q = w.up_queues[flow_idx].as_mut().expect("uplink queue");
                let retransmission = q.head_attempted();
                q.note_attempt();
                let delivered = w.channel.deliver(seg.ty, seg.bytes as usize);
                PlannedTx::Data {
                    flow_idx,
                    seg,
                    delivered,
                    retransmission,
                }
            }
            None => {
                let _ = w.channel.deliver(PacketType::Null, 0);
                PlannedTx::Control {
                    ty: PacketType::Null,
                }
            }
        }
    };

    let duration = (down.slots() + up.slots()) * SLOT;
    debug_assert_eq!((now + duration).align_down(SLOT_PAIR), now + duration);
    w.busy_until = now + duration;
    debug_assert!(w.pending_exchange.is_none(), "one exchange at a time");
    w.pending_exchange = Some(PendingExchange {
        start: now,
        slave,
        channel,
        down,
        up,
    });
    sched.schedule_at(w.busy_until, Ev::ExchangeDone);
}

fn on_exchange_done<S: EvSink>(sched: &mut S, w: &mut World, ex: PendingExchange) {
    let now = sched.now();
    let in_window = w.in_window(ex.start);

    // Downlink delivery lands when the downlink packet ends.
    let down_end = ex.start + ex.down.slots() * SLOT;
    apply_delivery(w, ex.down, down_end, in_window, Direction::MasterToSlave);
    apply_delivery(w, ex.up, now, in_window, Direction::SlaveToMaster);

    if in_window {
        for (tx, _dir) in [
            (ex.down, Direction::MasterToSlave),
            (ex.up, Direction::SlaveToMaster),
        ] {
            match tx {
                PlannedTx::Data {
                    seg,
                    retransmission,
                    ..
                } => w
                    .ledger
                    .add_data(ex.channel, seg.ty.slots(), retransmission),
                PlannedTx::Control { ty } => w.ledger.add_overhead(ex.channel, ty.slots()),
                PlannedTx::Silent => w.ledger.add_overhead(ex.channel, 1),
            }
        }
        let successful =
            matches!(ex.down, PlannedTx::Data { .. }) || matches!(ex.up, PlannedTx::Data { .. });
        match ex.channel {
            LogicalChannel::GuaranteedService => w.gs_polls.record(successful),
            LogicalChannel::BestEffort => w.be_polls.record(successful),
        }
    }

    let report = ExchangeReport {
        start: ex.start,
        end: now,
        slave: ex.slave,
        channel: ex.channel,
        down: to_outcome(w, ex.down),
        up: to_outcome(w, ex.up),
    };
    w.poller
        .as_mut()
        .expect("poller present")
        .on_exchange(&report);

    wake_now(sched, w);
}

fn to_outcome(w: &World, tx: PlannedTx) -> SegmentOutcome {
    match tx {
        PlannedTx::Data {
            flow_idx,
            seg,
            delivered,
            retransmission,
        } => SegmentOutcome::Data {
            flow: w.table.specs()[flow_idx].id,
            segment: seg,
            delivered,
            retransmission,
        },
        PlannedTx::Control { ty } => SegmentOutcome::Control { ty },
        PlannedTx::Silent => SegmentOutcome::Silent,
    }
}

fn apply_delivery(w: &mut World, tx: PlannedTx, at: SimTime, in_window: bool, dir: Direction) {
    let PlannedTx::Data {
        flow_idx,
        seg,
        delivered,
        ..
    } = tx
    else {
        return;
    };
    if !delivered {
        return; // ARQ: the segment stays at the head of its queue.
    }
    let queue = match dir {
        Direction::MasterToSlave => w.down_queues[flow_idx].as_mut(),
        Direction::SlaveToMaster => w.up_queues[flow_idx].as_mut(),
    }
    .expect("queue exists for delivering flow");
    let completed = queue.advance(seg.bytes);
    if in_window {
        let report = &mut w.reports[flow_idx];
        report.delivered_bytes += seg.bytes as u64;
        if let Some(pkt) = completed {
            report.delivered_packets += 1;
            if pkt.arrival >= w.warmup {
                report.delay.record(at - pkt.arrival);
            }
        }
    }
    // Relay capture runs regardless of the measurement window: a scatternet
    // must forward warm-up packets too, it just does not record them.
    if let Some(pkt) = completed {
        if w.capture[flow_idx] {
            w.outbox.push(Captured { flow_idx, pkt, at });
        }
    }
}

fn start_sco<S: EvSink>(sched: &mut S, w: &mut World, sco_idx: usize, now: SimTime) {
    w.busy_until = now + SLOT_PAIR;
    sched.schedule_at(
        w.busy_until,
        Ev::ScoDone {
            sco_idx,
            start: now,
        },
    );
}

fn on_sco_done<S: EvSink>(sched: &mut S, w: &mut World, sco_idx: usize, start: SimTime) {
    let now = sched.now();
    let in_window = w.in_window(start);
    if in_window {
        w.ledger.sco += 2;
    }
    let ty = w.sco[sco_idx].binding.link.packet();
    let capacity = ty.payload_capacity() as u32;
    // Move up to one HV payload of voice data; SCO has no retransmission,
    // lost payloads are simply gone.
    if w.sco[sco_idx].queue.has_data_at(start) {
        let bytes = w.sco[sco_idx]
            .queue
            .head_remaining()
            .expect("has data")
            .min(capacity);
        let delivered = w.channel.deliver(ty, bytes as usize);
        let warmup = w.warmup;
        let sco = &mut w.sco[sco_idx];
        let completed = sco.queue.advance(bytes);
        if in_window {
            if delivered {
                sco.report.delivered_bytes += bytes as u64;
            } else {
                sco.report.lost_bytes += bytes as u64;
            }
            if let Some(pkt) = completed {
                if delivered {
                    sco.report.delivered_packets += 1;
                    if pkt.arrival >= warmup {
                        sco.report.delay.record(now - pkt.arrival);
                    }
                }
            }
        }
    } else {
        // The reservation burns its slots regardless.
        let _ = w.channel.deliver(ty, 0);
    }
    wake_now(sched, w);
}

/// A configured piconet simulation, ready to run.
///
/// # Examples
///
/// ```
/// use btgs_piconet::{FlowSpec, PiconetConfig, PiconetSim, RoundRobinForTest};
/// use btgs_baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
/// use btgs_des::{DetRng, SimDuration, SimTime};
/// use btgs_traffic::{CbrSource, FlowId};
///
/// let config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
///     .with_flow(FlowSpec::new(
///         FlowId(1),
///         AmAddr::new(1).unwrap(),
///         Direction::SlaveToMaster,
///         LogicalChannel::BestEffort,
///     ));
/// let mut sim = PiconetSim::new(
///     config,
///     Box::new(RoundRobinForTest::default()),
///     Box::new(IdealChannel),
/// ).unwrap();
/// sim.add_source(Box::new(CbrSource::new(
///     FlowId(1),
///     SimDuration::from_millis(20),
///     160,
///     160,
///     DetRng::seed_from_u64(1),
/// ))).unwrap();
/// let report = sim.run(SimTime::from_secs(2)).unwrap();
/// assert!(report.throughput_kbps(FlowId(1)) > 60.0);
/// ```
pub struct PiconetSim {
    sim: Engine,
}

/// Selects the pending-event structure backing a [`PiconetSim`] run.
///
/// Production runs use the timing wheel; the heap exists so differential
/// tests can demand byte-identical [`RunReport`]s from both backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EventQueueBackend {
    /// The hierarchical timing wheel ([`btgs_des::EventQueue`]).
    #[default]
    TimingWheel,
    /// The `BinaryHeap` reference ([`btgs_des::HeapEventQueue`]).
    BinaryHeap,
}

/// The simulator monomorphised per queue backend: the run loop is matched
/// once, so backend selection costs nothing per event.
enum Engine {
    Wheel(Simulator<World, Ev, EventQueue<Ev>>),
    Heap(Simulator<World, Ev, HeapEventQueue<Ev>>),
}

impl Engine {
    fn world_mut(&mut self) -> &mut World {
        match self {
            Engine::Wheel(s) => s.state_mut(),
            Engine::Heap(s) => s.state_mut(),
        }
    }
}

/// Seeds one world's initial arrivals and wake-up. Same-time events fire in
/// scheduling order, so packets arriving at t = 0 are already queued when
/// the master makes its first decision. Shared by the single-piconet run
/// loop and the scatternet (which seeds every piconet through its tagging
/// [`EvSink`]).
pub(crate) fn seed_world<S: EvSink>(sched: &mut S, w: &mut World) {
    for source_idx in 0..w.sources.len() {
        if let Some(pkt) = w.sources[source_idx].source.next_packet() {
            if pkt.arrival <= w.horizon {
                w.next_arrival[source_idx] = pkt.arrival;
                sched.schedule_at(pkt.arrival, Ev::Arrival { source_idx, pkt });
            }
        }
    }
    sched.schedule_at(SimTime::ZERO, Ev::Wake);
    // The initial Wake is tracked manually (ensure_wake was not used).
    w.wake = None;
}

/// Seeds the initial arrivals and wake-up, then drives the run loop to
/// `horizon`, invoking `probe` at `checkpoint` and again when the loop
/// finishes.
fn drive<Q: PendingEvents<Ev>>(
    sim: &mut Simulator<World, Ev, Q>,
    checkpoint: SimTime,
    horizon: SimTime,
    probe: &mut dyn FnMut(),
) {
    let (sched, w) = sim.split_mut();
    w.horizon = horizon;
    seed_world(sched, w);

    sim.run_until(checkpoint, handle);
    probe();
    sim.run_until(horizon, handle);
    probe();
}

impl PiconetSim {
    /// Builds a simulation from a validated configuration, a poller and a
    /// channel model, backed by the default timing-wheel event queue.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(
        config: PiconetConfig,
        poller: Box<dyn Poller>,
        channel: Box<dyn ChannelModel>,
    ) -> Result<PiconetSim, PiconetError> {
        PiconetSim::with_backend(config, poller, channel, EventQueueBackend::TimingWheel)
    }

    /// Builds a simulation on an explicit event-queue backend (differential
    /// testing of the wheel against the heap reference).
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn with_backend(
        config: PiconetConfig,
        poller: Box<dyn Poller>,
        channel: Box<dyn ChannelModel>,
        backend: EventQueueBackend,
    ) -> Result<PiconetSim, PiconetError> {
        let world = World::build(&config, poller, channel)?;
        let sim = match backend {
            EventQueueBackend::TimingWheel => {
                Engine::Wheel(Simulator::with_queue(world, EventQueue::new()))
            }
            EventQueueBackend::BinaryHeap => {
                Engine::Heap(Simulator::with_queue(world, HeapEventQueue::new()))
            }
        };
        Ok(PiconetSim { sim })
    }

    /// Registers the traffic source of one flow (ACL or SCO voice).
    ///
    /// # Errors
    ///
    /// Returns an error if the flow id is unknown or already has a source.
    pub fn add_source(&mut self, source: Box<dyn Source>) -> Result<(), PiconetError> {
        self.sim.world_mut().add_source(source)
    }

    /// Runs the simulation until `horizon` and returns the report.
    ///
    /// # Errors
    ///
    /// Returns an error if any configured flow lacks a source or the
    /// simulation was already run.
    pub fn run(self, horizon: SimTime) -> Result<RunReport, PiconetError> {
        self.run_probed(horizon, horizon, &mut || {})
    }

    /// Runs to `horizon`, invoking `probe` when the clock reaches
    /// `checkpoint` and once more when the run loop finishes (before report
    /// assembly).
    ///
    /// The allocation-counting benches use this to bracket the steady-state
    /// window: the first call snapshots the allocator counters after warm-up
    /// growth has settled, the second reads them before the report's own
    /// allocations happen.
    ///
    /// # Errors
    ///
    /// Returns an error if any configured flow lacks a source or the
    /// simulation was already run.
    pub fn run_probed(
        mut self,
        checkpoint: SimTime,
        horizon: SimTime,
        probe: &mut dyn FnMut(),
    ) -> Result<RunReport, PiconetError> {
        // `self` is consumed, so a sim cannot run twice by construction.
        let w = self.sim.world_mut();
        w.check_sources(&|_| false)?;
        w.check_horizon(horizon)?;

        let (events_processed, w) = match self.sim {
            Engine::Wheel(mut sim) => {
                drive(&mut sim, checkpoint, horizon, probe);
                (sim.events_processed(), sim.into_state())
            }
            Engine::Heap(mut sim) => {
                drive(&mut sim, checkpoint, horizon, probe);
                (sim.events_processed(), sim.into_state())
            }
        };
        Ok(w.into_report(horizon, events_processed))
    }
}

/// A deliberately simple 1-poll-per-slave round-robin poller, used by this
/// crate's tests and doc examples. Real pollers live in `btgs-pollers` and
/// `btgs-core`.
#[derive(Debug, Default)]
pub struct RoundRobinForTest {
    cursor: usize,
}

impl Poller for RoundRobinForTest {
    fn decide(&mut self, _now: SimTime, view: &MasterView<'_>) -> PollDecision {
        let slaves = view.slaves();
        if slaves.is_empty() {
            return PollDecision::Sleep;
        }
        let slave = slaves[self.cursor % slaves.len()];
        self.cursor += 1;
        PollDecision::Poll {
            slave,
            channel: LogicalChannel::BestEffort,
        }
    }

    fn on_exchange(&mut self, _report: &ExchangeReport) {}

    fn name(&self) -> &'static str {
        "round-robin-test"
    }
}
