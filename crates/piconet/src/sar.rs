//! Segmentation and reassembly (SAR) of higher-layer packets into baseband
//! packets.
//!
//! The paper's segmentation policy: *"a segmentation policy may require that
//! the largest available baseband packet is used, unless there is a smaller
//! baseband packet available in which the remainder of the higher layer
//! packet fits."* [`MaxFirstPolicy`] implements exactly that; the number of
//! segments `n_i(L)` it produces drives the poll efficiency `eta` of the
//! paper's Eq. 4.

use btgs_baseband::{best_fit, largest, PacketType};

/// Chooses the baseband packet type for each segment of a higher-layer
/// packet.
pub trait SegmentationPolicy {
    /// The packet type to use for the next segment, given that `remaining`
    /// bytes of the higher-layer packet are still to be sent, or `None` if
    /// `allowed` contains no data-bearing type.
    fn next_type(&self, remaining: u32, allowed: &[PacketType]) -> Option<PacketType>;
}

/// The paper's policy: use the largest allowed packet, unless the remainder
/// fits into a smaller one (then use the smallest sufficient one).
///
/// # Examples
///
/// ```
/// use btgs_piconet::{MaxFirstPolicy, SegmentationPolicy};
/// use btgs_baseband::PacketType;
///
/// let allowed = [PacketType::Dh1, PacketType::Dh3];
/// let policy = MaxFirstPolicy;
/// // 144 bytes fit a DH3 (183 B) but not a DH1 (27 B):
/// assert_eq!(policy.next_type(144, &allowed), Some(PacketType::Dh3));
/// // A 20-byte remainder fits the DH1:
/// assert_eq!(policy.next_type(20, &allowed), Some(PacketType::Dh1));
/// // 200 bytes fit nothing whole -> largest (DH3) carries the first chunk:
/// assert_eq!(policy.next_type(200, &allowed), Some(PacketType::Dh3));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaxFirstPolicy;

impl SegmentationPolicy for MaxFirstPolicy {
    fn next_type(&self, remaining: u32, allowed: &[PacketType]) -> Option<PacketType> {
        match best_fit(remaining as usize, allowed) {
            Some(t) => Some(t),
            None => largest(allowed),
        }
    }
}

/// A policy that always uses the largest allowed packet, even for tiny
/// remainders. Wastes air time; useful as an ablation baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysLargestPolicy;

impl SegmentationPolicy for AlwaysLargestPolicy {
    fn next_type(&self, _remaining: u32, allowed: &[PacketType]) -> Option<PacketType> {
        largest(allowed)
    }
}

/// The number of baseband segments (= polls, for an uplink flow) needed to
/// carry an `size`-byte higher-layer packet — the paper's `n_i(L)`.
///
/// # Panics
///
/// Panics if `size` is zero or `allowed` has no data-bearing type.
///
/// # Examples
///
/// ```
/// use btgs_piconet::{segment_count, MaxFirstPolicy};
/// use btgs_baseband::PacketType;
///
/// let allowed = [PacketType::Dh1, PacketType::Dh3];
/// assert_eq!(segment_count(&MaxFirstPolicy, 144, &allowed), 1);
/// assert_eq!(segment_count(&MaxFirstPolicy, 183, &allowed), 1);
/// assert_eq!(segment_count(&MaxFirstPolicy, 184, &allowed), 2); // DH3+DH1
/// assert_eq!(segment_count(&MaxFirstPolicy, 400, &allowed), 3); // DH3+DH3+DH1
/// ```
pub fn segment_count<P: SegmentationPolicy + ?Sized>(
    policy: &P,
    size: u32,
    allowed: &[PacketType],
) -> u32 {
    segment_plan(policy, size, allowed).len() as u32
}

/// The full segmentation of an `size`-byte packet: the packet type and
/// payload bytes of every segment, in transmission order.
///
/// # Panics
///
/// Panics if `size` is zero or `allowed` has no data-bearing type.
pub fn segment_plan<P: SegmentationPolicy + ?Sized>(
    policy: &P,
    size: u32,
    allowed: &[PacketType],
) -> Vec<(PacketType, u32)> {
    assert!(size > 0, "cannot segment an empty packet");
    let mut remaining = size;
    let mut out = Vec::new();
    while remaining > 0 {
        let ty = policy
            .next_type(remaining, allowed)
            .expect("allowed set contains no data-bearing packet type");
        let take = remaining.min(ty.payload_capacity() as u32);
        assert!(take > 0, "policy chose a packet type with no capacity");
        out.push((ty, take));
        remaining -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER: [PacketType; 2] = [PacketType::Dh1, PacketType::Dh3];

    #[test]
    fn paper_sizes_take_one_dh3() {
        // Every size in the paper's 144..=176 range is one DH3 segment.
        for size in 144..=176 {
            assert_eq!(segment_count(&MaxFirstPolicy, size, &PAPER), 1, "{size}");
            let plan = segment_plan(&MaxFirstPolicy, size, &PAPER);
            assert_eq!(plan, vec![(PacketType::Dh3, size)]);
        }
    }

    #[test]
    fn small_packets_use_dh1() {
        for size in 1..=27 {
            assert_eq!(
                segment_plan(&MaxFirstPolicy, size, &PAPER),
                vec![(PacketType::Dh1, size)]
            );
        }
        assert_eq!(
            segment_plan(&MaxFirstPolicy, 28, &PAPER),
            vec![(PacketType::Dh3, 28)]
        );
    }

    #[test]
    fn multi_segment_plans() {
        // 184 = DH3(183) + DH1(1).
        assert_eq!(
            segment_plan(&MaxFirstPolicy, 184, &PAPER),
            vec![(PacketType::Dh3, 183), (PacketType::Dh1, 1)]
        );
        // 366 = DH3 + DH3.
        assert_eq!(
            segment_plan(&MaxFirstPolicy, 366, &PAPER),
            vec![(PacketType::Dh3, 183), (PacketType::Dh3, 183)]
        );
        // 367 = DH3 + DH3 + DH1.
        assert_eq!(segment_count(&MaxFirstPolicy, 367, &PAPER), 3);
    }

    #[test]
    fn plan_conserves_bytes() {
        for size in [1u32, 27, 28, 144, 176, 183, 184, 210, 366, 400, 1000] {
            let plan = segment_plan(&MaxFirstPolicy, size, &PAPER);
            let total: u32 = plan.iter().map(|(_, b)| b).sum();
            assert_eq!(total, size);
            // Every segment respects its capacity.
            for (ty, b) in plan {
                assert!(b as usize <= ty.payload_capacity());
            }
        }
    }

    #[test]
    fn always_largest_wastes_small_remainders() {
        // 184 bytes: MaxFirst ends with a DH1; AlwaysLargest uses two DH3s.
        let plan = segment_plan(&AlwaysLargestPolicy, 184, &PAPER);
        assert_eq!(plan, vec![(PacketType::Dh3, 183), (PacketType::Dh3, 1)]);
    }

    #[test]
    fn single_type_sets() {
        let dh1_only = [PacketType::Dh1];
        assert_eq!(segment_count(&MaxFirstPolicy, 144, &dh1_only), 6); // ceil(144/27)
        let dh5_only = [PacketType::Dh5];
        assert_eq!(segment_count(&MaxFirstPolicy, 339, &dh5_only), 1);
        assert_eq!(segment_count(&MaxFirstPolicy, 340, &dh5_only), 2);
    }

    #[test]
    #[should_panic(expected = "empty packet")]
    fn zero_size_panics() {
        let _ = segment_plan(&MaxFirstPolicy, 0, &PAPER);
    }

    #[test]
    #[should_panic(expected = "no data-bearing")]
    fn control_only_allowed_set_panics() {
        let _ = segment_plan(&MaxFirstPolicy, 10, &[PacketType::Poll]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btgs_des::DetRng;

    fn arb_allowed(rng: &mut DetRng) -> Vec<PacketType> {
        let all = PacketType::ACL_DATA;
        let mut out: Vec<PacketType> = all.iter().copied().filter(|_| rng.chance(0.5)).collect();
        if out.is_empty() {
            out.push(all[rng.below(all.len() as u64) as usize]);
        }
        out
    }

    /// Segmentation must conserve bytes, respect capacities, and use the
    /// minimum-capacity sufficient type for the final segment.
    #[test]
    fn plan_invariants() {
        let mut rng = DetRng::seed_from_u64(0xA51);
        for _ in 0..512 {
            let size = rng.range_inclusive(1, 1_999) as u32;
            let allowed = arb_allowed(&mut rng);
            let plan = segment_plan(&MaxFirstPolicy, size, &allowed);
            let total: u32 = plan.iter().map(|(_, b)| b).sum();
            assert_eq!(total, size);
            for (ty, b) in &plan {
                assert!(*b as usize <= ty.payload_capacity());
                assert!(*b > 0);
            }
            // All but the last segment fill the chosen packet completely
            // (MaxFirst only under-fills the final segment).
            for (ty, b) in &plan[..plan.len() - 1] {
                assert_eq!(*b as usize, ty.payload_capacity());
            }
        }
    }

    /// n(L) is non-decreasing in L for a fixed allowed set.
    #[test]
    fn segment_count_monotone() {
        let mut rng = DetRng::seed_from_u64(0xA52);
        for _ in 0..512 {
            let size = rng.range_inclusive(1, 1_998) as u32;
            let allowed = arb_allowed(&mut rng);
            let n1 = segment_count(&MaxFirstPolicy, size, &allowed);
            let n2 = segment_count(&MaxFirstPolicy, size + 1, &allowed);
            assert!(n2 >= n1);
        }
    }
}
