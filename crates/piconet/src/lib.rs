//! # btgs-piconet — slot-accurate Bluetooth piconet simulator
//!
//! The simulation substrate for the `btgs` reproduction of *"Providing Delay
//! Guarantees in Bluetooth"* (Ait Yaiz & Heijenk, ICDCSW'03). It stands in
//! for the ns-2 + Ericsson Switchlab Bluetooth extensions the paper used:
//!
//! * master-driven TDD on the 625 µs slot grid: the master addresses one
//!   slave per exchange (data segment or POLL down, data segment or NULL
//!   back up);
//! * a dense [`FlowTable`] arena ([`FlowIdx`] handles, O(1) lookups,
//!   precomputed slave/flow lists) backing every per-decision query, so
//!   the simulation hot path neither scans nor allocates;
//! * per-flow queues with [segmentation](MaxFirstPolicy) of higher-layer
//!   packets into DH1/DH3/… baseband packets, exactly the paper's policy;
//! * strict master ignorance of uplink queues — pollers see only the
//!   [`MasterView`];
//! * separate Guaranteed Service and best-effort logical channels (a GS
//!   poll never moves BE data and vice versa);
//! * SCO reserved-slot links, a BER channel model with 1-bit ARQ
//!   retransmission for the paper's future-work benches;
//! * full accounting: per-flow delays and throughput, per-category
//!   [slot usage](SlotLedger), poll success counters;
//! * a **scatternet layer** ([`ScatternetSim`]): N piconets on one shared
//!   engine, a sharded flow arena ([`ShardedFlowArena`]) routing global
//!   flow ids, bridge slaves on deterministic rendezvous schedules
//!   ([`PresenceMask`]), and cross-piconet chains with end-to-end and
//!   bridge-residence delay accounting ([`ChainReport`]).
//!
//! Polling *policies* plug in through the [`Poller`] trait; baselines live
//! in `btgs-pollers`, and the paper's Guaranteed Service pollers in
//! `btgs-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod flow;
mod flow_table;
mod ledger;
mod poller;
mod queue;
mod report;
mod sanitizer;
mod sar;
mod scatternet;
mod sim;
pub mod sync_protocol;
mod telemetry;

pub use config::{AllowedByCap, PiconetConfig, PiconetError, PresenceMask, SarPolicy, ScoBinding};
pub use flow::{validate_flows, FlowSpec};
pub use flow_table::{FlowIdx, FlowTable};
pub use ledger::{PollCounters, SlotLedger};
pub use poller::{DownlinkView, ExchangeReport, MasterView, PollDecision, Poller, SegmentOutcome};
pub use queue::{FlowQueue, SegmentPlan};
pub use report::{FlowReport, RunReport};
pub use sanitizer::{
    bisect_runs, BisectReport, Divergence, EngineMutation, IslandTrace, RunTrace, SanitizedRun,
    SanitizerCheck, SanitizerFinding, SanitizerReport, TraceConfig, TraceEvent, TraceKind,
    TraceWindow,
};
pub use sar::{
    segment_count, segment_plan, AlwaysLargestPolicy, MaxFirstPolicy, SegmentationPolicy,
};
pub use scatternet::{
    BridgeSpec, ChainReport, ChainSpec, ScatternetConfig, ScatternetReport, ScatternetSim,
    ShardedFlowArena,
};
pub use sim::{EventQueueBackend, PiconetSim, RoundRobinForTest};
pub use telemetry::{
    EngineTrace, EventMeter, Histo32, ObsConfig, ObservedRun, TelemetryReport, TraceRecord,
    TraceRecordKind, EVENT_KIND_NAMES,
};
