//! The deterministic observability layer of the island engine.
//!
//! Three pillars, all behind the same const-generic `I` seam as the
//! causality sanitizer (so plain [`run`](crate::ScatternetSim::run)
//! compiles every capture site out and the default path stays
//! bit-and-allocation identical):
//!
//! * **structured tracing** — fixed-capacity ring buffers
//!   ([`TraceSink`]) of typed [`TraceRecord`]s: phase spans, island
//!   claims, relay stage/inject, widening and idle-skip decisions, and
//!   (optionally) every island event. Records are keyed by *sim-time*
//!   and a per-sink deterministic sequence — never wall time — so a
//!   merged [`EngineTrace`] is byte-identical across thread counts,
//!   claim orders and engine toggles. Export to Chrome/Perfetto JSON
//!   lives in the `btgs-obs` harness crate.
//!
//! * **engine telemetry** — a pre-registered, zero-allocation registry
//!   of counters and log₂ histograms ([`Histo32`]): phase width,
//!   widening stretches, idle-skip counts, relay-pool and wheel-bucket
//!   occupancy, per-claim event batches and the per-poller decision
//!   mix, surfaced as a [`TelemetryReport`]. Like `events_processed`,
//!   the report is *excluded* from cross-configuration byte-identity
//!   digests (it is about the engine, not the simulated system).
//!
//! * **per-event cost metering** — an [`EventMeter`] callback pair
//!   (`begin`/`end(tag)`) around every island event. The trait object
//!   is supplied by the harness (`btgs-obs`), which is where the
//!   wall-clock reads live; this crate never touches an ambient clock.
//!
//! Everything here is pre-sized at run start: ring buffers at their
//! configured capacity (overflow is *dropped and counted*, never
//! grown), histograms as fixed arrays. The zero-allocation gate
//! brackets an observed steady state to prove it.

use crate::sanitizer::TraceKind;
use crate::scatternet::{nanos_of, EngineCounters};
use crate::ScatternetReport;
use btgs_des::SimTime;

/// Event-kind names, indexed by the tag byte handed to
/// [`EventMeter::end`] and carried in fine-grained [`TraceRecord`]s
/// (`arg0` of [`TraceRecordKind::Event`]).
pub const EVENT_KIND_NAMES: &[&str] = <crate::sim::Ev as btgs_des::Tagged>::TAG_NAMES;

/// A fixed 32-bucket log₂ histogram: bucket `i` counts samples whose
/// value has bit length `i` (bucket 0 is exactly zero, the last bucket
/// absorbs everything ≥ 2³⁰). No allocation, `Copy`, mergeable — the
/// registry shape that survives the zero-allocation gate and the grid
/// wire format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Histo32 {
    /// Per-bucket sample counts (log₂ buckets, see the type docs).
    pub counts: [u64; 32],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values, saturating at `u64::MAX` (feeds
    /// [`Histo32::mean`] only — the buckets are the exact record).
    pub sum: u64,
}

impl Histo32 {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - u64::leading_zeros(v)).min(31) as usize;
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histo32) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The typed kind of one [`TraceRecord`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceRecordKind {
    /// A coordinator phase `[t, b)`: `arg0` = islands run, `arg1` =
    /// staged-relay pool size at the boundary. Track 0.
    Phase = 0,
    /// One island claim `[previous boundary, b)`: `arg0` = events
    /// processed in the claim, `arg1` = wheel live count after it.
    /// Track = piconet + 1.
    IslandRun = 1,
    /// A cross-island relay staged by this island (instant at its
    /// handoff): `arg0` = target piconet, `arg1` = packet sequence.
    RelayStage = 2,
    /// A staged relay injected by the coordinator (instant): `arg0` =
    /// target piconet, `arg1` = staging sequence. Track 0.
    RelayInject = 3,
    /// An adaptive-widening stretch: the phase that just closed ran
    /// past at least one calendar start (instant at the boundary).
    WideningStretch = 4,
    /// Idle islands skipped this phase (instant at the phase open):
    /// `arg0` = how many. Track 0.
    IdleSkip = 5,
    /// One island event (only with [`ObsConfig::fine_events`]):
    /// `arg0` = event-kind tag (see [`EVENT_KIND_NAMES`]), `arg1` =
    /// the kind's first descriptor argument.
    Event = 6,
}

impl TraceRecordKind {
    /// A stable lowercase name for exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceRecordKind::Phase => "phase",
            TraceRecordKind::IslandRun => "island_run",
            TraceRecordKind::RelayStage => "relay_stage",
            TraceRecordKind::RelayInject => "relay_inject",
            TraceRecordKind::WideningStretch => "widening_stretch",
            TraceRecordKind::IdleSkip => "idle_skip",
            TraceRecordKind::Event => "event",
        }
    }
}

/// One trace record: a span (`start_ns < end_ns`) or an instant
/// (`start_ns == end_ns`) on a track, in sim-time nanoseconds. `Copy`
/// and fixed-size, so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Span start (or instant) in sim-time nanoseconds.
    pub start_ns: u64,
    /// Span end in sim-time nanoseconds (equal to `start_ns` for
    /// instants).
    pub end_ns: u64,
    /// The originating sink's monotone per-record sequence — with
    /// `track` it makes the merged sort key unique.
    pub seq: u64,
    /// Track: 0 is the coordinator, island tracks are piconet + 1.
    pub track: u16,
    /// What the record describes.
    pub kind: TraceRecordKind,
    /// Kind-specific argument (see [`TraceRecordKind`]).
    pub arg0: u64,
    /// Kind-specific argument (see [`TraceRecordKind`]).
    pub arg1: u64,
}

/// A fixed-capacity trace ring: pre-allocated at run start, drops (and
/// counts) records past capacity rather than growing — recording on the
/// hot path never allocates.
struct TraceSink {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
    seq: u64,
}

impl TraceSink {
    fn new(capacity: usize) -> TraceSink {
        TraceSink {
            records: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
            seq: 0,
        }
    }

    fn push(
        &mut self,
        start_ns: u64,
        end_ns: u64,
        track: u16,
        kind: TraceRecordKind,
        arg0: u64,
        arg1: u64,
    ) {
        if self.records.len() == self.capacity {
            self.dropped += 1;
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.records.push(TraceRecord {
            start_ns,
            end_ns,
            seq,
            track,
            kind,
            arg0,
            arg1,
        });
    }
}

/// Configuration of an observed run
/// ([`run_observed`](crate::ScatternetSim::run_observed)).
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Capacity of each trace ring (one per island plus the
    /// coordinator's). Overflow is dropped and counted, never grown.
    pub ring_capacity: usize,
    /// Record a [`TraceRecordKind::Event`] instant for every island
    /// event (fine-grained; the dominant trace volume when on).
    pub fine_events: bool,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            ring_capacity: 1 << 16,
            fine_events: false,
        }
    }
}

/// A per-event cost meter: `begin` is called before each island event's
/// handler, `end` after it with the event-kind tag (index into
/// [`EVENT_KIND_NAMES`]). Implementations live in the harness crates —
/// that is where wall-clock reads are allowed — and travel into worker
/// threads, hence `Send`.
pub trait EventMeter: Send {
    /// Called immediately before an event handler runs.
    fn begin(&mut self);
    /// Called after the handler returned, with the event's kind tag.
    fn end(&mut self, tag: u8);
    /// Reflective escape hatch: recovers the concrete meter type from
    /// the boxed meters an [`ObservedRun`] hands back.
    fn as_any(&self) -> &dyn core::any::Any;
}

/// The merged structured trace of an observed run: records sorted by
/// `(start_ns, track, seq)` — a total order independent of thread
/// count and claim order — plus the global overflow count.
#[derive(Debug, Default)]
pub struct EngineTrace {
    /// All records, in the deterministic merged order.
    pub records: Vec<TraceRecord>,
    /// Records dropped across all rings (capacity overflow).
    pub dropped: u64,
}

/// The pre-registered engine telemetry of one observed run. Excluded
/// from cross-configuration byte-identity digests (the
/// `events_processed` precedent): it describes the *engine*, not the
/// simulated system, and may legitimately vary with toggles. Fixed
/// size and `Copy`, so carrying it through the grid aggregator
/// allocates nothing per cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Total events processed across all islands.
    pub events_processed: u64,
    /// Coordinator phases run.
    pub phases_run: u64,
    /// Barrier round-trips (parallel engine only).
    pub barrier_rounds: u64,
    /// Island claims executed.
    pub islands_claimed: u64,
    /// Cross-island relays staged.
    pub relays_staged: u64,
    /// Cross-island relays injected.
    pub relays_injected: u64,
    /// Phases stretched past a calendar start by adaptive widening.
    pub widening_stretches: u64,
    /// Idle islands skipped across all phases.
    pub islands_skipped_idle: u64,
    /// GS (guaranteed-service) polls that moved data.
    pub gs_polls_successful: u64,
    /// GS polls that moved none.
    pub gs_polls_unsuccessful: u64,
    /// Best-effort polls that moved data.
    pub be_polls_successful: u64,
    /// Best-effort polls that moved none.
    pub be_polls_unsuccessful: u64,
    /// Phase widths in nanoseconds.
    pub phase_width_ns: Histo32,
    /// Staged-relay pool size at each phase boundary.
    pub relay_pool: Histo32,
    /// Island wheel live-event count after each claim.
    pub wheel_pending: Histo32,
    /// Island wheel near-horizon (level-0 + batch) occupancy after each
    /// claim.
    pub wheel_near: Histo32,
    /// Events processed per island claim.
    pub events_per_claim: Histo32,
    /// Trace records dropped (ring-capacity overflow).
    pub trace_dropped: u64,
}

impl TelemetryReport {
    /// Folds another shard's telemetry into this one (grid
    /// aggregation).
    pub fn merge(&mut self, other: &TelemetryReport) {
        self.events_processed += other.events_processed;
        self.phases_run += other.phases_run;
        self.barrier_rounds += other.barrier_rounds;
        self.islands_claimed += other.islands_claimed;
        self.relays_staged += other.relays_staged;
        self.relays_injected += other.relays_injected;
        self.widening_stretches += other.widening_stretches;
        self.islands_skipped_idle += other.islands_skipped_idle;
        self.gs_polls_successful += other.gs_polls_successful;
        self.gs_polls_unsuccessful += other.gs_polls_unsuccessful;
        self.be_polls_successful += other.be_polls_successful;
        self.be_polls_unsuccessful += other.be_polls_unsuccessful;
        self.phase_width_ns.merge(&other.phase_width_ns);
        self.relay_pool.merge(&other.relay_pool);
        self.wheel_pending.merge(&other.wheel_pending);
        self.wheel_near.merge(&other.wheel_near);
        self.events_per_claim.merge(&other.events_per_claim);
        self.trace_dropped += other.trace_dropped;
    }
}

/// Everything an observed run returns
/// ([`run_observed`](crate::ScatternetSim::run_observed)): the ordinary
/// report (byte-identical to an unobserved run), the telemetry, the
/// merged trace and the per-event meters handed back to the harness.
pub struct ObservedRun {
    /// The ordinary run report — byte-identical to the unobserved run
    /// of the same configuration.
    pub report: ScatternetReport,
    /// The engine telemetry registry.
    pub telemetry: TelemetryReport,
    /// The merged structured trace.
    pub trace: EngineTrace,
    /// The per-event meters passed in, in piconet order (empty when
    /// none were supplied).
    pub meters: Vec<Box<dyn EventMeter>>,
}

/// Per-island observability state, owned by the island's probe and
/// driven from behind the `I` seam. Each island writes its own sink:
/// no cross-thread sharing, so parallel claims cannot interleave
/// records.
pub(crate) struct IslandObs {
    sink: TraceSink,
    fine: bool,
    track: u16,
    prev_b_ns: u64,
    events_in_claim: u64,
    last_tag: u8,
    meter: Option<Box<dyn EventMeter>>,
    wheel_pending: Histo32,
    wheel_near: Histo32,
    events_per_claim: Histo32,
}

impl IslandObs {
    pub(crate) fn new(pic: u16, cfg: &ObsConfig, meter: Option<Box<dyn EventMeter>>) -> IslandObs {
        IslandObs {
            sink: TraceSink::new(cfg.ring_capacity),
            fine: cfg.fine_events,
            track: pic + 1,
            prev_b_ns: 0,
            events_in_claim: 0,
            last_tag: 0,
            meter,
            wheel_pending: Histo32::default(),
            wheel_near: Histo32::default(),
            events_per_claim: Histo32::default(),
        }
    }

    pub(crate) fn on_event(&mut self, t: SimTime, kind: TraceKind, a: u64, _b: u64) {
        self.events_in_claim += 1;
        self.last_tag = kind as u8;
        if self.fine {
            let t_ns = nanos_of(t);
            self.sink.push(
                t_ns,
                t_ns,
                self.track,
                TraceRecordKind::Event,
                kind as u8 as u64,
                a,
            );
        }
        if let Some(m) = self.meter.as_mut() {
            m.begin();
        }
    }

    pub(crate) fn after_event(&mut self) {
        if let Some(m) = self.meter.as_mut() {
            m.end(self.last_tag);
        }
    }

    pub(crate) fn on_staged(&mut self, target_pic: u16, _flow_idx: u32, at: SimTime, seq: u64) {
        let at_ns = nanos_of(at);
        self.sink.push(
            at_ns,
            at_ns,
            self.track,
            TraceRecordKind::RelayStage,
            u64::from(target_pic),
            seq,
        );
    }

    pub(crate) fn on_island_ran(&mut self, b: SimTime, live: u64, near: u64) {
        let b_ns = nanos_of(b);
        self.sink.push(
            self.prev_b_ns,
            b_ns,
            self.track,
            TraceRecordKind::IslandRun,
            self.events_in_claim,
            live,
        );
        self.wheel_pending.record(live);
        self.wheel_near.record(near);
        self.events_per_claim.record(self.events_in_claim);
        self.events_in_claim = 0;
        self.prev_b_ns = b_ns;
    }
}

/// Coordinator-side observability state: phase spans, injections and
/// the engine-shape histograms. Only ever touched by the coordinating
/// thread (between barrier rounds in the parallel engine), so its
/// record order is thread-count-invariant.
pub(crate) struct CoordObs {
    sink: TraceSink,
    phase_width_ns: Histo32,
    relay_pool: Histo32,
}

impl CoordObs {
    pub(crate) fn new(cfg: &ObsConfig) -> CoordObs {
        CoordObs {
            sink: TraceSink::new(cfg.ring_capacity),
            phase_width_ns: Histo32::default(),
            relay_pool: Histo32::default(),
        }
    }

    pub(crate) fn on_phase(
        &mut self,
        t: SimTime,
        b: SimTime,
        active: u64,
        skipped: u64,
        pool_len: usize,
        stretched: bool,
    ) {
        let t_ns = nanos_of(t);
        let b_ns = nanos_of(b);
        self.sink.push(
            t_ns,
            b_ns,
            0,
            TraceRecordKind::Phase,
            active,
            pool_len as u64,
        );
        if stretched {
            self.sink
                .push(b_ns, b_ns, 0, TraceRecordKind::WideningStretch, 0, 0);
        }
        if skipped > 0 {
            self.sink
                .push(t_ns, t_ns, 0, TraceRecordKind::IdleSkip, skipped, 0);
        }
        self.phase_width_ns.record(b_ns - t_ns);
        self.relay_pool.record(pool_len as u64);
    }

    pub(crate) fn on_injected(&mut self, t: SimTime, target: u16, seq: u64) {
        let t_ns = nanos_of(t);
        self.sink.push(
            t_ns,
            t_ns,
            0,
            TraceRecordKind::RelayInject,
            u64::from(target),
            seq,
        );
    }
}

/// What [`assemble`] hands back: the merged trace, the telemetry block,
/// and the caller's meters, in island order.
pub(crate) type ObservedParts = (EngineTrace, TelemetryReport, Vec<Box<dyn EventMeter>>);

/// Merges the coordinator's and every island's sinks into the final
/// [`EngineTrace`], assembles the [`TelemetryReport`] from the engine
/// counters, the report's poll mix and the registered histograms, and
/// hands the meters back.
pub(crate) fn assemble(
    coord: CoordObs,
    islands: Vec<IslandObs>,
    counters: &EngineCounters,
    report: &ScatternetReport,
) -> ObservedParts {
    let mut telemetry = TelemetryReport {
        events_processed: report.events_processed,
        phases_run: counters.phases_run,
        barrier_rounds: counters.barrier_rounds,
        islands_claimed: counters.islands_claimed,
        relays_staged: counters.relays_staged,
        relays_injected: counters.relays_injected,
        widening_stretches: counters.widening_stretches,
        islands_skipped_idle: counters.islands_skipped_idle,
        phase_width_ns: coord.phase_width_ns,
        relay_pool: coord.relay_pool,
        ..TelemetryReport::default()
    };
    for p in &report.piconets {
        telemetry.gs_polls_successful += p.gs_polls.successful;
        telemetry.gs_polls_unsuccessful += p.gs_polls.unsuccessful;
        telemetry.be_polls_successful += p.be_polls.successful;
        telemetry.be_polls_unsuccessful += p.be_polls.unsuccessful;
    }

    let mut dropped = coord.sink.dropped;
    let mut records = coord.sink.records;
    let mut meters = Vec::new();
    for island in islands {
        dropped += island.sink.dropped;
        records.extend_from_slice(&island.sink.records);
        telemetry.wheel_pending.merge(&island.wheel_pending);
        telemetry.wheel_near.merge(&island.wheel_near);
        telemetry.events_per_claim.merge(&island.events_per_claim);
        if let Some(m) = island.meter {
            meters.push(m);
        }
    }
    telemetry.trace_dropped = dropped;
    // analyze: allow(unstable-sort): the key `(start_ns, track, seq)` is
    // provably unique — `track` identifies the originating sink and `seq`
    // is that sink's monotone per-record counter, so no two records
    // compare equal.
    records.sort_unstable_by_key(|r| (r.start_ns, r.track, r.seq));
    (EngineTrace { records, dropped }, telemetry, meters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histo_buckets_are_log2() {
        let mut h = Histo32::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1 << 20);
        h.record(u64::MAX);
        assert_eq!(h.counts[0], 1); // zero
        assert_eq!(h.counts[1], 1); // 1
        assert_eq!(h.counts[2], 2); // 2, 3
        assert_eq!(h.counts[21], 1); // 2^20
        assert_eq!(h.counts[31], 1); // clamp
        assert_eq!(h.count, 6);
    }

    #[test]
    fn histo_merge_adds() {
        let mut a = Histo32::default();
        let mut b = Histo32::default();
        a.record(5);
        b.record(5);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 19);
    }

    #[test]
    fn sink_drops_past_capacity_and_counts() {
        let mut s = TraceSink::new(2);
        for i in 0..5 {
            s.push(i, i, 0, TraceRecordKind::Phase, 0, 0);
        }
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.records[1].seq, 1);
    }

    #[test]
    fn event_kind_names_match_trace_kinds() {
        assert_eq!(EVENT_KIND_NAMES.len(), 5);
        assert_eq!(EVENT_KIND_NAMES[TraceKind::Arrival as usize], "arrival");
        assert_eq!(EVENT_KIND_NAMES[TraceKind::Wake as usize], "wake");
        assert_eq!(
            EVENT_KIND_NAMES[TraceKind::ExchangeDone as usize],
            "exchange_done"
        );
        assert_eq!(EVENT_KIND_NAMES[TraceKind::ScoDone as usize], "sco_done");
        assert_eq!(EVENT_KIND_NAMES[TraceKind::Relay as usize], "relay");
    }
}
